"""Common result type for queueing models."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = ["QueueMetrics"]


@dataclass(frozen=True)
class QueueMetrics:
    """Steady-state metrics of a queueing system.

    All first-moment quantities follow the standard Kendall notation
    conventions; Little's law (``L = lambda_eff * W``) holds between them
    by construction and is asserted in the test suite.

    Attributes
    ----------
    arrival_rate:
        Offered arrival rate ``lambda`` (customers per unit time).
    service_rate:
        Per-server service rate ``mu``.
    servers:
        Number of parallel servers ``c``.
    capacity:
        Maximum number of customers in the system (``None`` = unlimited).
    blocking_probability:
        Probability an arriving customer is lost (0 for infinite queues).
    utilization:
        Fraction of time each server is busy
        (``lambda_eff / (c * mu)``).
    mean_number_in_system:
        ``L``, expected customers present (waiting + in service).
    mean_number_in_queue:
        ``Lq``, expected customers waiting.
    mean_response_time:
        ``W``, expected sojourn time of an *accepted* customer.
    mean_waiting_time:
        ``Wq``, expected queueing delay of an accepted customer.
    throughput:
        Rate of customers actually served, ``lambda * (1 - blocking)``.
    state_distribution:
        Steady-state probability of ``n`` customers in system, for finite
        systems (empty tuple when not computed).
    """

    arrival_rate: float
    service_rate: float
    servers: int
    capacity: Optional[int]
    blocking_probability: float
    utilization: float
    mean_number_in_system: float
    mean_number_in_queue: float
    mean_response_time: float
    mean_waiting_time: float
    throughput: float
    state_distribution: Tuple[float, ...] = field(default=())

    @property
    def effective_arrival_rate(self) -> float:
        """Rate of customers admitted to the system."""
        return self.arrival_rate * (1.0 - self.blocking_probability)

    @property
    def loss_rate(self) -> float:
        """Rate of customers rejected (lost transactions per unit time)."""
        return self.arrival_rate * self.blocking_probability

    def probability_of(self, n: int) -> float:
        """Steady-state probability of exactly *n* customers in system."""
        if not self.state_distribution:
            raise ValueError("state distribution was not computed for this model")
        if not 0 <= n < len(self.state_distribution):
            return 0.0
        return self.state_distribution[n]
