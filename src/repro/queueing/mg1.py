"""The M/G/1 queue (Pollaczek-Khinchine).

The paper assumes exponential service times; real web-request service
times are anything but.  The M/G/1 model quantifies how much that
assumption matters: the Pollaczek-Khinchine formula gives the mean
metrics of a single server under a *general* service distribution,
parameterized only by its mean and squared coefficient of variation
(SCV).  SCV = 1 recovers M/M/1; SCV = 0 is deterministic service; web
workloads often have SCV >> 1.
"""

from __future__ import annotations

from .._validation import check_non_negative, check_rate
from ..errors import ValidationError
from .metrics import QueueMetrics

__all__ = ["MG1Queue"]


class MG1Queue:
    """Single-server queue with Poisson arrivals and general service.

    Parameters
    ----------
    arrival_rate:
        Poisson arrival rate ``lambda``.
    service_rate:
        Reciprocal of the mean service time, ``mu = 1 / E[S]``; stability
        requires ``lambda < mu``.
    service_scv:
        Squared coefficient of variation of the service time,
        ``Var[S] / E[S]^2``.  1.0 = exponential (M/M/1), 0.0 =
        deterministic (M/D/1).

    Examples
    --------
    Deterministic service halves the queueing delay of M/M/1:

    >>> md1 = MG1Queue(0.8, 1.0, service_scv=0.0)
    >>> mm1 = MG1Queue(0.8, 1.0, service_scv=1.0)
    >>> md1.metrics().mean_waiting_time / mm1.metrics().mean_waiting_time
    0.5
    """

    def __init__(
        self,
        arrival_rate: float,
        service_rate: float,
        service_scv: float = 1.0,
    ):
        self.arrival_rate = check_rate(arrival_rate, "arrival_rate")
        self.service_rate = check_rate(service_rate, "service_rate")
        self.service_scv = check_non_negative(service_scv, "service_scv")
        if self.arrival_rate >= self.service_rate:
            raise ValidationError(
                "M/G/1 requires arrival_rate < service_rate for stability; "
                f"got rho = {self.arrival_rate / self.service_rate:.4g}"
            )

    @property
    def utilization(self) -> float:
        """Traffic intensity ``rho = lambda / mu`` (< 1)."""
        return self.arrival_rate / self.service_rate

    def mean_waiting_time(self) -> float:
        """Pollaczek-Khinchine mean waiting time.

        ``Wq = rho (1 + SCV) / (2 (mu - lambda))``.
        """
        rho = self.utilization
        return (
            rho
            * (1.0 + self.service_scv)
            / (2.0 * (self.service_rate - self.arrival_rate))
        )

    def metrics(self) -> QueueMetrics:
        """Full steady-state mean metrics (no state distribution —
        the M/G/1 queue length process is not Markovian)."""
        rho = self.utilization
        w_queue = self.mean_waiting_time()
        w_system = w_queue + 1.0 / self.service_rate
        l_queue = self.arrival_rate * w_queue
        l_system = self.arrival_rate * w_system
        return QueueMetrics(
            arrival_rate=self.arrival_rate,
            service_rate=self.service_rate,
            servers=1,
            capacity=None,
            blocking_probability=0.0,
            utilization=rho,
            mean_number_in_system=l_system,
            mean_number_in_queue=l_queue,
            mean_response_time=w_system,
            mean_waiting_time=w_queue,
            throughput=self.arrival_rate,
        )
