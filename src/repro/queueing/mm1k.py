"""The M/M/1/K queue — the paper's basic-architecture performance model.

Equation (1) of the paper gives the probability that an arriving request
finds the web server's input buffer full::

    pK = rho^K (1 - rho) / (1 - rho^(K+1)),     rho = alpha / nu

where ``K`` is the total system capacity (requests in service plus
waiting), ``alpha`` the request arrival rate and ``nu`` the service rate.
At ``rho = 1`` the formula degenerates to ``1 / (K + 1)`` by continuity.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_int, check_rate
from .birthdeath import birth_death_distribution
from .metrics import QueueMetrics

__all__ = ["MM1KQueue", "mm1k_blocking_probability"]


def mm1k_blocking_probability(rho: float, capacity: int) -> float:
    """Blocking probability of an M/M/1/K queue (paper eq. 1).

    Parameters
    ----------
    rho:
        Offered load ``alpha / nu`` (> 0; may exceed 1 — the queue is
        finite, so it remains stable).
    capacity:
        Total capacity ``K >= 1``.
    """
    rho = check_rate(rho, "rho")
    capacity = check_positive_int(capacity, "capacity")
    if abs(rho - 1.0) < 1e-12:
        return 1.0 / (capacity + 1)
    return float(rho**capacity * (1.0 - rho) / (1.0 - rho ** (capacity + 1)))


class MM1KQueue:
    """Single-server, finite-capacity Markovian queue.

    Parameters
    ----------
    arrival_rate:
        Poisson arrival rate ``alpha``.
    service_rate:
        Exponential service rate ``nu``.
    capacity:
        Maximum number of requests in the system, ``K >= 1``.

    Examples
    --------
    The paper's web server: 100 requests/s arriving at a 100 requests/s
    server with a 10-slot buffer loses one request in eleven:

    >>> q = MM1KQueue(arrival_rate=100.0, service_rate=100.0, capacity=10)
    >>> round(q.blocking_probability(), 6)
    0.090909
    """

    def __init__(self, arrival_rate: float, service_rate: float, capacity: int):
        self.arrival_rate = check_rate(arrival_rate, "arrival_rate")
        self.service_rate = check_rate(service_rate, "service_rate")
        self.capacity = check_positive_int(capacity, "capacity")

    @property
    def offered_load(self) -> float:
        """``rho = alpha / nu`` (may exceed one)."""
        return self.arrival_rate / self.service_rate

    def blocking_probability(self) -> float:
        """Probability an arriving request is lost (paper eq. 1)."""
        return mm1k_blocking_probability(self.offered_load, self.capacity)

    def state_distribution(self) -> np.ndarray:
        """Steady-state distribution over 0..K requests in system."""
        births = [self.arrival_rate] * self.capacity
        deaths = [self.service_rate] * self.capacity
        return birth_death_distribution(births, deaths)

    def metrics(self) -> QueueMetrics:
        """Full steady-state metric set (via the state distribution)."""
        dist = self.state_distribution()
        n = np.arange(self.capacity + 1)
        blocking = float(dist[-1])
        effective = self.arrival_rate * (1.0 - blocking)
        l_system = float(n @ dist)
        busy = 1.0 - float(dist[0])
        l_queue = l_system - busy
        w_system = l_system / effective if effective > 0 else float("inf")
        w_queue = l_queue / effective if effective > 0 else float("inf")
        return QueueMetrics(
            arrival_rate=self.arrival_rate,
            service_rate=self.service_rate,
            servers=1,
            capacity=self.capacity,
            blocking_probability=blocking,
            utilization=min(1.0, effective / self.service_rate),
            mean_number_in_system=l_system,
            mean_number_in_queue=l_queue,
            mean_response_time=w_system,
            mean_waiting_time=w_queue,
            throughput=effective,
            state_distribution=tuple(dist.tolist()),
        )
