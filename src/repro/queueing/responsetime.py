"""Response-time distributions for the M/M/c/K queue.

The paper's conclusion names the natural extension of its composite
measure: also count a request as failed when *"the response time exceeds
an acceptable threshold"*.  That requires the sojourn-time distribution
of an accepted request in an M/M/c/K FCFS queue, derived here in closed
form:

An accepted request arriving when ``n`` requests are present
(``n = 0 .. K-1``, PASTA gives the arrival-state distribution
``pi_n / (1 - pK)``) experiences:

* ``n < c``: no waiting; the response time is one exponential service,
  ``T ~ Exp(mu)``.
* ``n >= c``: it must wait for ``m = n - c + 1`` departures, each
  ``Exp(c mu)``, then be served: ``T ~ Erlang(m, c mu) + Exp(mu)``
  (a hypoexponential).  For ``c = 1`` the sum collapses to
  ``Erlang(n + 1, mu)``.

Survival functions use the regularized incomplete gamma function, so the
results are exact to machine precision — no simulation or truncation.
"""

from __future__ import annotations

import math

from scipy import optimize, special

from .._validation import check_non_negative, check_positive_int, check_rate
from ..errors import SolverError, ValidationError
from .mmck import MMCKQueue

__all__ = [
    "erlang_survival",
    "erlang_cdf",
    "hypoexponential_survival",
    "response_time_survival",
    "waiting_time_survival",
    "mean_conditional_response_time",
    "response_time_quantile",
]


def erlang_survival(stages: int, rate: float, t: float) -> float:
    """``P(Erlang(stages, rate) > t)``.

    Examples
    --------
    >>> round(erlang_survival(1, 2.0, 0.5), 6)   # = exp(-1)
    0.367879
    """
    stages = check_positive_int(stages, "stages")
    rate = check_rate(rate, "rate")
    t = check_non_negative(t, "t")
    if t == 0.0:
        return 1.0
    return float(special.gammaincc(stages, rate * t))


def erlang_cdf(stages: int, rate: float, t: float) -> float:
    """``P(Erlang(stages, rate) <= t)``."""
    return 1.0 - erlang_survival(stages, rate, t)


def hypoexponential_survival(
    stages: int, stage_rate: float, final_rate: float, t: float
) -> float:
    """``P(Erlang(stages, stage_rate) + Exp(final_rate) > t)``.

    The waiting-plus-service time of a queued request: *stages*
    departures at ``stage_rate = c mu`` followed by its own service at
    ``final_rate = mu``.  Requires ``stage_rate != final_rate`` (the
    equal-rate case is a plain Erlang and should use
    :func:`erlang_survival` with ``stages + 1`` stages).
    """
    stages = check_positive_int(stages, "stages")
    stage_rate = check_rate(stage_rate, "stage_rate")
    final_rate = check_rate(final_rate, "final_rate")
    t = check_non_negative(t, "t")
    if t == 0.0:
        return 1.0
    if stage_rate == final_rate:
        return erlang_survival(stages + 1, stage_rate, t)
    # P(X + S > t) = P(X > t) + int_0^t f_X(u) exp(-final (t-u)) du; the
    # integral reduces to a scaled Erlang CDF with rate (stage - final).
    ratio = stage_rate / (stage_rate - final_rate)
    tail = erlang_survival(stages, stage_rate, t)
    if stage_rate > final_rate:
        inner = erlang_cdf(stages, stage_rate - final_rate, t)
        late_service = math.exp(-final_rate * t) * ratio**stages * inner
    else:
        # final_rate > stage_rate: keep everything positive by swapping
        # the roles (the hypoexponential is symmetric in its stages).
        # Erlang(m, a) + Exp(b) has survival computable by conditioning
        # on the exponential instead.
        return _hypoexp_survival_by_stages(stages, stage_rate, final_rate, t)
    return min(1.0, tail + late_service)


def _hypoexp_survival_by_stages(
    stages: int, stage_rate: float, final_rate: float, t: float
) -> float:
    """Survival via the phase-type forward equations (stable fallback).

    Used when ``final_rate > stage_rate`` where the closed form above
    involves cancelling terms.  The phase process is a pure-birth chain
    through ``stages`` stages at *stage_rate* plus one stage at
    *final_rate*; the survival function is the probability of not yet
    having left the last stage, computed by uniformization on a
    bidiagonal generator — exact to the series tolerance.
    """
    import numpy as np

    from ..markov.transient import uniformization

    n = stages + 1
    q = np.zeros((n + 1, n + 1))
    for i in range(stages):
        q[i, i + 1] = stage_rate
        q[i, i] = -stage_rate
    q[stages, stages + 1] = final_rate
    q[stages, stages] = -final_rate
    p0 = np.zeros(n + 1)
    p0[0] = 1.0
    dist = uniformization(q, p0, t, tol=1e-14)
    return float(1.0 - dist[-1])


def waiting_time_survival(queue: MMCKQueue, t: float) -> float:
    """``P(W > t)`` for an *accepted* request (FCFS).

    ``W`` is the queueing delay before service starts; requests finding a
    free server have ``W = 0``.

    Examples
    --------
    >>> q = MMCKQueue(arrival_rate=50.0, service_rate=100.0, servers=1,
    ...               capacity=10)
    >>> waiting_time_survival(q, 0.0) < 0.5   # most arrivals find it idle
    True
    """
    t = check_non_negative(t, "t")
    dist = queue.state_distribution()
    blocking = float(dist[-1])
    accepted = 1.0 - blocking
    if accepted <= 0.0:
        raise ValidationError("the queue accepts no requests (pK = 1)")
    c, mu = queue.servers, queue.service_rate
    total = 0.0
    for n in range(queue.capacity):  # arrival states 0 .. K-1
        weight = float(dist[n]) / accepted
        if n < c:
            survival = 0.0  # W = 0 exactly (atom at zero)
        else:
            survival = erlang_survival(n - c + 1, c * mu, t)
        total += weight * survival
    return min(1.0, total)


def response_time_survival(queue: MMCKQueue, t: float) -> float:
    """``P(T > t)`` for an accepted request: waiting plus service (FCFS).

    Examples
    --------
    An M/M/1/K at half load: the response time is longer-tailed than a
    bare service time.

    >>> q = MMCKQueue(arrival_rate=50.0, service_rate=100.0, servers=1,
    ...               capacity=10)
    >>> import math
    >>> response_time_survival(q, 0.02) > math.exp(-100.0 * 0.02)
    True
    """
    t = check_non_negative(t, "t")
    dist = queue.state_distribution()
    blocking = float(dist[-1])
    accepted = 1.0 - blocking
    if accepted <= 0.0:
        raise ValidationError("the queue accepts no requests (pK = 1)")
    c, mu = queue.servers, queue.service_rate
    total = 0.0
    for n in range(queue.capacity):
        weight = float(dist[n]) / accepted
        if n < c:
            survival = math.exp(-mu * t)
        elif c == 1:
            survival = erlang_survival(n + 1, mu, t)
        else:
            survival = hypoexponential_survival(n - c + 1, c * mu, mu, t)
        total += weight * survival
    return min(1.0, total)


def mean_conditional_response_time(queue: MMCKQueue) -> float:
    """``E[T]`` of an accepted request; equals Little's-law ``W``.

    Provided as an independent cross-check of the distributional code:
    the mean of the arrival-state mixture must equal
    ``L / lambda_eff``.
    """
    dist = queue.state_distribution()
    blocking = float(dist[-1])
    accepted = 1.0 - blocking
    if accepted <= 0.0:
        raise ValidationError("the queue accepts no requests (pK = 1)")
    c, mu = queue.servers, queue.service_rate
    total = 0.0
    for n in range(queue.capacity):
        weight = float(dist[n]) / accepted
        wait_stages = max(0, n - c + 1)
        total += weight * (wait_stages / (c * mu) + 1.0 / mu)
    return total


def response_time_quantile(queue: MMCKQueue, probability: float) -> float:
    """The *probability*-quantile of an accepted request's response time.

    E.g. ``response_time_quantile(q, 0.99)`` is the 99th-percentile
    latency — the quantity SLOs are written against.  *probability* must
    lie strictly inside (0, 1): the response time of an accepted request
    has unbounded support, so the 0- and 1-quantiles are degenerate.
    """
    if not isinstance(probability, (int, float)) or isinstance(probability, bool):
        raise ValidationError(
            f"probability must be a number in (0, 1), got {probability!r}"
        )
    probability = float(probability)
    if math.isnan(probability) or not 0.0 < probability < 1.0:
        raise ValidationError(
            "probability must be strictly inside the open interval (0, 1), "
            f"got {probability!r}"
        )
    target = 1.0 - probability

    def objective(t: float) -> float:
        return response_time_survival(queue, t) - target

    # Bracket: the mean times a growing factor bounds any quantile.
    upper = mean_conditional_response_time(queue)
    for _ in range(200):
        if objective(upper) < 0:
            break
        upper *= 2.0
    else:
        raise SolverError("failed to bracket the response-time quantile")
    return float(optimize.brentq(objective, 0.0, upper, xtol=1e-12))
