"""The M/M/1 queue (infinite buffer, single server)."""

from __future__ import annotations

from .._validation import check_rate
from ..errors import ValidationError
from .metrics import QueueMetrics

__all__ = ["MM1Queue"]


class MM1Queue:
    """Single-server queue with Poisson arrivals and exponential service.

    Parameters
    ----------
    arrival_rate:
        Poisson arrival rate ``lambda``.
    service_rate:
        Exponential service rate ``mu``; stability requires
        ``lambda < mu``.

    Examples
    --------
    >>> q = MM1Queue(arrival_rate=0.5, service_rate=1.0)
    >>> q.metrics().mean_number_in_system
    1.0
    """

    def __init__(self, arrival_rate: float, service_rate: float):
        self.arrival_rate = check_rate(arrival_rate, "arrival_rate")
        self.service_rate = check_rate(service_rate, "service_rate")
        if self.arrival_rate >= self.service_rate:
            raise ValidationError(
                "M/M/1 requires arrival_rate < service_rate for stability; "
                f"got rho = {self.arrival_rate / self.service_rate:.4g}"
            )

    @property
    def utilization(self) -> float:
        """Traffic intensity ``rho = lambda / mu`` (< 1)."""
        return self.arrival_rate / self.service_rate

    def probability_of(self, n: int) -> float:
        """Steady-state probability of *n* customers in system."""
        if n < 0:
            return 0.0
        rho = self.utilization
        return (1.0 - rho) * rho**n

    def metrics(self) -> QueueMetrics:
        """Full steady-state metric set."""
        rho = self.utilization
        l_system = rho / (1.0 - rho)
        l_queue = rho**2 / (1.0 - rho)
        w_system = 1.0 / (self.service_rate - self.arrival_rate)
        w_queue = rho / (self.service_rate - self.arrival_rate)
        return QueueMetrics(
            arrival_rate=self.arrival_rate,
            service_rate=self.service_rate,
            servers=1,
            capacity=None,
            blocking_probability=0.0,
            utilization=rho,
            mean_number_in_system=l_system,
            mean_number_in_queue=l_queue,
            mean_response_time=w_system,
            mean_waiting_time=w_queue,
            throughput=self.arrival_rate,
        )
