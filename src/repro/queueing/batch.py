"""Vectorized batch evaluation of M/M/c/K blocking probabilities.

The sensitivity studies of Section 5 evaluate eq. (3) over whole grids
of ``(a, c, K)`` points — nine curves of ten farm sizes each for Fig. 11
alone.  :func:`mmck_blocking_grid` computes such a grid in one NumPy
pass: the birth-death weight recurrence advances for *every* point
simultaneously, so the Python-level loop runs ``max(K)`` times instead
of ``sum(K)`` times.

The kernel mirrors the scalar :func:`~repro.queueing.mmck.mmck_blocking_probability`
operation for operation — same recurrence order, same overflow
renormalization, same single-server closed form — so each grid entry is
bit-identical to the scalar result; the test suite asserts exact
equality, and the engine's memo cache can therefore mix scalar and batch
results freely.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .._validation import check_finite_array
from ..errors import ValidationError
from ..obs.clock import monotonic
from ..obs.context import active_metrics
from .mm1k import mm1k_blocking_probability

__all__ = ["mmck_blocking_grid", "mmck_blocking_grid_rates"]


def _broadcast_spec(
    offered_load, servers, capacity
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Tuple[int, ...]]:
    a = np.asarray(offered_load, dtype=float)
    c = np.asarray(servers)
    k = np.asarray(capacity)
    if not np.issubdtype(c.dtype, np.integer):
        rounded = np.rint(np.asarray(c, dtype=float))
        if not np.array_equal(rounded, np.asarray(c, dtype=float)):
            raise ValidationError("servers must be integers")
        c = rounded.astype(np.int64)
    if not np.issubdtype(k.dtype, np.integer):
        rounded = np.rint(np.asarray(k, dtype=float))
        if not np.array_equal(rounded, np.asarray(k, dtype=float)):
            raise ValidationError("capacity must be integers")
        k = rounded.astype(np.int64)
    try:
        a, c, k = np.broadcast_arrays(a, c, k)
    except ValueError:
        raise ValidationError(
            f"offered_load {a.shape}, servers {c.shape} and capacity "
            f"{k.shape} cannot be broadcast against each other"
        ) from None
    shape = a.shape
    a = np.ascontiguousarray(a, dtype=float).ravel()
    c = np.ascontiguousarray(c, dtype=np.int64).ravel()
    k = np.ascontiguousarray(k, dtype=np.int64).ravel()
    check_finite_array(a, "offered_load")
    if a.size == 0:
        raise ValidationError("batch evaluation needs at least one point")
    if np.any(a <= 0.0):
        raise ValidationError("offered_load must be > 0 at every grid point")
    if np.any(c < 1):
        raise ValidationError("servers must be >= 1 at every grid point")
    if np.any(k < c):
        raise ValidationError(
            "capacity must be >= servers at every grid point"
        )
    return a, c, k, shape


def mmck_blocking_grid(offered_load, servers, capacity) -> np.ndarray:
    """Blocking probability of M/M/c/K queues over a whole grid.

    Parameters
    ----------
    offered_load / servers / capacity:
        Array-likes broadcast against each other; every broadcast point
        ``(a, c, K)`` is one queue (``a > 0``, ``1 <= c <= K``).

    Returns
    -------
    numpy.ndarray
        Blocking probabilities with the broadcast shape; each entry is
        bit-identical to
        ``mmck_blocking_probability(a, int(c), int(K))``.

    Examples
    --------
    >>> from repro.queueing import mmck_blocking_probability
    >>> grid = mmck_blocking_grid([0.5, 1.0, 1.5], 4, 10)
    >>> float(grid[1]) == mmck_blocking_probability(1.0, 4, 10)
    True
    """
    metrics = active_metrics()
    started = monotonic() if metrics is not None else 0.0

    a, c, k, shape = _broadcast_spec(offered_load, servers, capacity)
    out = np.empty(a.shape, dtype=float)

    # --- c == 1: the M/M/1/K closed form of eq. (1) --------------------
    # Evaluated through the scalar function: NumPy's vectorized pow may
    # differ from libm's by one ulp, which would break the bit-identity
    # contract for the (few) single-server points of a farm-size sweep.
    single = c == 1
    if np.any(single):
        indices = np.flatnonzero(single)
        out[indices] = [
            mm1k_blocking_probability(float(a[i]), int(k[i])) for i in indices
        ]

    # --- c >= 2: the renormalized left-to-right weight recurrence ------
    multi = ~single
    if np.any(multi):
        am = a[multi]
        cm = c[multi]
        km = k[multi]
        weight = np.ones_like(am)
        total = np.ones_like(am)
        for j in range(1, int(km.max()) + 1):
            active = j <= km
            divisor = np.where(j <= cm, float(j), cm.astype(float))
            weight = np.where(active, weight * (am / divisor), weight)
            total = np.where(active, total + weight, total)
            renorm = active & ((weight > 1e250) | (total > 1e250))
            if np.any(renorm):
                # np.where evaluates total / weight for *every* point;
                # underflowed weights at non-renormalized points would
                # spray spurious divide warnings.
                with np.errstate(divide="ignore", over="ignore"):
                    total = np.where(renorm, total / weight, total)
                weight = np.where(renorm, 1.0, weight)
        out[multi] = weight / total

    if metrics is not None:
        metrics.counter(
            "queueing_grid_points",
            help="Grid points evaluated by the vectorized M/M/c/K kernel.",
        ).inc(a.size)
        metrics.histogram(
            "queueing_grid_seconds",
            help="Wall-clock time per vectorized M/M/c/K grid evaluation.",
        ).observe(monotonic() - started)

    return out.reshape(shape)


def mmck_blocking_grid_rates(
    arrival_rate, service_rate, servers, capacity
) -> np.ndarray:
    """:func:`mmck_blocking_grid` parameterized by (λ, ν) rate grids.

    ``offered_load = arrival_rate / service_rate`` pointwise, matching
    :attr:`~repro.queueing.mmck.MMCKQueue.offered_load`.
    """
    alpha = np.asarray(arrival_rate, dtype=float)
    nu = np.asarray(service_rate, dtype=float)
    if np.any(nu <= 0.0):
        raise ValidationError("service_rate must be > 0 at every grid point")
    return mmck_blocking_grid(alpha / nu, servers, capacity)
