"""Tests for the deterministic chaos harness.

The harness's whole value is determinism: a given seed must plan the
same injections every time, each injection must fire exactly once, and
every injector must leave the system able to recover to bit-identical
output (the recovery itself is exercised in
``tests/engine/test_executor.py`` and the ``repro chaos`` CLI tests).
"""

import pytest

from repro.chaos import (
    ChaosPlan,
    corrupt_cache_entries,
    plan_transient_faults,
    plan_worker_kills,
    truncate_journal_tail,
)
from repro.engine import MemoCache, canonical_key
from repro.errors import ChaosError, TransientTaskError
from repro.runtime import Journal, read_journal


class TestChaosPlan:
    def test_planners_are_deterministic_in_the_seed(self, tmp_path):
        a = plan_worker_kills(20, seed=7, count=3,
                              state_dir=str(tmp_path / "a"))
        b = plan_worker_kills(20, seed=7, count=3,
                              state_dir=str(tmp_path / "b"))
        assert a.kill_tasks == b.kill_tasks
        assert len(a.kill_tasks) == 3
        assert all(0 <= i < 20 for i in a.kill_tasks)

        t = plan_transient_faults(20, seed=7, count=3,
                                  state_dir=str(tmp_path / "c"), failures=2)
        assert t.transient_tasks == a.kill_tasks  # same seed, same draw
        assert t.transient_failures == 2

    def test_transient_fires_once_per_planned_attempt(self, tmp_path):
        plan = ChaosPlan(state_dir=str(tmp_path), transient_tasks=(3,),
                         transient_failures=2)
        for _ in range(2):
            with pytest.raises(TransientTaskError, match="task 3"):
                plan.before_task(3, in_worker=False)
        plan.before_task(3, in_worker=False)  # exhausted: no-op
        plan.before_task(0, in_worker=False)  # unplanned: no-op
        assert plan.fired() == 2

    def test_once_only_holds_across_plan_copies(self, tmp_path):
        # Pool workers get pickled copies sharing the state_dir; a fault
        # claimed by one copy must not fire again from another.
        first = ChaosPlan(state_dir=str(tmp_path), transient_tasks=(0,))
        second = ChaosPlan(state_dir=str(tmp_path), transient_tasks=(0,))
        with pytest.raises(TransientTaskError):
            first.before_task(0, in_worker=False)
        second.before_task(0, in_worker=False)  # already claimed
        assert second.fired() == 1

    def test_invalid_plans_rejected(self, tmp_path):
        with pytest.raises(ChaosError, match="state_dir"):
            ChaosPlan(state_dir="")
        with pytest.raises(ChaosError, match=">= 0"):
            ChaosPlan(state_dir=str(tmp_path), kill_tasks=(-1,))
        with pytest.raises(ChaosError, match="transient_failures"):
            ChaosPlan(state_dir=str(tmp_path), transient_failures=0)
        with pytest.raises(ChaosError, match="n_tasks"):
            plan_worker_kills(0, seed=0, count=1, state_dir=str(tmp_path))
        with pytest.raises(ChaosError, match="count"):
            plan_transient_faults(5, seed=0, count=0,
                                  state_dir=str(tmp_path))


class TestCorruptCacheEntries:
    @staticmethod
    def _seeded_cache(tmp_path, n=4):
        cache = MemoCache(cache_dir=tmp_path)
        keys = [canonical_key("demo", x=float(i)) for i in range(n)]
        for i, key in enumerate(keys):
            cache.put(key, float(i))
        return keys

    def test_damage_is_deterministic_and_detected(self, tmp_path):
        self._seeded_cache(tmp_path)
        first = corrupt_cache_entries(tmp_path, seed=1, count=2)
        assert len(first) == 2
        # The same seed picks the same victims on an identically seeded
        # cache (content addressing makes the file set reproducible).
        other = tmp_path.parent / "other-cache"
        self._seeded_cache(other)
        assert [p.name for p in corrupt_cache_entries(other, seed=1, count=2)
                ] == [p.name for p in first]

        fresh = MemoCache(cache_dir=tmp_path)
        for key in self._seeded_cache(tmp_path.parent / "reference"):
            fresh.lookup(key)
        assert fresh.stats.corruptions == 2

    def test_empty_cache_rejected(self, tmp_path):
        with pytest.raises(ChaosError, match="no cache entries"):
            corrupt_cache_entries(tmp_path, seed=0)

    def test_quarantine_is_not_a_target(self, tmp_path):
        self._seeded_cache(tmp_path, n=2)
        cache = MemoCache(cache_dir=tmp_path)
        corrupt_cache_entries(tmp_path, seed=0, count=2)
        for i in range(2):
            cache.lookup(canonical_key("demo", x=float(i)))
        assert cache.stats.corruptions == 2
        # All damage now lives in quarantine; nothing left to corrupt.
        with pytest.raises(ChaosError, match="no cache entries"):
            corrupt_cache_entries(tmp_path, seed=0)


class TestTruncateJournalTail:
    @staticmethod
    def _journal(tmp_path, records=5):
        path = tmp_path / "run.jsonl"
        with Journal(path) as journal:
            journal.append("batch_start", phase="demo", total=records)
            for i in range(records):
                journal.append("task_result", index=i, value=float(i))
        return path

    def test_tear_drops_records_and_resume_repairs(self, tmp_path):
        path = self._journal(tmp_path)
        dropped = truncate_journal_tail(path, seed=0, records=2)
        assert dropped == 2
        # The torn partial line is invisible to readers...
        surviving = read_journal(path, missing_ok=True)
        assert [r["kind"] for r in surviving] == (
            ["batch_start"] + ["task_result"] * 3
        )
        # ...and reopening repairs the tail so appends are clean.
        with Journal(path) as journal:
            assert journal.next_seq == 4
            journal.append("task_result", index=3, value=3.0)
        assert len(read_journal(path)) == 5

    def test_tearing_everything_is_rejected(self, tmp_path):
        path = self._journal(tmp_path, records=1)
        with pytest.raises(ChaosError, match="cannot tear"):
            truncate_journal_tail(path, seed=0, records=2)

    def test_missing_journal_rejected(self, tmp_path):
        with pytest.raises(ChaosError, match="does not exist"):
            truncate_journal_tail(tmp_path / "ghost.jsonl", seed=0)
