"""Tests for budgets, deadlines, and cooperative cancellation."""

import numpy as np
import pytest

from repro.errors import (
    CancelledError,
    DeadlineExceededError,
    ValidationError,
)
from repro.runtime import Budget, CancellationToken, Deadline


class FakeClock:
    """A manually-advanced monotonic clock."""

    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestDeadline:
    def test_not_expired_before_limit(self):
        clock = FakeClock()
        deadline = Deadline.after(10.0, clock=clock)
        assert not deadline.expired
        assert deadline.remaining() == pytest.approx(10.0)

    def test_expires_when_clock_passes(self):
        clock = FakeClock()
        deadline = Deadline.after(10.0, clock=clock)
        clock.advance(10.5)
        assert deadline.expired
        assert deadline.remaining() == pytest.approx(-0.5)

    def test_rejects_non_positive_duration(self):
        with pytest.raises(ValidationError):
            Deadline.after(0.0)


class TestBudget:
    def test_unbounded_by_default(self):
        assert Budget().unbounded
        assert not Budget(max_events=1).unbounded

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValidationError):
            Budget(wall_clock=-1.0)
        with pytest.raises(ValidationError):
            Budget(max_events=0)

    def test_start_builds_deadline_on_given_clock(self):
        clock = FakeClock()
        token = Budget(wall_clock=5.0).start(clock=clock)
        token.clock_stride = 1
        token.check()  # inside the deadline: fine
        clock.advance(6.0)
        with pytest.raises(DeadlineExceededError) as excinfo:
            token.check()
        assert excinfo.value.limit == "wall_clock"


class TestCancellationToken:
    def test_manual_cancel_raises_with_reason(self):
        token = CancellationToken()
        token.check()
        token.cancel("user hit ctrl-c")
        with pytest.raises(CancelledError, match="user hit ctrl-c"):
            token.check()
        assert token.cancelled
        assert token.reason == "user hit ctrl-c"

    def test_cancel_is_idempotent_and_keeps_first_reason(self):
        token = CancellationToken()
        token.cancel("first")
        token.cancel("second")
        assert token.reason == "first"

    def test_event_budget_exhausts(self):
        token = Budget(max_events=3).start()
        for _ in range(3):
            token.count_event()
        with pytest.raises(DeadlineExceededError) as excinfo:
            token.count_event()
        assert excinfo.value.limit == "max_events"
        # DeadlineExceededError is a CancelledError, so one except
        # clause covers every clean-interruption cause.
        assert isinstance(excinfo.value, CancelledError)

    def test_iteration_budget_exhausts(self):
        token = Budget(max_iterations=2).start()
        token.count_iteration(2)
        with pytest.raises(DeadlineExceededError) as excinfo:
            token.count_iteration()
        assert excinfo.value.limit == "max_iterations"

    def test_clock_polled_every_stride_checks(self):
        calls = []

        class CountingClock(FakeClock):
            def __call__(self):
                calls.append(len(calls))
                return self.now

        clock = CountingClock()
        token = Budget(wall_clock=100.0).start(clock=clock)
        token.check()  # the first poll reads the clock
        baseline = len(calls)
        for _ in range(token.clock_stride - 1):
            token.check()
        assert len(calls) == baseline  # amortized: no clock reads yet
        token.check()
        assert len(calls) == baseline + 1


class TestThreadedCancellation:
    def test_endtoend_simulation_honours_deadline(self):
        from repro.availability import TwoStateAvailability
        from repro.core import HierarchicalModel
        from repro.profiles import UserClass
        from repro.sim.endtoend import simulate_user_availability_over_time

        model = HierarchicalModel()
        model.add_resource(
            "host", TwoStateAvailability(failure_rate=0.5, repair_rate=1.0)
        )
        model.add_service("web", "host")
        model.add_function("home", services=["web"])
        users = UserClass.from_probabilities(
            "all", {frozenset({"home"}): 1.0}
        )
        token = Budget(max_events=50).start()
        with pytest.raises(DeadlineExceededError):
            simulate_user_availability_over_time(
                model, users, horizon=1e6,
                rng=np.random.default_rng(0), cancellation=token,
            )
        assert token.events > 50  # it was the budget that stopped the run

    def test_uniformization_honours_iteration_budget(self):
        from repro.markov.transient import uniformization

        q = np.array([[-100.0, 100.0], [100.0, -100.0]])
        token = Budget(max_iterations=5).start()
        with pytest.raises(DeadlineExceededError):
            uniformization(
                q, np.array([1.0, 0.0]), time=50.0, cancellation=token
            )

    def test_uniformization_unbounded_token_is_harmless(self):
        from repro.markov.transient import uniformization

        q = np.array([[-1.0, 1.0], [2.0, -2.0]])
        token = CancellationToken()
        with_token = uniformization(
            q, np.array([1.0, 0.0]), time=3.0, cancellation=token
        )
        without = uniformization(q, np.array([1.0, 0.0]), time=3.0)
        np.testing.assert_allclose(with_token, without)
        assert token.iterations > 0

    def test_retry_simulation_honours_event_budget(self):
        from repro.resilience import RetryPolicy
        from repro.sim import estimate_user_availability_with_retries
        from repro.ta import CLASS_A, TravelAgencyModel

        model = TravelAgencyModel()
        token = Budget(max_events=10).start()
        with pytest.raises(DeadlineExceededError):
            estimate_user_availability_with_retries(
                model.hierarchical_model,
                CLASS_A,
                RetryPolicy(max_retries=2),
                sessions=500,
                rng=np.random.default_rng(1),
                cancellation=token,
            )
