"""Tests for crash-consistent JSONL journaling."""

import json

import pytest

from repro.errors import ResumeError, ValidationError
from repro.runtime import SCHEMA_VERSION, Journal, read_journal


class TestAppend:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Journal(path) as journal:
            journal.append("campaign_start", seed=3, horizon=100.0)
            journal.append("replication", index=0, value=0.25)
        records = read_journal(path)
        assert [r["kind"] for r in records] == ["campaign_start", "replication"]
        assert records[0]["seed"] == 3
        assert records[1]["value"] == 0.25

    def test_floats_round_trip_bit_identically(self, tmp_path):
        value = 0.1 + 0.2  # famously not 0.3
        path = tmp_path / "run.jsonl"
        with Journal(path) as journal:
            journal.append("replication", value=value)
        assert read_journal(path)[0]["value"] == value

    def test_records_are_schema_versioned_and_sequenced(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Journal(path) as journal:
            journal.append("a")
            journal.append("b")
        records = read_journal(path)
        assert all(r["v"] == SCHEMA_VERSION for r in records)
        assert [r["seq"] for r in records] == [0, 1]

    def test_reserved_fields_rejected(self, tmp_path):
        with Journal(tmp_path / "run.jsonl") as journal:
            with pytest.raises(ValidationError, match="reserved"):
                journal.append("a", seq=99)

    def test_append_after_close_fails(self, tmp_path):
        journal = Journal(tmp_path / "run.jsonl")
        journal.close()
        with pytest.raises(ResumeError, match="closed"):
            journal.append("a")

    def test_reopen_continues_sequence(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Journal(path) as journal:
            journal.append("a")
        with Journal(path) as journal:
            assert journal.next_seq == 1
            journal.append("b")
        assert [r["seq"] for r in read_journal(path)] == [0, 1]

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "run.jsonl"
        with Journal(path) as journal:
            journal.append("a")
        assert read_journal(path)[0]["kind"] == "a"


class TestCrashConsistency:
    def test_missing_file_is_an_error_naming_the_path(self, tmp_path):
        path = tmp_path / "never-written.jsonl"
        with pytest.raises(ResumeError, match="never-written.jsonl"):
            read_journal(path)

    def test_missing_file_reads_as_empty_with_missing_ok(self, tmp_path):
        assert read_journal(tmp_path / "never-written.jsonl",
                            missing_ok=True) == []

    def test_empty_file_is_an_error_naming_the_path(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ResumeError, match="empty.jsonl"):
            read_journal(path)
        assert read_journal(path, missing_ok=True) == []

    def test_torn_tail_is_truncated_on_reopen(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Journal(path) as journal:
            journal.append("a")
            journal.append("b")
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"v":1,"seq":2,"kind":"replic')
        with Journal(path) as journal:
            assert journal.next_seq == 2
            journal.append("c")
        # The torn bytes are gone: the repaired journal is a clean,
        # contiguous record sequence.
        records = read_journal(path)
        assert [r["kind"] for r in records] == ["a", "b", "c"]
        assert [r["seq"] for r in records] == [0, 1, 2]

    def test_torn_final_line_is_discarded(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Journal(path) as journal:
            journal.append("a")
            journal.append("b")
        # Simulate a crash mid-append: a partial record with no newline.
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"v":1,"seq":2,"kind":"replic')
        records = read_journal(path)
        assert [r["kind"] for r in records] == ["a", "b"]

    def test_torn_final_line_with_newline_is_discarded(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Journal(path) as journal:
            journal.append("a")
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"v":1,"seq":1,"kin\n')
        assert [r["kind"] for r in read_journal(path)] == ["a"]

    def test_append_after_torn_tail_preserves_prefix(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Journal(path) as journal:
            journal.append("a")
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"partial')
        # Reopening for append truncates the torn bytes and continues
        # at seq 1 from the intact prefix.
        with Journal(path) as journal:
            assert journal.next_seq == 1
        assert not path.read_text().endswith('{"partial')

    def test_corruption_before_the_tail_is_an_error(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Journal(path) as journal:
            journal.append("a")
            journal.append("b")
        lines = path.read_text().splitlines()
        lines[0] = '{"not json'
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ResumeError, match="corrupt at line 1"):
            read_journal(path)

    def test_wrong_schema_version_is_an_error(self, tmp_path):
        path = tmp_path / "run.jsonl"
        record = {"v": SCHEMA_VERSION + 1, "seq": 0, "kind": "a"}
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(ResumeError, match="schema version"):
            read_journal(path)

    def test_missing_records_detected_by_sequence_gap(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Journal(path) as journal:
            journal.append("a")
            journal.append("b")
            journal.append("c")
        lines = path.read_text().splitlines()
        del lines[1]  # lose the middle record, e.g. a bad copy
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ResumeError, match="missing records"):
            read_journal(path)

    def test_non_object_record_is_an_error(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("[1, 2]\n{}\n")
        with pytest.raises(ResumeError, match="not a JSON object"):
            read_journal(path)
