"""Tests for the progress-heartbeat protocol."""

import io

import pytest

from repro.errors import SimulationError
from repro.runtime import ConsoleHeartbeat, ProgressEvent, Watchdog


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestProgressEvent:
    def test_render_with_total(self):
        event = ProgressEvent(
            phase="campaign A/null", completed=2, total=8, message="A=0.97"
        )
        assert event.render() == "[campaign A/null] 2/8 — A=0.97"

    def test_render_without_total(self):
        assert ProgressEvent(phase="p", completed=3).render() == "[p] 3"


class TestConsoleHeartbeat:
    def test_prints_first_and_final_events_despite_throttle(self):
        stream = io.StringIO()
        clock = FakeClock()
        heartbeat = ConsoleHeartbeat(
            stream=stream, min_interval=60.0, clock=clock
        )
        heartbeat(ProgressEvent(phase="p", completed=0, total=3))
        heartbeat(ProgressEvent(phase="p", completed=1, total=3))  # throttled
        heartbeat(ProgressEvent(phase="p", completed=2, total=3))  # throttled
        heartbeat(ProgressEvent(phase="p", completed=3, total=3))  # boundary
        lines = stream.getvalue().splitlines()
        assert lines == ["[p] 0/3", "[p] 3/3"]

    def test_prints_again_after_interval(self):
        stream = io.StringIO()
        clock = FakeClock()
        heartbeat = ConsoleHeartbeat(
            stream=stream, min_interval=5.0, clock=clock
        )
        heartbeat(ProgressEvent(phase="p", completed=1, total=10))
        clock.advance(6.0)
        heartbeat(ProgressEvent(phase="p", completed=2, total=10))
        assert len(stream.getvalue().splitlines()) == 2


class TestWatchdog:
    def test_records_beats(self):
        watchdog = Watchdog()
        watchdog(ProgressEvent(phase="p", completed=1, total=2))
        assert len(watchdog.beats) == 1
        assert watchdog.last_event.completed == 1

    def test_assert_alive_passes_within_window(self):
        clock = FakeClock()
        watchdog = Watchdog(clock=clock)
        watchdog(ProgressEvent(phase="p", completed=1))
        clock.advance(1.0)
        watchdog.assert_alive(within=5.0)

    def test_assert_alive_raises_when_starved(self):
        clock = FakeClock()
        watchdog = Watchdog(clock=clock)
        watchdog(ProgressEvent(phase="p", completed=1))
        clock.advance(10.0)
        with pytest.raises(SimulationError, match="starved"):
            watchdog.assert_alive(within=5.0)

    def test_assert_alive_raises_with_no_beats_at_all(self):
        with pytest.raises(SimulationError, match="no heartbeat"):
            Watchdog().assert_alive(within=5.0)

    def test_campaign_emits_heartbeats(self):
        from repro.resilience import run_campaign
        from repro.ta import CLASS_A, TravelAgencyModel

        watchdog = Watchdog()
        model = TravelAgencyModel()
        run_campaign(
            model.hierarchical_model, CLASS_A,
            horizon=200.0, replications=2, seed=0, heartbeat=watchdog,
        )
        # One "starting" beat plus one per replication.
        assert [e.completed for e in watchdog.beats] == [0, 1, 2]
        assert watchdog.last_event.total == 2
        watchdog.assert_alive(within=60.0)
