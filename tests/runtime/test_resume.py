"""Crash/resume bit-identity: the central robustness property.

A campaign killed after any number of completed replications, then
resumed from its journal, must produce a ``CampaignResult`` equal —
float-for-float — to the uninterrupted run with the same seed.  This
holds because replication ``i`` always draws from stream ``i`` of
``SeedSequence(seed).spawn(replications)`` and journal floats round-trip
exactly; the property-based test below checks every kill point the
strategy explores.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CancelledError, DeadlineExceededError, ResumeError
from repro.resilience import RecurrentOutage, resume_campaign, run_campaign
from repro.runtime import Budget, CancellationToken, Journal, read_journal
from repro.ta import CLASS_A, CLASS_B, TravelAgencyModel

REPLICATIONS = 5
HORIZON = 300.0


@pytest.fixture(scope="module")
def model():
    return TravelAgencyModel().hierarchical_model


def _interrupted_then_resumed(model, path, kill_after, seed, scenario=None):
    """Run a campaign, kill it after *kill_after* replications, resume."""
    token = CancellationToken()

    def assassin(event):
        # The heartbeat fires after each completed replication; cancel
        # once the target count is durably journaled, exactly as a
        # wall-clock deadline would between replications.
        if event.completed == kill_after:
            token.cancel(f"killed after replication {kill_after}")

    with pytest.raises(CancelledError):
        run_campaign(
            model, CLASS_A, scenario=scenario,
            horizon=HORIZON, replications=REPLICATIONS, seed=seed,
            journal=path, cancellation=token, heartbeat=assassin,
        )
    journaled = read_journal(path)
    completed = [r for r in journaled if r["kind"] == "replication"]
    assert len(completed) == kill_after  # the kill landed where intended
    assert not any(r["kind"] == "campaign_end" for r in journaled)
    return resume_campaign(path, model, CLASS_A, scenario=scenario)


class TestBitIdenticalResume:
    @settings(max_examples=8, deadline=None)
    @given(
        kill_after=st.integers(min_value=0, max_value=REPLICATIONS - 1),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_any_kill_point_resumes_bit_identically(
        self, model, tmp_path_factory, kill_after, seed
    ):
        path = tmp_path_factory.mktemp("resume") / "campaign.jsonl"
        uninterrupted = run_campaign(
            model, CLASS_A,
            horizon=HORIZON, replications=REPLICATIONS, seed=seed,
        )
        resumed = _interrupted_then_resumed(model, path, kill_after, seed)
        # Frozen dataclasses of floats: == is exact, not approximate.
        assert resumed == uninterrupted

    def test_resume_under_fault_scenario(self, model, tmp_path):
        scenario = RecurrentOutage(
            frozenset({"lan-segment"}), episode_rate=0.02, mean_duration=5.0
        )
        uninterrupted = run_campaign(
            model, CLASS_A, scenario=scenario,
            horizon=HORIZON, replications=REPLICATIONS, seed=11,
        )
        resumed = _interrupted_then_resumed(
            model, tmp_path / "c.jsonl", 2, 11, scenario=scenario
        )
        assert resumed == uninterrupted

    def test_journal_ends_in_same_state_as_uninterrupted_run(
        self, model, tmp_path
    ):
        full_path = tmp_path / "full.jsonl"
        run_campaign(
            model, CLASS_A,
            horizon=HORIZON, replications=REPLICATIONS, seed=3,
            journal=full_path,
        )
        killed_path = tmp_path / "killed.jsonl"
        _interrupted_then_resumed(model, killed_path, 2, 3)

        def payload(records):
            # Same records modulo the envelope (seq is identical anyway).
            return [
                {k: v for k, v in r.items() if k != "meta"}
                for r in records
            ]

        assert payload(read_journal(killed_path)) == payload(
            read_journal(full_path)
        )


class TestDeadlineLeavesResumableJournal:
    def test_deadline_partial_journal_resumes(self, model, tmp_path):
        class FakeClock:
            now = 0.0

            def __call__(self):
                return self.now

        clock = FakeClock()
        token = Budget(wall_clock=5.0).start(clock=clock)
        token.clock_stride = 1

        def expire_after_two(event):
            if event.completed == 2:
                clock.now = 10.0

        path = tmp_path / "deadline.jsonl"
        with pytest.raises(DeadlineExceededError):
            run_campaign(
                model, CLASS_A,
                horizon=HORIZON, replications=REPLICATIONS, seed=5,
                journal=path, cancellation=token, heartbeat=expire_after_two,
            )
        resumed = resume_campaign(path, model, CLASS_A)
        uninterrupted = run_campaign(
            model, CLASS_A,
            horizon=HORIZON, replications=REPLICATIONS, seed=5,
        )
        assert resumed == uninterrupted


class TestResumeValidation:
    def _killed_journal(self, model, tmp_path, **kwargs):
        path = tmp_path / "campaign.jsonl"
        token = CancellationToken()

        def assassin(event):
            if event.completed == 1:
                token.cancel("kill")

        with pytest.raises(CancelledError):
            run_campaign(
                model, CLASS_A,
                horizon=HORIZON, replications=REPLICATIONS, seed=0,
                journal=path, cancellation=token, heartbeat=assassin,
                **kwargs,
            )
        return path

    def test_rerun_over_existing_journal_refused(self, model, tmp_path):
        path = self._killed_journal(model, tmp_path)
        with pytest.raises(ResumeError, match="resume"):
            run_campaign(
                model, CLASS_A,
                horizon=HORIZON, replications=REPLICATIONS, seed=0,
                journal=path,
            )

    def test_wrong_user_class_refused(self, model, tmp_path):
        path = self._killed_journal(model, tmp_path)
        with pytest.raises(ResumeError, match="user class"):
            resume_campaign(path, model, CLASS_B)

    def test_wrong_scenario_refused(self, model, tmp_path):
        path = self._killed_journal(model, tmp_path)
        with pytest.raises(ResumeError, match="scenario"):
            resume_campaign(
                path, model, CLASS_A,
                scenario=RecurrentOutage(
                    frozenset({"lan-segment"}),
                    episode_rate=0.02,
                    mean_duration=5.0,
                ),
            )

    def test_changed_model_refused(self, model, tmp_path):
        path = self._killed_journal(model, tmp_path)
        drifted = (
            TravelAgencyModel()
            .with_params(web_failure_rate=0.05)
            .hierarchical_model
        )
        with pytest.raises(ResumeError, match="model or its parameters"):
            resume_campaign(path, drifted, CLASS_A)

    def test_empty_journal_refused(self, model, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ResumeError, match="empty.jsonl"):
            resume_campaign(path, model, CLASS_A)

    def test_resume_of_completed_campaign_is_a_no_op_rerun(
        self, model, tmp_path
    ):
        path = tmp_path / "done.jsonl"
        done = run_campaign(
            model, CLASS_A,
            horizon=HORIZON, replications=REPLICATIONS, seed=9,
            journal=path,
        )
        before = path.read_bytes()
        again = resume_campaign(path, model, CLASS_A)
        assert again == done
        assert path.read_bytes() == before  # nothing re-simulated
