"""Tests for journaled retry-with-escalation around solver calls."""

import numpy as np
import pytest

from repro.errors import (
    CancelledError,
    DeadlineExceededError,
    NotIrreducibleError,
    SolverError,
)
from repro.runtime import (
    Budget,
    CancellationToken,
    Journal,
    SolveAttempt,
    read_journal,
    solve_steady_state_with_escalation,
)

TWO_STATE = np.array([[-1.0, 1.0], [2.0, -2.0]])


class TestHappyPath:
    def test_dense_accepts_immediately(self):
        pi, history = solve_steady_state_with_escalation(TWO_STATE)
        np.testing.assert_allclose(pi, [2 / 3, 1 / 3])
        assert len(history) == 1
        assert history[0].strategy == "dense"
        assert history[0].outcome == "accepted"
        assert history[0].residual <= 1e-9

    def test_stiff_generator_still_solved(self):
        # Nine orders of magnitude between rates: the regime where GTH
        # exists.  Whatever strategy accepts, the residual must certify it.
        q = np.array([[-1e-5, 1e-5], [1e4, -1e4]])
        pi, history = solve_steady_state_with_escalation(q)
        assert history[-1].outcome == "accepted"
        np.testing.assert_allclose(pi.sum(), 1.0)

    def test_escalates_past_a_rejecting_strategy(self):
        # An impossible tolerance for the dense solve, reachable by GTH's
        # subtraction-free arithmetic on this easy chain... is not a thing
        # we can force deterministically, so instead force escalation by
        # dropping "dense" from the strategy list and checking order.
        pi, history = solve_steady_state_with_escalation(
            TWO_STATE, strategies=("gth", "power")
        )
        assert history[0].strategy == "gth"
        assert history[0].outcome == "accepted"
        np.testing.assert_allclose(pi, [2 / 3, 1 / 3])


class TestEscalationAndFailure:
    def test_exhaustion_raises_with_full_history(self, tmp_path):
        journal = Journal(tmp_path / "solve.jsonl")
        # An unattainable tolerance (even a residual of exactly 0.0
        # fails it) rejects every strategy, exercising the full chain.
        with pytest.raises(SolverError, match="exhausted"):
            solve_steady_state_with_escalation(
                TWO_STATE,
                residual_tol=-1.0,
                attempts_per_strategy=2,
                journal=journal,
            )
        journal.close()
        records = read_journal(journal.path)
        attempts = [r for r in records if r["kind"] == "solver_attempt"]
        failures = [r for r in records if r["kind"] == "solver_failure"]
        # 3 strategies x 2 attempts, all journaled, plus the failure record.
        assert len(attempts) == 6
        assert {a["strategy"] for a in attempts} == {"dense", "gth", "power"}
        assert all(a["outcome"] in ("rejected", "error") for a in attempts)
        assert len(failures) == 1
        assert len(failures[0]["attempts"]) == 6

    def test_accepted_attempt_is_journaled(self, tmp_path):
        with Journal(tmp_path / "solve.jsonl") as journal:
            solve_steady_state_with_escalation(TWO_STATE, journal=journal)
        records = read_journal(tmp_path / "solve.jsonl")
        assert [r["kind"] for r in records] == ["solver_attempt"]
        assert records[0]["outcome"] == "accepted"

    def test_not_irreducible_raises_immediately(self):
        # Two absorbing-ish components: no strategy can help, so the
        # escalation chain must not swallow the structural error.
        q = np.array([
            [-1.0, 1.0, 0.0, 0.0],
            [1.0, -1.0, 0.0, 0.0],
            [0.0, 0.0, -2.0, 2.0],
            [0.0, 0.0, 2.0, -2.0],
        ])
        with pytest.raises(NotIrreducibleError):
            solve_steady_state_with_escalation(q)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SolverError, match="unknown solver strategy"):
            solve_steady_state_with_escalation(
                TWO_STATE, strategies=("cholesky",)
            )

    def test_cancellation_polled_between_attempts(self):
        token = CancellationToken()
        token.cancel("deadline hit mid-campaign")
        with pytest.raises(CancelledError):
            solve_steady_state_with_escalation(TWO_STATE, cancellation=token)

    def test_expired_deadline_interrupts_chain(self):
        class FakeClock:
            now = 0.0

            def __call__(self):
                return self.now

        clock = FakeClock()
        token = Budget(wall_clock=1.0).start(clock=clock)
        token.clock_stride = 1
        clock.now = 2.0
        with pytest.raises(DeadlineExceededError):
            solve_steady_state_with_escalation(TWO_STATE, cancellation=token)


class TestSolveAttempt:
    def test_as_record_round_trips_through_journal(self, tmp_path):
        attempt = SolveAttempt(
            strategy="gth", attempt=1, outcome="rejected",
            residual=1.5e-7, detail="residual above tolerance",
        )
        with Journal(tmp_path / "solve.jsonl") as journal:
            journal.append("solver_attempt", **attempt.as_record())
        record = read_journal(tmp_path / "solve.jsonl")[0]
        assert record["strategy"] == "gth"
        assert record["residual"] == 1.5e-7
