"""Tests for user classes."""

import pytest

from repro.errors import ValidationError
from repro.profiles import Scenario, ScenarioDistribution, UserClass


class TestUserClass:
    def test_from_probabilities(self):
        users = UserClass.from_probabilities(
            "shoppers",
            {frozenset({"home"}): 0.7, frozenset({"home", "pay"}): 0.3},
        )
        assert users.name == "shoppers"
        assert users.distribution.probability_of({"home"}) == pytest.approx(0.7)

    def test_normalize_handles_percent_data(self):
        users = UserClass.from_probabilities(
            "percent",
            {frozenset({"a"}): 60.0, frozenset({"b"}): 40.0},
            normalize=True,
        )
        assert users.distribution.probability_of({"a"}) == pytest.approx(0.6)

    def test_normalize_rejects_zero_sum(self):
        with pytest.raises(ValidationError):
            UserClass.from_probabilities(
                "broken", {frozenset({"a"}): 0.0}, normalize=True
            )

    def test_empty_name_rejected(self):
        dist = ScenarioDistribution([Scenario(frozenset({"a"}), 1.0)])
        with pytest.raises(ValidationError):
            UserClass("", dist)

    def test_buying_intent(self):
        users = UserClass.from_probabilities(
            "mixed",
            {
                frozenset({"home"}): 0.8,
                frozenset({"home", "pay"}): 0.15,
                frozenset({"browse", "pay"}): 0.05,
            },
        )
        assert users.buying_intent() == pytest.approx(0.2)

    def test_paper_classes_buying_intent(self):
        """Class B buys ~20%, class A ~3x less (Section 3.1)."""
        from repro.ta import CLASS_A, CLASS_B

        intent_a = CLASS_A.buying_intent()
        intent_b = CLASS_B.buying_intent()
        assert intent_a == pytest.approx(0.075, abs=1e-9)
        assert intent_b == pytest.approx(0.203, abs=1e-9)
        assert 2.5 < intent_b / intent_a < 3.0

    def test_scenarios_accessor(self):
        users = UserClass.from_probabilities(
            "one", {frozenset({"a"}): 1.0}
        )
        assert len(users.scenarios) == 1
