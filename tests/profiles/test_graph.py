"""Tests for operational-profile session graphs."""

import pytest

from repro.errors import ModelStructureError, ValidationError
from repro.profiles import OperationalProfile


@pytest.fixture
def simple():
    return OperationalProfile({
        ("Start", "home"): 1.0,
        ("home", "search"): 0.4,
        ("home", "Exit"): 0.6,
        ("search", "Exit"): 1.0,
    })


@pytest.fixture
def cyclic():
    """Home <-> Browse cycles like the paper's Fig. 2."""
    return OperationalProfile({
        ("Start", "home"): 0.5,
        ("Start", "browse"): 0.5,
        ("home", "browse"): 0.3,
        ("home", "Exit"): 0.7,
        ("browse", "home"): 0.4,
        ("browse", "Exit"): 0.6,
    })


class TestConstruction:
    def test_functions_listed(self, simple):
        assert set(simple.functions) == {"home", "search"}

    def test_zero_probability_edges_dropped(self):
        profile = OperationalProfile({
            ("Start", "a"): 1.0,
            ("a", "Exit"): 1.0,
            ("a", "b"): 0.0,
        })
        assert profile.functions == ("a",)

    def test_rejects_unnormalized_node(self):
        with pytest.raises(ModelStructureError, match="sum to"):
            OperationalProfile({
                ("Start", "a"): 1.0,
                ("a", "Exit"): 0.5,
            })

    def test_rejects_missing_start(self):
        with pytest.raises(ModelStructureError, match="Start"):
            OperationalProfile({("a", "Exit"): 1.0})

    def test_rejects_outgoing_from_exit(self):
        with pytest.raises(ModelStructureError, match="Exit"):
            OperationalProfile({
                ("Start", "a"): 1.0,
                ("a", "Exit"): 1.0,
                ("Exit", "a"): 1.0,
            })

    def test_rejects_incoming_to_start(self):
        with pytest.raises(ModelStructureError, match="Start"):
            OperationalProfile({
                ("Start", "a"): 1.0,
                ("a", "Start"): 1.0,
            })

    def test_rejects_inescapable_cycle(self):
        with pytest.raises(ModelStructureError, match="Exit"):
            OperationalProfile({
                ("Start", "a"): 1.0,
                ("a", "b"): 1.0,
                ("b", "a"): 1.0,
            })

    def test_parallel_edges_accumulate(self):
        profile = OperationalProfile({
            ("Start", "a"): 1.0,
            ("a", "Exit"): 1.0,
        })
        assert profile.probability("a", "Exit") == 1.0


class TestSessionStatistics:
    def test_expected_visits_simple(self, simple):
        assert simple.expected_visits("home") == pytest.approx(1.0)
        assert simple.expected_visits("search") == pytest.approx(0.4)

    def test_expected_visits_with_cycles(self, cyclic):
        # Solve by hand: v_home = 0.5 + 0.4 v_browse,
        # v_browse = 0.5 + 0.3 v_home  =>  v_home = 0.7955, v_browse = 0.7386
        assert cyclic.expected_visits("home") == pytest.approx(0.70 / 0.88)
        assert cyclic.expected_visits("browse") == pytest.approx(0.65 / 0.88)

    def test_session_length(self, cyclic):
        expected = cyclic.expected_visits("home") + cyclic.expected_visits("browse")
        assert cyclic.expected_session_length() == pytest.approx(expected)

    def test_activation_probability(self, simple):
        assert simple.activation_probability("home") == 1.0
        assert simple.activation_probability("search") == pytest.approx(0.4)

    def test_activation_probability_with_cycles(self, cyclic):
        # P(visit home) = 0.5 + 0.5 * 0.4 = 0.7 (Start->Br->Ho path).
        assert cyclic.activation_probability("home") == pytest.approx(0.7)

    def test_unknown_function(self, simple):
        with pytest.raises(ValidationError):
            simple.expected_visits("pay")
        with pytest.raises(ValidationError):
            simple.activation_probability("pay")


class TestScenarioDistribution:
    def test_simple_profile(self, simple):
        dist = simple.scenario_distribution()
        assert dist.probability_of({"home"}) == pytest.approx(0.6)
        assert dist.probability_of({"home", "search"}) == pytest.approx(0.4)

    def test_probabilities_sum_to_one(self, cyclic):
        dist = cyclic.scenario_distribution()
        assert sum(s.probability for s in dist) == pytest.approx(1.0)

    def test_cyclic_profile_closed_form(self, cyclic):
        dist = cyclic.scenario_distribution()
        # P({home} only): start->home, then never browse:
        # from home, exit immediately or loop home<->... can't revisit home
        # without browse, so P = 0.5 * 0.7.
        assert dist.probability_of({"home"}) == pytest.approx(0.35)
        # P({browse} only) = 0.5 * 0.6.
        assert dist.probability_of({"browse"}) == pytest.approx(0.30)
        # Everything else visits both.
        assert dist.probability_of({"home", "browse"}) == pytest.approx(0.35)

    def test_matches_simulation(self, cyclic, rng):
        from repro.sim import SessionSimulation

        exact = cyclic.scenario_distribution()
        empirical = SessionSimulation(cyclic, rng).empirical_scenario_distribution(
            8000
        )
        assert exact.total_variation_distance(empirical) < 0.03

    def test_twelve_scenarios_for_ta_shape(self):
        """A full TA-shaped graph yields exactly the paper's 12 scenarios."""
        profile = OperationalProfile({
            ("Start", "home"): 0.6, ("Start", "browse"): 0.4,
            ("home", "browse"): 0.2, ("home", "search"): 0.3,
            ("home", "Exit"): 0.5,
            ("browse", "home"): 0.1, ("browse", "search"): 0.4,
            ("browse", "Exit"): 0.5,
            ("search", "book"): 0.3, ("search", "Exit"): 0.7,
            ("book", "search"): 0.2, ("book", "pay"): 0.4,
            ("book", "Exit"): 0.4,
            ("pay", "Exit"): 1.0,
        })
        dist = profile.scenario_distribution()
        assert len(dist) == 12
        # No scenario may contain book without search, or pay without book.
        for scenario in dist:
            if "pay" in scenario.functions:
                assert "book" in scenario.functions
            if "book" in scenario.functions:
                assert "search" in scenario.functions


class TestSampling:
    def test_sample_session_returns_functions_only(self, simple, rng):
        session = simple.sample_session(rng)
        assert set(session) <= {"home", "search"}
        assert len(session) >= 1
