"""Tests for scenario types and distributions."""

import pytest

from repro.errors import ValidationError
from repro.profiles import Scenario, ScenarioDistribution


@pytest.fixture
def mix():
    return ScenarioDistribution([
        Scenario(frozenset(), 0.1),
        Scenario(frozenset({"home"}), 0.5),
        Scenario(frozenset({"home", "search"}), 0.4),
    ])


class TestScenario:
    def test_probability_validated(self):
        with pytest.raises(ValidationError):
            Scenario(frozenset({"a"}), 1.2)

    def test_functions_coerced_to_frozenset(self):
        scenario = Scenario({"a", "b"}, 0.5)
        assert isinstance(scenario.functions, frozenset)

    def test_involves(self):
        scenario = Scenario(frozenset({"home"}), 0.5)
        assert scenario.involves("home")
        assert not scenario.involves("pay")

    def test_label_ordering(self):
        scenario = Scenario(frozenset({"search", "home"}), 0.5)
        assert scenario.label(order=["home", "search"]) == "{home, search}"
        assert scenario.label() == "{home, search}"  # alphabetical fallback


class TestScenarioDistribution:
    def test_rejects_duplicates(self):
        with pytest.raises(ValidationError, match="duplicate"):
            ScenarioDistribution([
                Scenario(frozenset({"a"}), 0.5),
                Scenario(frozenset({"a"}), 0.5),
            ])

    def test_rejects_unnormalized(self):
        with pytest.raises(ValidationError, match="sum"):
            ScenarioDistribution([Scenario(frozenset({"a"}), 0.5)])

    def test_probability_of(self, mix):
        assert mix.probability_of({"home"}) == 0.5
        assert mix.probability_of({"pay"}) == 0.0
        assert mix.probability_of([]) == pytest.approx(0.1)

    def test_activation_probability(self, mix):
        assert mix.activation_probability("home") == pytest.approx(0.9)
        assert mix.activation_probability("search") == pytest.approx(0.4)

    def test_iteration_order_smallest_sets_first(self, mix):
        sizes = [len(s.functions) for s in mix]
        assert sizes == sorted(sizes)

    def test_group_by(self, mix):
        groups = mix.group_by(
            lambda s: "deep" if "search" in s.functions else "shallow"
        )
        assert groups == {"shallow": pytest.approx(0.6), "deep": pytest.approx(0.4)}

    def test_restricted_to(self, mix):
        conditional = mix.restricted_to(lambda s: "home" in s.functions)
        assert conditional.probability_of({"home"}) == pytest.approx(0.5 / 0.9)
        assert sum(s.probability for s in conditional) == pytest.approx(1.0)

    def test_restricted_to_empty_rejected(self, mix):
        with pytest.raises(ValidationError):
            mix.restricted_to(lambda s: "pay" in s.functions)

    def test_total_variation_distance(self, mix):
        assert mix.total_variation_distance(mix) == 0.0
        other = ScenarioDistribution([
            Scenario(frozenset(), 0.1),
            Scenario(frozenset({"home"}), 0.4),
            Scenario(frozenset({"home", "search"}), 0.5),
        ])
        assert mix.total_variation_distance(other) == pytest.approx(0.1)
