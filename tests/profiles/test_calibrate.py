"""Tests for profile calibration."""

import pytest

from repro.errors import ValidationError
from repro.profiles import OperationalProfile, calibrate_profile


@pytest.fixture
def small_edges():
    return [
        ("Start", "home"),
        ("home", "search"),
        ("home", "Exit"),
        ("search", "Exit"),
    ]


class TestCalibration:
    def test_recovers_known_profile(self, small_edges):
        truth = OperationalProfile({
            ("Start", "home"): 1.0,
            ("home", "search"): 0.35,
            ("home", "Exit"): 0.65,
            ("search", "Exit"): 1.0,
        })
        target = truth.scenario_distribution()
        result = calibrate_profile(small_edges, target)
        assert result.total_variation_distance < 1e-6
        assert result.profile.probability("home", "search") == pytest.approx(
            0.35, abs=1e-4
        )

    def test_recovers_cyclic_profile(self):
        edges = [
            ("Start", "home"), ("Start", "browse"),
            ("home", "browse"), ("home", "Exit"),
            ("browse", "home"), ("browse", "Exit"),
        ]
        truth = OperationalProfile({
            ("Start", "home"): 0.6, ("Start", "browse"): 0.4,
            ("home", "browse"): 0.25, ("home", "Exit"): 0.75,
            ("browse", "home"): 0.3, ("browse", "Exit"): 0.7,
        })
        result = calibrate_profile(edges, truth.scenario_distribution())
        assert result.total_variation_distance < 1e-5

    def test_warm_start_from_initial_profile(self, small_edges):
        truth = OperationalProfile({
            ("Start", "home"): 1.0,
            ("home", "search"): 0.2,
            ("home", "Exit"): 0.8,
            ("search", "Exit"): 1.0,
        })
        result = calibrate_profile(
            small_edges, truth.scenario_distribution(), initial_profile=truth
        )
        assert result.total_variation_distance < 1e-9
        assert result.iterations <= 5

    def test_deterministic_graph_without_parameters(self):
        edges = [("Start", "home"), ("home", "Exit")]
        truth = OperationalProfile({
            ("Start", "home"): 1.0, ("home", "Exit"): 1.0,
        })
        result = calibrate_profile(edges, truth.scenario_distribution())
        assert result.total_variation_distance == pytest.approx(0.0)
        assert result.iterations == 1

    def test_duplicate_edges_rejected(self):
        with pytest.raises(ValidationError, match="duplicate"):
            calibrate_profile(
                [("Start", "a"), ("Start", "a"), ("a", "Exit")],
                OperationalProfile(
                    {("Start", "a"): 1.0, ("a", "Exit"): 1.0}
                ).scenario_distribution(),
            )

    def test_fits_paper_class_a_approximately(self):
        """Table 1's class A can be approximated by a Fig. 2 graph.

        The fit is over-determined (8 free probabilities vs 11 scenario
        frequencies), so we only require a loose fit — the point is that
        the pipeline profile -> scenarios can be inverted usefully.
        """
        from repro.ta import CLASS_A, TA_PROFILE_EDGES

        result = calibrate_profile(
            TA_PROFILE_EDGES, CLASS_A.distribution, max_evaluations=400
        )
        assert result.total_variation_distance < 0.05
        fitted = result.profile.scenario_distribution()
        assert len(fitted) == 12
