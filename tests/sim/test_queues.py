"""Queue simulation vs the analytic M/M/c/K results."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.queueing import MMCKQueue, mmck_blocking_probability
from repro.sim import QueueSimulation


class TestQueueSimulation:
    def test_blocking_converges_to_equation_3(self, rng):
        sim = QueueSimulation(
            arrival_rate=100.0, service_rate=100.0, servers=2, capacity=10,
            rng=rng,
        )
        result = sim.run(num_arrivals=300_000)
        exact = mmck_blocking_probability(1.0, 2, 10)
        assert result.blocking_probability == pytest.approx(exact, rel=0.2)

    def test_single_server_blocking(self, rng):
        sim = QueueSimulation(
            arrival_rate=1.0, service_rate=1.0, servers=1, capacity=5, rng=rng
        )
        result = sim.run(num_arrivals=100_000)
        assert result.blocking_probability == pytest.approx(1.0 / 6.0, rel=0.05)

    def test_mean_number_matches_analytic(self, rng):
        sim = QueueSimulation(
            arrival_rate=90.0, service_rate=100.0, servers=1, capacity=8,
            rng=rng,
        )
        result = sim.run(num_arrivals=150_000)
        analytic = MMCKQueue(
            arrival_rate=90.0, service_rate=100.0, servers=1, capacity=8
        ).metrics()
        assert result.mean_number_in_system == pytest.approx(
            analytic.mean_number_in_system, rel=0.05
        )
        assert result.utilization == pytest.approx(
            analytic.utilization, rel=0.05
        )

    def test_conservation(self, rng):
        sim = QueueSimulation(
            arrival_rate=5.0, service_rate=1.0, servers=2, capacity=4, rng=rng
        )
        result = sim.run(num_arrivals=20_000)
        # Everyone who arrived was either blocked, served, or still inside.
        in_flight = result.arrivals - result.blocked - result.served
        assert 0 <= in_flight <= 4

    def test_no_blocking_when_capacity_ample(self, rng):
        sim = QueueSimulation(
            arrival_rate=1.0, service_rate=10.0, servers=4, capacity=400,
            rng=rng,
        )
        result = sim.run(num_arrivals=5_000)
        assert result.blocking_probability == 0.0

    def test_validation(self, rng):
        with pytest.raises(ValidationError):
            QueueSimulation(1.0, 1.0, servers=4, capacity=2, rng=rng)
        sim = QueueSimulation(1.0, 1.0, servers=1, capacity=2, rng=rng)
        with pytest.raises(ValidationError):
            sim.run(num_arrivals=0)
