"""Session simulation vs exact scenario and availability computations."""

import numpy as np
import pytest

from repro.profiles import OperationalProfile
from repro.sim import SessionSimulation, estimate_user_availability
from repro.ta import CLASS_A, CLASS_B, TravelAgencyModel


@pytest.fixture
def ta_profile():
    return OperationalProfile({
        ("Start", "home"): 0.6, ("Start", "browse"): 0.4,
        ("home", "browse"): 0.2, ("home", "search"): 0.3,
        ("home", "Exit"): 0.5,
        ("browse", "home"): 0.1, ("browse", "search"): 0.4,
        ("browse", "Exit"): 0.5,
        ("search", "book"): 0.3, ("search", "Exit"): 0.7,
        ("book", "search"): 0.2, ("book", "pay"): 0.4,
        ("book", "Exit"): 0.4,
        ("pay", "Exit"): 1.0,
    })


class TestSessionSimulation:
    def test_empirical_matches_exact(self, ta_profile, rng):
        exact = ta_profile.scenario_distribution()
        empirical = SessionSimulation(ta_profile, rng).empirical_scenario_distribution(
            15_000
        )
        assert exact.total_variation_distance(empirical) < 0.02

    def test_sample_counts(self, ta_profile, rng):
        tally = SessionSimulation(ta_profile, rng).sample_sessions(500)
        assert sum(tally.values()) == 500

    def test_count_validation(self, ta_profile, rng):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            SessionSimulation(ta_profile, rng).sample_sessions(0)


class TestUserAvailabilityEstimate:
    def test_converges_to_equation_10(self, rng):
        ta = TravelAgencyModel()
        exact = ta.user_availability(CLASS_B).availability
        estimate = estimate_user_availability(
            ta.hierarchical_model, CLASS_B, sessions=40_000, rng=rng
        )
        # Binomial std at n = 40k is ~0.0009; allow 4 sigma.
        assert estimate == pytest.approx(exact, abs=0.004)

    def test_class_ordering_visible_in_simulation(self, rng):
        ta = TravelAgencyModel()
        est_a = estimate_user_availability(
            ta.hierarchical_model, CLASS_A, sessions=30_000, rng=rng
        )
        est_b = estimate_user_availability(
            ta.hierarchical_model, CLASS_B, sessions=30_000, rng=rng
        )
        assert est_a > est_b
