"""Tests for the end-to-end failure/repair simulation."""

import numpy as np
import pytest

from repro.availability import TwoStateAvailability
from repro.core import HierarchicalModel
from repro.profiles import UserClass
from repro.rbd import parallel
from repro.sim import simulate_user_availability_over_time


def small_model(failure_rate=0.2, repair_rate=1.0):
    model = HierarchicalModel()
    model.add_resource(
        "host", TwoStateAvailability(failure_rate=failure_rate,
                                     repair_rate=repair_rate)
    )
    model.add_service("web", "host")
    model.add_function("home", services=["web"])
    return model


def all_users():
    return UserClass.from_probabilities("all", {frozenset({"home"}): 1.0})


class TestConvergence:
    def test_single_component_matches_two_state(self, rng):
        model = small_model()
        result = simulate_user_availability_over_time(
            model, all_users(), horizon=50_000.0, rng=rng
        )
        assert result.average_user_availability == pytest.approx(
            1.0 / 1.2, abs=0.01
        )
        assert result.resource_transitions > 1000

    def test_matches_analytic_user_availability(self, rng):
        """Redundant structure with fast dynamics converges to eq. 10."""
        model = HierarchicalModel()
        for i in (1, 2):
            model.add_resource(
                f"host-{i}",
                TwoStateAvailability(failure_rate=0.5, repair_rate=2.0),
            )
        model.add_resource(
            "lan", TwoStateAvailability(failure_rate=0.1, repair_rate=5.0)
        )
        model.add_service("web", parallel("host-1", "host-2"))
        model.add_service("lan", "lan")
        model.add_function("home", services=["web"])
        model.require_everywhere(["lan"])
        users = all_users()
        analytic = model.user_availability(users).availability
        result = simulate_user_availability_over_time(
            model, users, horizon=30_000.0, rng=rng
        )
        assert result.average_user_availability == pytest.approx(
            analytic, abs=0.01
        )

    def test_ta_model_converges(self, rng):
        """The full TA with all resources mapped to two-state processes."""
        from repro.ta import CLASS_A, TravelAgencyModel

        ta = TravelAgencyModel()
        analytic = ta.user_availability(CLASS_A).availability
        result = simulate_user_availability_over_time(
            ta.hierarchical_model, CLASS_A, horizon=60_000.0, rng=rng
        )
        # The two-state mapping preserves steady-state availabilities, so
        # the time average converges to the same eq.-(10) value.
        assert result.average_user_availability == pytest.approx(
            analytic, abs=0.01
        )


class TestStructure:
    def test_outage_fraction_counts_common_failures(self, rng):
        """When the only common service dies often, outages appear."""
        model = HierarchicalModel()
        model.add_resource(
            "lan", TwoStateAvailability(failure_rate=1.0, repair_rate=4.0)
        )
        model.add_resource("host", 1.0)  # never fails
        model.add_service("lan", "lan")
        model.add_service("web", "host")
        model.add_function("home", services=["web"])
        model.require_everywhere(["lan"])
        result = simulate_user_availability_over_time(
            model, all_users(), horizon=10_000.0, rng=rng
        )
        # LAN is down 20% of the time; sessions then fail together.
        assert result.fraction_total_outage == pytest.approx(0.2, abs=0.02)
        assert result.average_user_availability == pytest.approx(0.8, abs=0.02)

    def test_perfect_resources_never_transition(self, rng):
        model = HierarchicalModel()
        model.add_resource("solid", 1.0)
        model.add_service("web", "solid")
        model.add_function("home", services=["web"])
        result = simulate_user_availability_over_time(
            model, all_users(), horizon=100.0, rng=rng
        )
        assert result.resource_transitions == 0
        assert result.average_user_availability == 1.0
        assert result.fraction_fully_available == 1.0

    def test_fixed_availability_mapped_to_two_state(self, rng):
        model = HierarchicalModel()
        model.add_resource("flaky", 0.9)  # plain number
        model.add_service("web", "flaky")
        model.add_function("home", services=["web"])
        result = simulate_user_availability_over_time(
            model, all_users(), horizon=30_000.0, rng=rng,
            default_repair_rate=2.0,
        )
        assert result.average_user_availability == pytest.approx(0.9, abs=0.01)

    def test_horizon_validation(self, rng):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            simulate_user_availability_over_time(
                small_model(), all_users(), horizon=0.0, rng=rng
            )
