"""Tests for fault injection in the end-to-end simulator."""

import numpy as np
import pytest

from repro.availability import TwoStateAvailability
from repro.core import HierarchicalModel
from repro.errors import SimulationError, ValidationError
from repro.profiles import UserClass
from repro.rbd import parallel
from repro.sim import FaultEvent, simulate_user_availability_over_time


def small_model(failure_rate=1e-6, repair_rate=1.0):
    model = HierarchicalModel()
    model.add_resource(
        "host",
        TwoStateAvailability(failure_rate=failure_rate, repair_rate=repair_rate),
    )
    model.add_service("web", "host")
    model.add_function("home", services=["web"])
    return model


def redundant_model():
    model = HierarchicalModel()
    for i in (1, 2):
        model.add_resource(
            f"host-{i}",
            TwoStateAvailability(failure_rate=1e-6, repair_rate=1.0),
        )
    model.add_service("web", parallel("host-1", "host-2"))
    model.add_function("home", services=["web"])
    return model


def all_users():
    return UserClass.from_probabilities("all", {frozenset({"home"}): 1.0})


class TestFaultEventValidation:
    def test_rejects_negative_time(self):
        with pytest.raises(ValidationError):
            FaultEvent(time=-1.0, force_down=frozenset({"host"}))

    def test_rejects_empty_event(self):
        with pytest.raises(ValidationError):
            FaultEvent(time=1.0)

    def test_rejects_factor_outside_unit_interval(self):
        with pytest.raises(ValidationError):
            FaultEvent(time=1.0, service_factors={"web": 1.5})

    def test_rejects_unknown_resource_at_simulation_time(self, rng):
        model = small_model()
        with pytest.raises(ValidationError, match="unknown resource"):
            simulate_user_availability_over_time(
                model, all_users(), horizon=10.0, rng=rng,
                faults=[FaultEvent(time=1.0, force_down=frozenset({"nope"}))],
            )

    def test_rejects_unknown_service_at_simulation_time(self, rng):
        model = small_model()
        with pytest.raises(ValidationError, match="unknown service"):
            simulate_user_availability_over_time(
                model, all_users(), horizon=10.0, rng=rng,
                faults=[FaultEvent(time=1.0, service_factors={"nope": 0.5})],
            )

    def test_release_without_force_is_an_error(self, rng):
        model = small_model()
        with pytest.raises(SimulationError, match="not forced down"):
            simulate_user_availability_over_time(
                model, all_users(), horizon=10.0, rng=rng,
                faults=[FaultEvent(time=1.0, release=frozenset({"host"}))],
            )


class TestForcedOutages:
    def test_forced_window_reduces_availability_proportionally(self, rng):
        # A reliable host forced down for 20% of the horizon.
        model = small_model()
        faults = [
            FaultEvent(time=40.0, force_down=frozenset({"host"})),
            FaultEvent(time=60.0, release=frozenset({"host"})),
        ]
        result = simulate_user_availability_over_time(
            model, all_users(), horizon=100.0, rng=rng, faults=faults
        )
        assert result.average_user_availability == pytest.approx(0.8, abs=0.01)
        assert result.fault_events_applied == 2

    def test_correlated_outage_defeats_redundancy(self, rng):
        # Both hosts forced down together: parallel redundancy that makes
        # the analytic availability ~1 cannot mask a correlated fault.
        model = redundant_model()
        faults = [
            FaultEvent(time=10.0, force_down=frozenset({"host-1", "host-2"})),
            FaultEvent(time=20.0, release=frozenset({"host-1", "host-2"})),
        ]
        result = simulate_user_availability_over_time(
            model, all_users(), horizon=100.0, rng=rng, faults=faults
        )
        assert result.average_user_availability == pytest.approx(0.9, abs=0.01)

    def test_single_host_outage_is_masked_by_redundancy(self, rng):
        model = redundant_model()
        faults = [
            FaultEvent(time=10.0, force_down=frozenset({"host-1"})),
            FaultEvent(time=20.0, release=frozenset({"host-1"})),
        ]
        result = simulate_user_availability_over_time(
            model, all_users(), horizon=100.0, rng=rng, faults=faults
        )
        assert result.average_user_availability > 0.999

    def test_stacked_forces_unwind_in_order(self, rng):
        # Two overlapping force windows on the same host: the host stays
        # down until *both* are released.
        model = small_model()
        faults = [
            FaultEvent(time=10.0, force_down=frozenset({"host"})),
            FaultEvent(time=15.0, force_down=frozenset({"host"})),
            FaultEvent(time=20.0, release=frozenset({"host"})),
            FaultEvent(time=30.0, release=frozenset({"host"})),
        ]
        result = simulate_user_availability_over_time(
            model, all_users(), horizon=100.0, rng=rng, faults=faults
        )
        # Down from t=10 to t=30.
        assert result.average_user_availability == pytest.approx(0.8, abs=0.01)

    def test_events_past_horizon_are_ignored(self, rng):
        model = small_model()
        faults = [
            FaultEvent(time=500.0, force_down=frozenset({"host"})),
            FaultEvent(time=600.0, release=frozenset({"host"})),
        ]
        result = simulate_user_availability_over_time(
            model, all_users(), horizon=100.0, rng=rng, faults=faults
        )
        assert result.average_user_availability > 0.999
        assert result.fault_events_applied == 0


class TestServiceDegradation:
    def test_factor_scales_conditional_availability(self, rng):
        model = small_model()
        faults = [
            FaultEvent(time=0.0, service_factors={"web": 0.5}),
        ]
        result = simulate_user_availability_over_time(
            model, all_users(), horizon=100.0, rng=rng, faults=faults
        )
        # The host is essentially always up; sessions succeed at 50%.
        assert result.average_user_availability == pytest.approx(0.5, abs=0.01)

    def test_factor_window_restores_cleanly(self, rng):
        model = small_model()
        faults = [
            FaultEvent(time=25.0, service_factors={"web": 0.0}),
            FaultEvent(time=50.0, service_factors={"web": 1.0}),
        ]
        result = simulate_user_availability_over_time(
            model, all_users(), horizon=100.0, rng=rng, faults=faults
        )
        assert result.average_user_availability == pytest.approx(0.75, abs=0.01)

    def test_null_fault_list_matches_no_faults(self, rng):
        model = small_model(failure_rate=0.2)
        seed_state = rng.bit_generator.state
        baseline = simulate_user_availability_over_time(
            model, all_users(), horizon=5000.0, rng=rng
        )
        rng2 = np.random.default_rng()
        rng2.bit_generator.state = seed_state
        faulted = simulate_user_availability_over_time(
            model, all_users(), horizon=5000.0, rng=rng2, faults=[]
        )
        assert faulted.average_user_availability == pytest.approx(
            baseline.average_user_availability, abs=1e-12
        )
