"""Tests for the simulation kernel."""

import pytest

from repro.errors import SimulationError, ValidationError
from repro.sim import Simulator


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(3.0, lambda: log.append("c"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(2.0, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 3.0
        assert sim.events_processed == 3

    def test_ties_break_fifo(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append("first"))
        sim.schedule(1.0, lambda: log.append("second"))
        sim.run()
        assert log == ["first", "second"]

    def test_events_can_schedule_events(self):
        sim = Simulator()
        log = []

        def chain():
            log.append(sim.now)
            if sim.now < 3.0:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run()
        assert log == [1.0, 2.0, 3.0]

    def test_run_until_stops_at_horizon(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(5.0, lambda: log.append(5))
        sim.run_until(2.0)
        assert log == [1]
        assert sim.now == 2.0
        # The late event is still queued.
        sim.run()
        assert log == [1, 5]

    def test_run_max_events_guard_raises_instead_of_truncating(self):
        # A silent truncation here used to hide runaway self-rescheduling
        # bugs; the guard now names the symptom instead.
        sim = Simulator()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(1.0, forever)
        with pytest.raises(SimulationError, match="max_events=10"):
            sim.run(max_events=10)
        assert sim.events_processed == 10
        assert sim.pending == 1

    def test_run_max_events_passes_when_queue_drains(self):
        sim = Simulator()
        for delay in (1.0, 2.0, 3.0):
            sim.schedule(delay, lambda: None)
        sim.run(max_events=3)
        assert sim.events_processed == 3

    def test_run_max_time_guard(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(50.0, lambda: None)
        with pytest.raises(SimulationError, match="max_time=10"):
            sim.run(max_time=10.0)
        # The guard fires before executing the out-of-range event.
        assert sim.events_processed == 1
        assert sim.pending == 1

    def test_run_max_time_passes_when_all_events_in_range(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run(max_time=10.0)
        assert sim.events_processed == 1

    def test_cancellation_token_counts_events(self):
        from repro.errors import DeadlineExceededError
        from repro.runtime import Budget

        token = Budget(max_events=5).start()
        sim = Simulator(cancellation=token)

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(1.0, forever)
        with pytest.raises(DeadlineExceededError):
            sim.run()
        # The budget admits 5 events; the 6th executes, then its
        # count_event() call trips the exhausted budget.
        assert sim.events_processed == 6

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError, match="before current time"):
            sim.schedule_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValidationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_run_until_event_loop_guard(self):
        sim = Simulator()

        def storm():
            sim.schedule(0.0, storm)

        sim.schedule(0.0, storm)
        with pytest.raises(SimulationError, match="event loop"):
            sim.run_until(1.0, max_events=100)

    def test_step_on_empty_queue(self):
        assert Simulator().step() is False
