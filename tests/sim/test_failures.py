"""Failure/repair trajectory simulation vs analytic steady states."""

import re

import numpy as np
import pytest

from repro.availability import ImperfectCoverageFarm, WebServiceModel
from repro.markov import CTMC
from repro.sim import simulate_ctmc_occupancy, simulate_web_service_availability


class TestOccupancy:
    def test_two_state_occupancy(self, rng):
        chain = CTMC(["up", "down"], [[-1.0, 1.0], [3.0, -3.0]])
        occupancy = simulate_ctmc_occupancy(chain, "up", 20_000.0, rng)
        assert occupancy["up"] == pytest.approx(0.75, abs=0.02)
        assert sum(occupancy.values()) == pytest.approx(1.0, abs=1e-9)

    def test_farm_occupancy_matches_closed_form(self, rng):
        farm = ImperfectCoverageFarm(
            servers=3, failure_rate=0.05, repair_rate=1.0,
            coverage=0.9, reconfiguration_rate=5.0,
        )
        occupancy = simulate_ctmc_occupancy(
            farm.to_ctmc(), 3, 200_000.0, rng
        )
        operational, _ = farm.state_probabilities()
        for i in (2, 3):
            assert occupancy[i] == pytest.approx(operational[i], abs=0.01)

    def test_absorbing_state_traps_forever(self, rng):
        chain = CTMC.from_rates({("a", "b"): 10.0}, states=["a", "b"])
        occupancy = simulate_ctmc_occupancy(chain, "a", 1000.0, rng)
        assert occupancy["b"] > 0.99

    def test_horizon_validation(self, rng):
        chain = CTMC(["up", "down"], [[-1.0, 1.0], [1.0, -1.0]])
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            simulate_ctmc_occupancy(chain, "up", 0.0, rng)

    def test_transition_cap_reports_count_and_sim_time(self, rng):
        from repro.errors import SimulationError

        # Fast chain against a long horizon with a tiny cap: the error
        # must carry the diagnostics needed to spot the mismatch.
        chain = CTMC(["up", "down"], [[-100.0, 100.0], [100.0, -100.0]])
        with pytest.raises(SimulationError) as excinfo:
            simulate_ctmc_occupancy(
                chain, "up", 1000.0, rng, max_transitions=50
            )
        message = str(excinfo.value)
        assert "max_transitions=50" in message
        assert re.search(r"after \d+ transitions", message)
        assert "sim-time" in message
        assert "horizon 1000" in message


class TestWebServiceSimulation:
    def test_matches_analytic_availability(self, rng):
        # Rates inflated so failures actually happen within the horizon.
        model = WebServiceModel(
            servers=3, arrival_rate=100.0, service_rate=100.0,
            buffer_capacity=10, failure_rate=0.01, repair_rate=1.0,
            coverage=0.95, reconfiguration_rate=12.0,
        )
        estimate = simulate_web_service_availability(model, 300_000.0, rng)
        assert estimate == pytest.approx(model.availability(), abs=5e-4)
