"""Cross-validation of client-policy simulations against the closed forms.

The tier-1 agreement contract for :mod:`repro.resilience.policies`:

* circuit breaker — the DES client (`simulate_circuit_breaker_clients`)
  must agree with the CTMC closed form at every parameter point within
  ``|mean - analytic| <= Z_TOL * stderr + ABS_FLOOR``;
* timeout / hedge — the Monte-Carlo session sampler
  (`simulate_request_policy`) must agree with the analytic
  response-time-distribution value under the same tolerance.

``Z_TOL = 4`` standard errors keeps the false-failure probability of
each comparison around ``6e-5`` while still catching any systematic
model drift well below a tenth of a percent of availability.
"""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.queueing import MMCKQueue
from repro.resilience import (
    CircuitBreakerPolicy,
    HedgePolicy,
    TimeoutPolicy,
    circuit_breaker_availability,
    request_policy_availability,
)
from repro.sim import (
    simulate_circuit_breaker_clients,
    simulate_request_policy,
)

Z_TOL = 4.0        # accepted |z| in stderr units
ABS_FLOOR = 5e-4   # guard against vanishing stderr at extreme parameters


def breaker_estimate(availability, policy, replications=8, requests=20_000,
                     seed=42):
    streams = np.random.SeedSequence(seed).spawn(replications)
    estimates = [
        simulate_circuit_breaker_clients(
            availability, policy, requests, np.random.default_rng(stream)
        ).served_fraction
        for stream in streams
    ]
    mean = float(np.mean(estimates))
    stderr = float(np.std(estimates, ddof=1) / np.sqrt(replications))
    return mean, stderr


class TestCircuitBreakerCrossValidation:
    # Three regimes: healthy (rarely trips), mid (trips and recovers
    # constantly), failing (mostly open).
    POINTS = [
        (0.95, CircuitBreakerPolicy(failure_threshold=3, reset_timeout=10.0,
                                    request_rate=1.0)),
        (0.70, CircuitBreakerPolicy(failure_threshold=2, reset_timeout=5.0,
                                    request_rate=2.0, probe_rate=1.0)),
        (0.30, CircuitBreakerPolicy(failure_threshold=4, reset_timeout=2.0,
                                    request_rate=1.0)),
    ]

    @pytest.mark.parametrize(
        "availability,policy", POINTS,
        ids=["healthy", "mid", "failing"],
    )
    def test_des_matches_ctmc_within_tolerance(self, availability, policy):
        analytic = circuit_breaker_availability(availability, policy)
        mean, stderr = breaker_estimate(availability, policy)
        tolerance = Z_TOL * stderr + ABS_FLOOR
        assert abs(mean - analytic.availability) <= tolerance, (
            f"DES {mean:.5f} vs CTMC {analytic.availability:.5f} "
            f"(tolerance {tolerance:.5f})"
        )

    def test_boundary_availabilities_are_exact(self):
        policy = CircuitBreakerPolicy(failure_threshold=2, reset_timeout=5.0)
        rng = np.random.default_rng(3)
        perfect = simulate_circuit_breaker_clients(1.0, policy, 2000, rng)
        assert perfect.served_fraction == 1.0
        assert perfect.trips == 0
        dead = simulate_circuit_breaker_clients(0.0, policy, 2000, rng)
        assert dead.served_fraction == 0.0
        assert dead.trips >= 1

    def test_fractions_account_for_all_demand(self):
        policy = CircuitBreakerPolicy(failure_threshold=2, reset_timeout=5.0)
        result = simulate_circuit_breaker_clients(
            0.6, policy, 5000, np.random.default_rng(11)
        )
        # Demand is served, short-circuited, or failed at the service.
        assert 0.0 <= result.served_fraction <= 1.0
        assert 0.0 <= result.short_circuit_fraction <= 1.0
        assert result.served_fraction + result.short_circuit_fraction <= 1.0
        assert result.horizon > 0.0

    def test_rejects_nonpositive_requests(self):
        policy = CircuitBreakerPolicy(failure_threshold=1, reset_timeout=1.0)
        with pytest.raises(ValidationError, match="requests"):
            simulate_circuit_breaker_clients(
                0.5, policy, 0, np.random.default_rng(0)
            )


def policy_estimate(queue, policy, attempt_availability=1.0,
                    replications=6, sessions=100_000, seed=7):
    streams = np.random.SeedSequence(seed).spawn(replications)
    estimates = [
        simulate_request_policy(
            queue, policy, sessions, np.random.default_rng(stream),
            attempt_availability=attempt_availability,
        ).served_fraction
        for stream in streams
    ]
    mean = float(np.mean(estimates))
    stderr = float(np.std(estimates, ddof=1) / np.sqrt(replications))
    return mean, stderr


class TestRequestPolicyCrossValidation:
    FARMS = [
        MMCKQueue(arrival_rate=350.0, service_rate=100.0, servers=4,
                  capacity=10),
        MMCKQueue(arrival_rate=100.0, service_rate=100.0, servers=1,
                  capacity=10),
        MMCKQueue(arrival_rate=100.0, service_rate=100.0, servers=4,
                  capacity=10),
    ]

    @pytest.mark.parametrize(
        "queue", FARMS, ids=["loaded", "saturated-single", "provisioned"],
    )
    def test_timeout_analytic_matches_simulation(self, queue):
        policy = TimeoutPolicy(0.05)
        analytic = request_policy_availability(
            queue, policy, attempt_availability=0.97
        )
        mean, stderr = policy_estimate(
            queue, policy, attempt_availability=0.97
        )
        tolerance = Z_TOL * stderr + ABS_FLOOR
        assert abs(mean - analytic.availability) <= tolerance

    @pytest.mark.parametrize(
        "queue", FARMS, ids=["loaded", "saturated-single", "provisioned"],
    )
    def test_hedge_analytic_matches_simulation(self, queue):
        policy = HedgePolicy(0.05, 0.01)
        analytic = request_policy_availability(queue, policy)
        # The sampler sees the hedge-inflated farm state the fixed
        # point resolved — the load-feedback half of the contract.
        loaded = analytic.effective_queue(queue)
        mean, stderr = policy_estimate(loaded, policy)
        tolerance = Z_TOL * stderr + ABS_FLOOR
        assert abs(mean - analytic.availability) <= tolerance

    def test_hedged_fraction_matches_the_fixed_point(self):
        queue = self.FARMS[0]
        policy = HedgePolicy(0.05, 0.01)
        analytic = request_policy_availability(queue, policy)
        loaded = analytic.effective_queue(queue)
        result = simulate_request_policy(
            loaded, policy, 200_000, np.random.default_rng(5)
        )
        assert result.hedged_fraction == pytest.approx(
            analytic.hedge_probability, abs=5e-3
        )

    def test_timeout_sessions_never_hedge(self):
        result = simulate_request_policy(
            self.FARMS[0], TimeoutPolicy(0.05), 1000,
            np.random.default_rng(1),
        )
        assert result.hedged_fraction == 0.0

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValidationError, match="policy"):
            simulate_request_policy(
                self.FARMS[0], object(), 100, np.random.default_rng(0)
            )
