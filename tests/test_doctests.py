"""Executes the docstring examples of every public module.

Docstring examples are part of the public documentation; this test keeps
them honest.  Modules are imported and run through :mod:`doctest`
explicitly (rather than pytest's ``--doctest-modules``) so the selection
is deliberate and failures name the module.
"""

import doctest
import importlib

import pytest

MODULES = [
    "repro.availability.coverage",
    "repro.availability.repairable",
    "repro.availability.twostate",
    "repro.availability.webservice",
    "repro.core.interaction",
    "repro.core.levels",
    "repro.core.model",
    "repro.faulttree.cutsets",
    "repro.faulttree.evaluate",
    "repro.faulttree.nodes",
    "repro.markov.builder",
    "repro.markov.ctmc",
    "repro.markov.dtmc",
    "repro.markov.passage",
    "repro.markov.rewards",
    "repro.measurement.estimators",
    "repro.measurement.probes",
    "repro.measurement.uncertainty",
    "repro.obs.context",
    "repro.obs.metrics",
    "repro.obs.profiling",
    "repro.obs.tracing",
    "repro.profiles.classes",
    "repro.profiles.graph",
    "repro.profiles.scenarios",
    "repro.engine.cache",
    "repro.engine.executor",
    "repro.queueing.batch",
    "repro.queueing.erlang",
    "repro.queueing.mg1",
    "repro.queueing.mm1",
    "repro.queueing.mm1k",
    "repro.queueing.mmc",
    "repro.queueing.mmck",
    "repro.queueing.mminf",
    "repro.queueing.responsetime",
    "repro.rbd.blocks",
    "repro.rbd.evaluate",
    "repro.resilience.campaign",
    "repro.resilience.degradation",
    "repro.resilience.faults",
    "repro.resilience.report",
    "repro.resilience.retry",
    "repro.reporting.downtime",
    "repro.reporting.series",
    "repro.reporting.tables",
    "repro.runtime.budget",
    "repro.runtime.heartbeat",
    "repro.runtime.journal",
    "repro.runtime.solver_retry",
    "repro.sensitivity.sweep",
    "repro.sim.des",
    "repro.sim.endtoend",
    "repro.sim.failures",
    "repro.sim.queues",
    "repro.sim.sessions",
    "repro.spec",
    "repro.spn.analysis",
    "repro.spn.net",
    "repro.ta.economics",
    "repro.ta.model",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, (
        f"{results.failed} doctest failure(s) in {module_name}"
    )


def test_module_list_is_fresh():
    """Every listed module must still exist (guards against renames)."""
    for module_name in MODULES:
        importlib.import_module(module_name)
