"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ta import TAParameters


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministically seeded random generator."""
    return np.random.default_rng(20030625)  # DSN 2003 conference date


@pytest.fixture
def paper_params() -> TAParameters:
    """The paper's Table 7 / Section 5.2 parameter set."""
    return TAParameters()
