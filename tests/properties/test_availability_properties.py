"""Property-based tests for the availability layer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.availability import (
    ImperfectCoverageFarm,
    PerfectCoverageFarm,
    WebServiceModel,
)

small_rates = st.floats(min_value=1e-6, max_value=10.0, allow_nan=False)
server_counts = st.integers(min_value=1, max_value=8)


class TestFarmInvariants:
    @given(server_counts, small_rates, small_rates)
    @settings(max_examples=60, deadline=None)
    def test_perfect_farm_matches_ctmc(self, servers, lam, mu):
        farm = PerfectCoverageFarm(
            servers=servers, failure_rate=lam, repair_rate=mu
        )
        closed = farm.state_probabilities()
        numeric = farm.to_ctmc().steady_state()
        for i in range(servers + 1):
            assert closed[i] == pytest.approx(numeric[i], abs=1e-9)

    @given(
        server_counts,
        small_rates,
        small_rates,
        st.floats(min_value=0.0, max_value=1.0),
        small_rates,
    )
    @settings(max_examples=60, deadline=None)
    def test_imperfect_farm_matches_ctmc(self, servers, lam, mu, c, beta):
        farm = ImperfectCoverageFarm(
            servers=servers, failure_rate=lam, repair_rate=mu,
            coverage=c, reconfiguration_rate=beta,
        )
        operational, down = farm.state_probabilities()
        total = sum(operational.values()) + sum(down.values())
        assert total == pytest.approx(1.0, abs=1e-9)
        numeric = farm.to_ctmc().steady_state()
        for i in range(servers + 1):
            assert operational[i] == pytest.approx(numeric[i], abs=1e-9)

    @given(server_counts, small_rates, small_rates, small_rates)
    @settings(max_examples=40, deadline=None)
    def test_coverage_monotone(self, servers, lam, mu, beta):
        """Better coverage never increases the down-state probability."""
        def down(c):
            return ImperfectCoverageFarm(
                servers=servers, failure_rate=lam, repair_rate=mu,
                coverage=c, reconfiguration_rate=beta,
            ).down_state_probability()

        assert down(0.99) <= down(0.5) + 1e-12


class TestWebServiceInvariants:
    @given(
        server_counts,
        st.floats(min_value=1.0, max_value=500.0),
        st.floats(min_value=1.0, max_value=500.0),
        st.floats(min_value=1e-6, max_value=1.0),
        st.floats(min_value=0.01, max_value=10.0),
        st.floats(min_value=0.5, max_value=1.0),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_availability_in_unit_interval(
        self, servers, alpha, nu, lam, mu, coverage, data
    ):
        capacity = data.draw(st.integers(servers, servers + 30))
        model = WebServiceModel(
            servers=servers, arrival_rate=alpha, service_rate=nu,
            buffer_capacity=capacity, failure_rate=lam, repair_rate=mu,
            coverage=coverage, reconfiguration_rate=12.0,
        )
        breakdown = model.loss_breakdown()
        assert 0.0 <= model.availability() <= 1.0
        assert breakdown.buffer_full >= 0.0
        assert breakdown.all_servers_down >= 0.0
        assert breakdown.manual_reconfiguration >= 0.0
        assert breakdown.total_unavailability == pytest.approx(
            1.0 - model.availability(), abs=1e-12
        )

    @given(
        st.floats(min_value=0.001, max_value=0.5),
        st.floats(min_value=0.001, max_value=0.5),
        st.floats(min_value=10.0, max_value=200.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_deadline_availability_monotone_and_bounded(
        self, deadline_a, deadline_b, alpha
    ):
        model = WebServiceModel(
            servers=3, arrival_rate=alpha, service_rate=100.0,
            buffer_capacity=10, failure_rate=1e-3, repair_rate=1.0,
            coverage=0.95, reconfiguration_rate=12.0,
        )
        low, high = sorted((deadline_a, deadline_b))
        a_low = model.deadline_availability(low)
        a_high = model.deadline_availability(high)
        assert 0.0 <= a_low <= a_high + 1e-12
        assert a_high <= model.availability() + 1e-12

    @given(
        st.floats(min_value=1.0, max_value=200.0),
        st.floats(min_value=1e-6, max_value=0.1),
        st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_reward_model_consistency(self, alpha, lam, mu):
        model = WebServiceModel(
            servers=3, arrival_rate=alpha, service_rate=100.0,
            buffer_capacity=10, failure_rate=lam, repair_rate=mu,
            coverage=0.95, reconfiguration_rate=12.0,
        )
        assert model.reward_model().steady_state_reward() == pytest.approx(
            model.availability(), abs=1e-10
        )
