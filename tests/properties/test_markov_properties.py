"""Property-based tests for the Markov layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov import CTMC, birth_death_chain
from repro.markov.solvers import steady_state_gth, steady_state_linear

rates = st.floats(min_value=1e-6, max_value=1e6, allow_nan=False)


@st.composite
def generators(draw, max_states=7):
    """Random irreducible generators via a strictly positive rate cycle."""
    n = draw(st.integers(min_value=2, max_value=max_states))
    q = np.zeros((n, n))
    # A cycle guarantees irreducibility...
    for i in range(n):
        q[i, (i + 1) % n] = draw(rates)
    # ...plus random extra edges.
    extra = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1), rates
            ),
            max_size=10,
        )
    )
    for i, j, r in extra:
        if i != j:
            q[i, j] += r
    np.fill_diagonal(q, -q.sum(axis=1))
    return q


class TestSteadyStateInvariants:
    @given(generators())
    @settings(max_examples=60, deadline=None)
    def test_gth_produces_distribution(self, q):
        pi = steady_state_gth(q)
        assert np.all(pi >= 0)
        assert pi.sum() == pytest.approx(1.0, abs=1e-9)
        scale = max(np.abs(q).max(), 1.0)
        assert np.abs(pi @ q).max() < 1e-8 * scale

    @given(generators(max_states=5))
    @settings(max_examples=40, deadline=None)
    def test_gth_and_linear_agree(self, q):
        gth = steady_state_gth(q)
        linear = steady_state_linear(q)
        assert gth == pytest.approx(linear, abs=1e-7)

    @given(generators(max_states=5))
    @settings(max_examples=30, deadline=None)
    def test_embedded_chain_consistency(self, q):
        """pi_ctmc is proportional to pi_embedded / exit_rate."""
        chain = CTMC(list(range(q.shape[0])), q)
        pi = chain.steady_state()
        embedded = chain.embedded_dtmc().stationary_distribution()
        weights = {
            s: embedded[s] / chain.exit_rate(s) for s in chain.states
        }
        total = sum(weights.values())
        for s in chain.states:
            assert pi[s] == pytest.approx(weights[s] / total, abs=1e-7)


class TestBirthDeathInvariants:
    @given(
        st.lists(rates, min_size=1, max_size=8),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_detailed_balance(self, births, data):
        deaths = data.draw(
            st.lists(rates, min_size=len(births), max_size=len(births))
        )
        chain = birth_death_chain(births, deaths)
        pi = chain.steady_state()
        # Birth-death chains satisfy detailed balance.
        for i in range(len(births)):
            flow_up = pi[i] * births[i]
            flow_down = pi[i + 1] * deaths[i]
            assert flow_up == pytest.approx(
                flow_down, rel=1e-6, abs=1e-12
            )


class TestTransientInvariants:
    @given(generators(max_states=5), st.floats(min_value=0.0, max_value=20.0))
    @settings(max_examples=30, deadline=None)
    def test_transient_is_distribution(self, q, t):
        from repro.markov.transient import uniformization

        n = q.shape[0]
        p0 = np.zeros(n)
        p0[0] = 1.0
        result = uniformization(q, p0, t)
        assert np.all(result >= -1e-12)
        assert result.sum() == pytest.approx(1.0, abs=1e-9)
