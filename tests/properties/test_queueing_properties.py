"""Property-based tests for the queueing layer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing import (
    MMCKQueue,
    erlang_b,
    mm1k_blocking_probability,
    mmck_blocking_probability,
)

loads = st.floats(min_value=1e-3, max_value=10.0, allow_nan=False)
capacities = st.integers(min_value=1, max_value=60)


class TestBlockingProbabilityBounds:
    @given(loads, capacities)
    @settings(max_examples=100, deadline=None)
    def test_mm1k_in_unit_interval(self, load, capacity):
        p = mm1k_blocking_probability(load, capacity)
        assert 0.0 <= p <= 1.0

    @given(loads, st.integers(1, 10), st.data())
    @settings(max_examples=100, deadline=None)
    def test_mmck_in_unit_interval(self, load, servers, data):
        capacity = data.draw(st.integers(servers, servers + 50))
        p = mmck_blocking_probability(load, servers, capacity)
        assert 0.0 <= p <= 1.0

    @given(loads, st.integers(1, 8), st.data())
    @settings(max_examples=60, deadline=None)
    def test_extra_capacity_never_hurts(self, load, servers, data):
        capacity = data.draw(st.integers(servers, servers + 30))
        p_small = mmck_blocking_probability(load, servers, capacity)
        p_large = mmck_blocking_probability(load, servers, capacity + 1)
        assert p_large <= p_small + 1e-12

    @given(loads, st.integers(1, 8), st.data())
    @settings(max_examples=60, deadline=None)
    def test_extra_server_never_hurts(self, load, servers, data):
        capacity = data.draw(st.integers(servers + 1, servers + 30))
        p_few = mmck_blocking_probability(load, servers, capacity)
        p_more = mmck_blocking_probability(load, servers + 1, capacity)
        assert p_more <= p_few + 1e-12


class TestMetricsInvariants:
    @given(
        st.floats(min_value=0.1, max_value=300.0),
        st.floats(min_value=0.1, max_value=300.0),
        st.integers(1, 6),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_littles_law_and_bounds(self, arrival, service, servers, data):
        capacity = data.draw(st.integers(servers, servers + 25))
        metrics = MMCKQueue(
            arrival_rate=arrival,
            service_rate=service,
            servers=servers,
            capacity=capacity,
        ).metrics()
        assert 0.0 <= metrics.blocking_probability <= 1.0
        assert 0.0 <= metrics.utilization <= 1.0
        assert metrics.mean_number_in_system <= capacity + 1e-9
        assert metrics.mean_number_in_queue >= -1e-12
        assert metrics.mean_number_in_system == pytest.approx(
            metrics.effective_arrival_rate * metrics.mean_response_time,
            rel=1e-6,
        )


class TestErlangInvariants:
    @given(st.integers(1, 30), st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=100, deadline=None)
    def test_erlang_b_bounds_and_recursion(self, servers, load):
        b = erlang_b(servers, load)
        assert 0.0 <= b <= 1.0
        if servers > 1 and load > 0:
            prev = erlang_b(servers - 1, load)
            expected = load * prev / (servers + load * prev)
            assert b == pytest.approx(expected, rel=1e-9)
