"""Property-based tests for declarative model specifications."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spec import model_from_dict

availabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def structures(draw, resource_names, depth=0):
    if depth >= 2 or draw(st.booleans()):
        return draw(st.sampled_from(resource_names))
    kind = draw(st.sampled_from(["series", "parallel", "k_of_n"]))
    n = draw(st.integers(2, 3))
    children = [
        draw(structures(resource_names, depth=depth + 1)) for _ in range(n)
    ]
    if kind == "k_of_n":
        return {"k_of_n": {"k": draw(st.integers(1, n)), "of": children}}
    return {kind: children}


@st.composite
def specs(draw):
    resource_names = ["r1", "r2", "r3", "r4"]
    resources = {name: draw(availabilities) for name in resource_names}
    service_names = ["s1", "s2", "s3"]
    services = {
        name: draw(structures(resource_names)) for name in service_names
    }
    functions = {}
    for fname in ["f1", "f2"]:
        count = draw(st.integers(1, 3))
        functions[fname] = {
            "services": draw(
                st.lists(
                    st.sampled_from(service_names),
                    min_size=1, max_size=count, unique=True,
                )
            )
        }
    return {
        "resources": resources,
        "services": services,
        "functions": functions,
    }


class TestSpecInvariants:
    @given(specs())
    @settings(max_examples=50, deadline=None)
    def test_builds_and_evaluates_in_bounds(self, spec):
        model = model_from_dict(spec)
        for name in model.functions:
            value = model.function_availability(name)
            assert -1e-12 <= value <= 1.0 + 1e-12

    @given(specs())
    @settings(max_examples=50, deadline=None)
    def test_service_availability_bounded_by_best_resource_structure(
        self, spec
    ):
        """Series <= min child; parallel >= max child (coherence)."""
        model = model_from_dict(spec)
        resources = spec["resources"]
        for name, structure in spec["services"].items():
            value = model.service_availability(name)
            if isinstance(structure, dict) and "series" in structure:
                children = structure["series"]
                bare = [c for c in children if isinstance(c, str)]
                if bare:
                    assert value <= min(resources[c] for c in bare) + 1e-12
            if isinstance(structure, dict) and "parallel" in structure:
                children = structure["parallel"]
                bare = [c for c in children if isinstance(c, str)]
                if bare:
                    assert value >= max(resources[c] for c in bare) - 1e-12

    @given(spec=specs())
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_through_json(self, spec, tmp_path_factory):
        import json

        from repro.spec import load_model

        path = tmp_path_factory.mktemp("specs") / "model.json"
        path.write_text(json.dumps(spec))
        loaded, _ = load_model(path)
        direct = model_from_dict(spec)
        for name in direct.functions:
            assert loaded.function_availability(name) == pytest.approx(
                direct.function_availability(name), abs=1e-14
            )
