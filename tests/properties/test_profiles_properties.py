"""Property-based tests for operational profiles."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import ModelStructureError
from repro.profiles import OperationalProfile

FUNCTIONS = ["f1", "f2", "f3"]


@st.composite
def profiles(draw):
    """Random valid profiles over up to three functions.

    Every function gets an Exit edge with probability mass >= 0.2, which
    guarantees sessions terminate.
    """
    n = draw(st.integers(1, 3))
    functions = FUNCTIONS[:n]
    transitions = {}
    # Start edges.
    weights = [draw(st.floats(0.05, 1.0)) for _ in functions]
    total = sum(weights)
    for f, w in zip(functions, weights):
        transitions[("Start", f)] = w / total
    # Function edges: to other functions and Exit.
    for f in functions:
        targets = [g for g in functions if g != f] + ["Exit"]
        weights = [draw(st.floats(0.0, 1.0)) for _ in targets]
        weights[-1] = max(weights[-1], 0.2)  # ensure escape
        total = sum(weights)
        for target, w in zip(targets, weights):
            if w > 0:
                transitions[(f, target)] = w / total
    return OperationalProfile(transitions)


class TestScenarioDistributionInvariants:
    @given(profiles())
    @settings(max_examples=50, deadline=None)
    def test_distribution_normalized(self, profile):
        dist = profile.scenario_distribution()
        assert sum(s.probability for s in dist) == pytest.approx(1.0, abs=1e-9)

    @given(profiles())
    @settings(max_examples=50, deadline=None)
    def test_activation_probabilities_agree(self, profile):
        """Two independent computations of P(visit f): hitting analysis
        on the session chain vs marginalization of the scenario
        distribution."""
        dist = profile.scenario_distribution()
        for function in profile.functions:
            direct = profile.activation_probability(function)
            marginal = dist.activation_probability(function)
            assert direct == pytest.approx(marginal, abs=1e-9)

    @given(profiles())
    @settings(max_examples=50, deadline=None)
    def test_expected_visits_at_least_activation(self, profile):
        """E[visits] >= P(visit at least once)."""
        for function in profile.functions:
            assert (
                profile.expected_visits(function)
                >= profile.activation_probability(function) - 1e-9
            )

    @given(profiles())
    @settings(max_examples=50, deadline=None)
    def test_scenarios_only_reference_known_functions(self, profile):
        dist = profile.scenario_distribution()
        known = set(profile.functions)
        for scenario in dist:
            assert scenario.functions <= known

    @given(profiles())
    @settings(max_examples=30, deadline=None)
    def test_session_length_is_sum_of_visits(self, profile):
        total = sum(
            profile.expected_visits(f) for f in profile.functions
        )
        assert profile.expected_session_length() == pytest.approx(total)
