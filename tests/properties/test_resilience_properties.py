"""Property-based tests for the resilience subsystem."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resilience import (
    RecurrentOutage,
    RetryPolicy,
    run_campaign,
    session_outcome,
)
from repro.ta import CLASS_A, TravelAgencyModel

TA = TravelAgencyModel()

availabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
persistences = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
retry_budgets = st.integers(min_value=0, max_value=20)


class TestSessionOutcomeProperties:
    @given(availabilities, persistences, retry_budgets)
    @settings(max_examples=200, deadline=None)
    def test_outcomes_form_a_distribution(self, a, p, k):
        out = session_outcome(a, RetryPolicy(max_retries=k, persistence=p))
        assert 0.0 <= out.served <= 1.0
        assert 0.0 <= out.abandoned <= 1.0
        assert 0.0 <= out.exhausted <= 1.0
        assert out.served + out.abandoned + out.exhausted == pytest.approx(
            1.0, abs=1e-9
        )
        assert 1.0 <= out.expected_attempts <= k + 1

    @given(availabilities, persistences, retry_budgets)
    @settings(max_examples=200, deadline=None)
    def test_served_monotone_in_retry_budget(self, a, p, k):
        served_k = session_outcome(
            a, RetryPolicy(max_retries=k, persistence=p)
        ).served
        served_k1 = session_outcome(
            a, RetryPolicy(max_retries=k + 1, persistence=p)
        ).served
        assert served_k1 >= served_k - 1e-12

    @given(availabilities, persistences)
    @settings(max_examples=100, deadline=None)
    def test_zero_retries_equal_single_submission(self, a, p):
        out = session_outcome(a, RetryPolicy(max_retries=0, persistence=p))
        assert out.served == pytest.approx(a, abs=1e-12)
        assert out.expected_attempts == 1.0

    @given(availabilities, retry_budgets)
    @settings(max_examples=100, deadline=None)
    def test_more_persistence_never_serves_less(self, a, k):
        lazy = session_outcome(
            a, RetryPolicy(max_retries=k, persistence=0.3)
        ).served
        eager = session_outcome(
            a, RetryPolicy(max_retries=k, persistence=0.9)
        ).served
        assert eager >= lazy - 1e-12


class TestRetryAdjustedModelProperties:
    @given(retry_budgets)
    @settings(max_examples=10, deadline=None)
    def test_adjusted_availability_monotone_and_bounded(self, k):
        lower = TA.retry_adjusted_availability(
            CLASS_A, RetryPolicy(max_retries=k)
        )
        upper = TA.retry_adjusted_availability(
            CLASS_A, RetryPolicy(max_retries=k + 1)
        )
        assert lower.availability <= lower.adjusted_availability <= 1.0
        assert upper.adjusted_availability >= lower.adjusted_availability

    def test_zero_retries_reproduce_eq_10_exactly(self):
        result = TA.retry_adjusted_availability(
            CLASS_A, RetryPolicy(max_retries=0)
        )
        assert result.adjusted_availability == pytest.approx(
            result.availability, abs=1e-15
        )


bases = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
factors = st.floats(min_value=1.0, max_value=1e3, allow_nan=False)
caps = st.one_of(
    st.just(float("inf")),
    st.floats(min_value=1e-6, max_value=1e9, allow_nan=False),
)
retry_indices = st.integers(min_value=0, max_value=5000)


class TestBackoffDelayProperties:
    @given(bases, factors, caps, retry_indices)
    @settings(max_examples=200, deadline=None)
    def test_delay_non_negative_and_capped(self, base, factor, cap, index):
        policy = RetryPolicy(
            backoff_base=base, backoff_factor=factor, backoff_cap=cap
        )
        delay = policy.backoff_delay(index)
        assert delay >= 0.0
        assert delay <= cap

    @given(bases, factors, caps, retry_indices)
    @settings(max_examples=200, deadline=None)
    def test_delay_monotone_in_retry_index(self, base, factor, cap, index):
        # Jitter-free exponential backoff never shrinks with the index.
        policy = RetryPolicy(
            backoff_base=base, backoff_factor=factor, backoff_cap=cap
        )
        assert policy.backoff_delay(index + 1) >= policy.backoff_delay(index)

    @given(bases, caps)
    @settings(max_examples=100, deadline=None)
    def test_huge_indices_saturate_instead_of_overflowing(self, base, cap):
        # factor**index overflows a float for large indices; the delay
        # must saturate at the cap (or inf when uncapped), not raise.
        policy = RetryPolicy(
            backoff_base=base, backoff_factor=2.0, backoff_cap=cap
        )
        delay = policy.backoff_delay(10_000)
        if base > 0.0:
            assert delay == cap
        else:
            assert delay == 0.0


class TestSessionOutcomeEdgeCases:
    @given(persistences, retry_budgets)
    @settings(max_examples=100, deadline=None)
    def test_dead_service_never_serves(self, p, k):
        out = session_outcome(0.0, RetryPolicy(max_retries=k, persistence=p))
        assert out.served == 0.0
        assert out.abandoned + out.exhausted == pytest.approx(1.0, abs=1e-12)
        if p == 1.0:  # nobody abandons: every session exhausts the budget
            assert out.exhausted == 1.0
            assert out.expected_attempts == k + 1

    @given(persistences, retry_budgets)
    @settings(max_examples=100, deadline=None)
    def test_perfect_service_serves_first_try(self, p, k):
        out = session_outcome(1.0, RetryPolicy(max_retries=k, persistence=p))
        assert out.served == 1.0
        assert out.abandoned == 0.0
        assert out.exhausted == 0.0
        assert out.expected_attempts == 1.0

    @given(availabilities, persistences)
    @settings(max_examples=100, deadline=None)
    def test_retry_index_at_the_cap_is_valid(self, a, p):
        # The last allowed retry index is max_retries - 1; delays up to
        # and including the cap index must be finite under a cap.
        policy = RetryPolicy(
            max_retries=3, persistence=p, backoff_cap=60.0
        )
        for index in range(policy.max_retries):
            assert 0.0 <= policy.backoff_delay(index) <= 60.0
        out = session_outcome(a, policy)
        assert 1.0 <= out.expected_attempts <= policy.max_retries + 1


class TestCampaignProperties:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=5, deadline=None)
    def test_campaign_reproducible_from_seed(self, seed):
        kwargs = dict(horizon=400.0, replications=2, seed=seed)
        first = run_campaign(TA.hierarchical_model, CLASS_A, **kwargs)
        second = run_campaign(TA.hierarchical_model, CLASS_A, **kwargs)
        assert first.values == second.values
        assert first.analytic_availability == second.analytic_availability

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=5, deadline=None)
    def test_scenario_compilation_reproducible_from_stream(self, seed):
        scenario = RecurrentOutage(
            frozenset({"lan-segment"}), episode_rate=0.05, mean_duration=5.0
        )
        events_a = scenario.compile(
            TA.hierarchical_model, 2000.0, np.random.default_rng(seed)
        )
        events_b = scenario.compile(
            TA.hierarchical_model, 2000.0, np.random.default_rng(seed)
        )
        assert events_a == events_b

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=3, deadline=None)
    def test_simulated_availability_is_a_probability(self, seed):
        result = run_campaign(
            TA.hierarchical_model, CLASS_A,
            horizon=300.0, replications=1, seed=seed,
        )
        assert 0.0 <= result.mean_availability <= 1.0
