"""Property-based tests for the resilience subsystem."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resilience import (
    RecurrentOutage,
    RetryPolicy,
    run_campaign,
    session_outcome,
)
from repro.ta import CLASS_A, TravelAgencyModel

TA = TravelAgencyModel()

availabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
persistences = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
retry_budgets = st.integers(min_value=0, max_value=20)


class TestSessionOutcomeProperties:
    @given(availabilities, persistences, retry_budgets)
    @settings(max_examples=200, deadline=None)
    def test_outcomes_form_a_distribution(self, a, p, k):
        out = session_outcome(a, RetryPolicy(max_retries=k, persistence=p))
        assert 0.0 <= out.served <= 1.0
        assert 0.0 <= out.abandoned <= 1.0
        assert 0.0 <= out.exhausted <= 1.0
        assert out.served + out.abandoned + out.exhausted == pytest.approx(
            1.0, abs=1e-9
        )
        assert 1.0 <= out.expected_attempts <= k + 1

    @given(availabilities, persistences, retry_budgets)
    @settings(max_examples=200, deadline=None)
    def test_served_monotone_in_retry_budget(self, a, p, k):
        served_k = session_outcome(
            a, RetryPolicy(max_retries=k, persistence=p)
        ).served
        served_k1 = session_outcome(
            a, RetryPolicy(max_retries=k + 1, persistence=p)
        ).served
        assert served_k1 >= served_k - 1e-12

    @given(availabilities, persistences)
    @settings(max_examples=100, deadline=None)
    def test_zero_retries_equal_single_submission(self, a, p):
        out = session_outcome(a, RetryPolicy(max_retries=0, persistence=p))
        assert out.served == pytest.approx(a, abs=1e-12)
        assert out.expected_attempts == 1.0

    @given(availabilities, retry_budgets)
    @settings(max_examples=100, deadline=None)
    def test_more_persistence_never_serves_less(self, a, k):
        lazy = session_outcome(
            a, RetryPolicy(max_retries=k, persistence=0.3)
        ).served
        eager = session_outcome(
            a, RetryPolicy(max_retries=k, persistence=0.9)
        ).served
        assert eager >= lazy - 1e-12


class TestRetryAdjustedModelProperties:
    @given(retry_budgets)
    @settings(max_examples=10, deadline=None)
    def test_adjusted_availability_monotone_and_bounded(self, k):
        lower = TA.retry_adjusted_availability(
            CLASS_A, RetryPolicy(max_retries=k)
        )
        upper = TA.retry_adjusted_availability(
            CLASS_A, RetryPolicy(max_retries=k + 1)
        )
        assert lower.availability <= lower.adjusted_availability <= 1.0
        assert upper.adjusted_availability >= lower.adjusted_availability

    def test_zero_retries_reproduce_eq_10_exactly(self):
        result = TA.retry_adjusted_availability(
            CLASS_A, RetryPolicy(max_retries=0)
        )
        assert result.adjusted_availability == pytest.approx(
            result.availability, abs=1e-15
        )


class TestCampaignProperties:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=5, deadline=None)
    def test_campaign_reproducible_from_seed(self, seed):
        kwargs = dict(horizon=400.0, replications=2, seed=seed)
        first = run_campaign(TA.hierarchical_model, CLASS_A, **kwargs)
        second = run_campaign(TA.hierarchical_model, CLASS_A, **kwargs)
        assert first.values == second.values
        assert first.analytic_availability == second.analytic_availability

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=5, deadline=None)
    def test_scenario_compilation_reproducible_from_stream(self, seed):
        scenario = RecurrentOutage(
            frozenset({"lan-segment"}), episode_rate=0.05, mean_duration=5.0
        )
        events_a = scenario.compile(
            TA.hierarchical_model, 2000.0, np.random.default_rng(seed)
        )
        events_b = scenario.compile(
            TA.hierarchical_model, 2000.0, np.random.default_rng(seed)
        )
        assert events_a == events_b

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=3, deadline=None)
    def test_simulated_availability_is_a_probability(self, seed):
        result = run_campaign(
            TA.hierarchical_model, CLASS_A,
            horizon=300.0, replications=1, seed=seed,
        )
        assert 0.0 <= result.mean_availability <= 1.0
