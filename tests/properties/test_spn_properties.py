"""Property-based tests for the GSPN engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing import birth_death_distribution
from repro.spn import SPNAnalysis, StochasticPetriNet

rates = st.floats(min_value=0.01, max_value=50.0, allow_nan=False)


@st.composite
def birth_death_nets(draw):
    """A random bounded birth-death net plus the matching rate lists."""
    capacity = draw(st.integers(min_value=1, max_value=8))
    births = [draw(rates) for _ in range(capacity)]
    deaths = [draw(rates) for _ in range(capacity)]

    net = StochasticPetriNet("bd")
    net.add_place("tokens", tokens=0, capacity=capacity)
    # Marking-dependent rates realize arbitrary birth/death profiles.
    net.add_timed_transition(
        "birth",
        rate_function=lambda m, b=births, c=capacity: (
            b[m["tokens"]] if m["tokens"] < c else b[-1]
        ),
    )
    net.add_output_arc("birth", "tokens")
    net.add_timed_transition(
        "death",
        rate_function=lambda m, d=deaths: d[m["tokens"] - 1],
    )
    net.add_input_arc("tokens", "death")
    return net, births, deaths, capacity


class TestBirthDeathEquivalence:
    @given(birth_death_nets())
    @settings(max_examples=40, deadline=None)
    def test_matches_product_form(self, data):
        net, births, deaths, capacity = data
        analysis = SPNAnalysis(net)
        expected = birth_death_distribution(births, deaths)
        assert analysis.tangible_count == capacity + 1
        for n in range(capacity + 1):
            probability = analysis.probability(
                lambda m, n=n: m["tokens"] == n
            )
            assert probability == pytest.approx(
                float(expected[n]), abs=1e-9
            )

    @given(birth_death_nets())
    @settings(max_examples=30, deadline=None)
    def test_flow_balance(self, data):
        """Steady-state birth and death throughputs must be equal."""
        net, *_ = data
        analysis = SPNAnalysis(net)
        assert analysis.throughput("birth") == pytest.approx(
            analysis.throughput("death"), rel=1e-8
        )

    @given(birth_death_nets())
    @settings(max_examples=30, deadline=None)
    def test_expected_tokens_consistent(self, data):
        net, births, deaths, capacity = data
        analysis = SPNAnalysis(net)
        expected = birth_death_distribution(births, deaths)
        mean = sum(n * float(expected[n]) for n in range(capacity + 1))
        assert analysis.expected_tokens("tokens") == pytest.approx(
            mean, abs=1e-9
        )
