"""Property-based tests for RBDs and their fault-tree duals."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faulttree import from_rbd, top_event_probability
from repro.rbd import (
    Component,
    KofN,
    Parallel,
    Series,
    structure_function,
    system_availability,
)

NAMES = ["a", "b", "c", "d", "e"]


@st.composite
def blocks(draw, depth=0):
    """Random RBD trees over a fixed small component pool."""
    if depth >= 2 or draw(st.booleans()):
        return Component(draw(st.sampled_from(NAMES)))
    kind = draw(st.sampled_from(["series", "parallel", "kofn"]))
    n_children = draw(st.integers(2, 3))
    children = [draw(blocks(depth=depth + 1)) for _ in range(n_children)]
    if kind == "series":
        return Series(*children)
    if kind == "parallel":
        return Parallel(*children)
    k = draw(st.integers(1, n_children))
    return KofN(k, children)


@st.composite
def availabilities(draw):
    return {
        name: draw(st.floats(min_value=0.0, max_value=1.0))
        for name in NAMES
    }


def brute_force(block, probs):
    names = sorted(set(block.component_names()))
    total = 0.0
    for states in itertools.product([False, True], repeat=len(names)):
        assignment = dict(zip(names, states))
        weight = 1.0
        for name, up in assignment.items():
            weight *= probs[name] if up else 1.0 - probs[name]
        if structure_function(block, assignment):
            total += weight
    return total


class TestExactness:
    @given(blocks(), availabilities())
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, block, probs):
        assert system_availability(block, probs) == pytest.approx(
            brute_force(block, probs), abs=1e-9
        )

    @given(blocks(), availabilities())
    @settings(max_examples=60, deadline=None)
    def test_fault_tree_dual(self, block, probs):
        tree = from_rbd(block)
        failure = top_event_probability(
            tree, {n: 1.0 - p for n, p in probs.items()}
        )
        assert failure == pytest.approx(
            1.0 - system_availability(block, probs), abs=1e-9
        )


class TestMonotonicity:
    @given(blocks(), availabilities(), st.sampled_from(NAMES))
    @settings(max_examples=60, deadline=None)
    def test_coherent_in_every_component(self, block, probs, name):
        """Raising any component's availability never lowers the system's."""
        if name not in set(block.component_names()):
            return
        lower = dict(probs, **{name: probs[name] * 0.5})
        higher = dict(probs, **{name: probs[name] * 0.5 + 0.5})
        assert system_availability(block, higher) >= (
            system_availability(block, lower) - 1e-12
        )

    @given(blocks(), availabilities())
    @settings(max_examples=60, deadline=None)
    def test_bounds(self, block, probs):
        value = system_availability(block, probs)
        assert -1e-12 <= value <= 1.0 + 1e-12

    @given(blocks())
    @settings(max_examples=40, deadline=None)
    def test_perfect_components_perfect_system(self, block):
        probs = {n: 1.0 for n in NAMES}
        assert system_availability(block, probs) == pytest.approx(1.0)
