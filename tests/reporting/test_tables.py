"""Tests for text table/series rendering."""

import pytest

from repro.errors import ValidationError
from repro.reporting import format_series, format_table, log_bucket_label


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(["N", "A"], [[1, "0.84"], [10, "0.98"]])
        lines = text.splitlines()
        assert lines[0].split("|")[0].strip() == "N"
        assert "0.84" in lines[2]
        assert "0.98" in lines[3]

    def test_title(self):
        text = format_table(["x"], [[1]], title="Table 8")
        assert text.startswith("Table 8\n")

    def test_column_alignment(self):
        text = format_table(["name", "v"], [["long-name", 1], ["s", 22]])
        lines = text.splitlines()
        pipes = [line.index("|") for line in lines if "|" in line]
        assert len(set(pipes)) == 1

    def test_row_width_mismatch(self):
        with pytest.raises(ValidationError, match="cells"):
            format_table(["a", "b"], [[1]])

    def test_empty_body(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestLogBucketLabel:
    def test_decades(self):
        assert log_bucket_label(1e-6, floor_exponent=-6) == ""
        assert log_bucket_label(1e-3, floor_exponent=-6) == "###"
        assert log_bucket_label(1.0, floor_exponent=-6) == "######"

    def test_zero_value(self):
        assert log_bucket_label(0.0) == ""


class TestFormatSeries:
    def test_aligned_series(self):
        text = format_series(
            "NW",
            [1, 2, 3],
            {"ua": [1e-2, 1e-4, 1e-6]},
            log_bars=True,
            floor_exponent=-8,
        )
        assert "1.000e-02" in text
        assert "######" in text

    def test_length_mismatch(self):
        with pytest.raises(ValidationError, match="points"):
            format_series("x", [1, 2], {"y": [1.0]})

    def test_multiple_series(self):
        text = format_series(
            "x", [1], {"a": [0.5], "b": [0.25]}, value_format="{:.2f}"
        )
        assert "0.50" in text and "0.25" in text
