"""Tests for downtime conversions."""

import pytest

from repro.errors import ValidationError
from repro.reporting import (
    DowntimeBudget,
    availability_from_downtime,
    downtime_hours_per_year,
    downtime_minutes_per_year,
    format_downtime,
    nines,
)


class TestConversions:
    def test_hours_per_year(self):
        assert downtime_hours_per_year(0.5) == pytest.approx(4380.0)
        assert downtime_hours_per_year(1.0) == 0.0

    def test_minutes_per_year(self):
        assert downtime_minutes_per_year(0.99999) == pytest.approx(5.256)

    def test_roundtrip(self):
        availability = 0.98018  # the paper's class A steady value
        minutes = downtime_minutes_per_year(availability)
        assert availability_from_downtime(minutes) == pytest.approx(availability)

    def test_paper_class_a_downtime(self):
        """Section 5.2: ~173 hours/year at A = 0.98018."""
        assert downtime_hours_per_year(0.98018) == pytest.approx(173.6, abs=0.1)

    def test_hours_unit(self):
        assert availability_from_downtime(87.6, unit="hours") == pytest.approx(
            0.99
        )

    def test_unknown_unit(self):
        with pytest.raises(ValidationError):
            availability_from_downtime(1.0, unit="fortnights")

    def test_downtime_beyond_year_rejected(self):
        with pytest.raises(ValidationError):
            availability_from_downtime(1e9, unit="minutes")


class TestNines:
    def test_standard_values(self):
        assert nines(0.9) == pytest.approx(1.0)
        assert nines(0.999) == pytest.approx(3.0)
        assert nines(1.0) == float("inf")

    def test_paper_web_service_is_five_nines(self):
        assert 5.0 < nines(0.999995587) < 6.0


class TestFormatDowntime:
    def test_unit_selection(self):
        assert format_downtime(0.99999).endswith("min/year")
        assert format_downtime(0.9999999).endswith("s/year")
        assert format_downtime(0.999).endswith("h/year")
        assert format_downtime(0.9).endswith("days/year")


class TestBudget:
    def test_five_minute_budget(self):
        budget = DowntimeBudget(minutes_per_year=5.0)
        assert budget.required_availability == pytest.approx(1 - 5 / 525600.0)
        assert budget.met_by(0.9999999)
        assert not budget.met_by(0.999)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValidationError):
            DowntimeBudget(minutes_per_year=-1.0)
