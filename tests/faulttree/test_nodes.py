"""Tests for fault-tree node types."""

import pytest

from repro.errors import ValidationError
from repro.faulttree import AndGate, BasicEvent, KofNGate, OrGate


class TestBasicEvent:
    def test_default_probability_validated(self):
        with pytest.raises(ValidationError):
            BasicEvent("e", probability=-0.1)

    def test_rejects_empty_name(self):
        with pytest.raises(ValidationError):
            BasicEvent("")

    def test_missing_probability_raises(self):
        with pytest.raises(ValidationError, match="no probability"):
            BasicEvent("e")._probability({})

    def test_missing_state_raises(self):
        with pytest.raises(ValidationError, match="no state"):
            BasicEvent("e")._occurs({})


class TestGates:
    def test_and_gate_product(self):
        gate = AndGate(BasicEvent("a"), BasicEvent("b"))
        assert gate._probability({"a": 0.1, "b": 0.2}) == pytest.approx(0.02)

    def test_or_gate_complement(self):
        gate = OrGate(BasicEvent("a"), BasicEvent("b"))
        assert gate._probability({"a": 0.1, "b": 0.2}) == pytest.approx(0.28)

    def test_nested_gates_flatten(self):
        gate = OrGate(OrGate(BasicEvent("a"), BasicEvent("b")), BasicEvent("c"))
        assert len(gate.children) == 3

    def test_empty_gate_rejected(self):
        with pytest.raises(ValidationError):
            AndGate()

    def test_non_node_child_rejected(self):
        with pytest.raises(ValidationError):
            OrGate("not a node")

    def test_boolean_semantics(self):
        gate = AndGate(BasicEvent("a"), OrGate(BasicEvent("b"), BasicEvent("c")))
        assert gate._occurs({"a": True, "b": False, "c": True})
        assert not gate._occurs({"a": False, "b": True, "c": True})


class TestKofNGate:
    def test_two_of_three(self):
        gate = KofNGate(2, BasicEvent("a"), BasicEvent("b"), BasicEvent("c"))
        probs = {"a": 0.1, "b": 0.1, "c": 0.1}
        # exactly two: 3 * 0.01 * 0.9; all three: 0.001
        assert gate._probability(probs) == pytest.approx(0.028)

    def test_k_validation(self):
        with pytest.raises(ValidationError):
            KofNGate(3, BasicEvent("a"), BasicEvent("b"))

    def test_one_of_n_is_or(self):
        events = [BasicEvent(c) for c in "abc"]
        probs = {"a": 0.2, "b": 0.3, "c": 0.4}
        assert KofNGate(1, *events)._probability(probs) == pytest.approx(
            OrGate(*events)._probability(probs)
        )

    def test_boolean_semantics(self):
        gate = KofNGate(2, BasicEvent("a"), BasicEvent("b"), BasicEvent("c"))
        assert gate._occurs({"a": True, "b": True, "c": False})
        assert not gate._occurs({"a": True, "b": False, "c": False})
