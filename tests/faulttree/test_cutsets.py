"""Tests for minimal cut sets."""

import pytest

from repro.faulttree import (
    AndGate,
    BasicEvent,
    KofNGate,
    OrGate,
    from_rbd,
    minimal_cut_sets,
)


class TestMinimalCutSets:
    def test_single_event(self):
        assert minimal_cut_sets(BasicEvent("a")) == (frozenset({"a"}),)

    def test_or_of_ands(self):
        tree = OrGate(
            BasicEvent("lan"),
            AndGate(BasicEvent("f1"), BasicEvent("f2")),
        )
        cut_sets = minimal_cut_sets(tree)
        assert frozenset({"lan"}) in cut_sets
        assert frozenset({"f1", "f2"}) in cut_sets
        assert len(cut_sets) == 2

    def test_ordering_smallest_first(self):
        tree = OrGate(
            AndGate(BasicEvent("a"), BasicEvent("b"), BasicEvent("c")),
            BasicEvent("d"),
            AndGate(BasicEvent("e"), BasicEvent("f")),
        )
        sizes = [len(cs) for cs in minimal_cut_sets(tree)]
        assert sizes == sorted(sizes)

    def test_non_minimal_sets_removed(self):
        # {a} subsumes {a, b}.
        tree = OrGate(BasicEvent("a"), AndGate(BasicEvent("a"), BasicEvent("b")))
        assert minimal_cut_sets(tree) == (frozenset({"a"}),)

    def test_kofn_expansion(self):
        tree = KofNGate(2, BasicEvent("a"), BasicEvent("b"), BasicEvent("c"))
        cut_sets = minimal_cut_sets(tree)
        assert set(cut_sets) == {
            frozenset({"a", "b"}),
            frozenset({"a", "c"}),
            frozenset({"b", "c"}),
        }

    def test_ta_search_function_cut_sets(self):
        """The Search function's single points of failure are visible."""
        from repro.rbd import parallel, series

        search = series(
            "net",
            "lan",
            "web",
            parallel("f1", "f2"),
            parallel("h1", "h2"),
        )
        cut_sets = minimal_cut_sets(from_rbd(search))
        singletons = {next(iter(cs)) for cs in cut_sets if len(cs) == 1}
        assert singletons == {"net", "lan", "web"}
        assert frozenset({"f1", "f2"}) in cut_sets

    def test_duplicated_event_across_branches(self):
        tree = AndGate(
            OrGate(BasicEvent("x"), BasicEvent("a")),
            OrGate(BasicEvent("x"), BasicEvent("b")),
        )
        cut_sets = minimal_cut_sets(tree)
        assert frozenset({"x"}) in cut_sets
        assert frozenset({"a", "b"}) in cut_sets
        assert len(cut_sets) == 2
