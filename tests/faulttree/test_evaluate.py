"""Tests for fault-tree evaluation and the RBD duality."""

import itertools

import pytest

from repro.errors import ValidationError
from repro.faulttree import (
    AndGate,
    BasicEvent,
    OrGate,
    from_rbd,
    top_event_probability,
)
from repro.rbd import Component, k_of_n, parallel, series, system_availability


class TestTopEventProbability:
    def test_simple_and(self):
        tree = AndGate(BasicEvent("a"), BasicEvent("b"))
        assert top_event_probability(tree, {"a": 0.5, "b": 0.5}) == pytest.approx(
            0.25
        )

    def test_uses_event_defaults(self):
        tree = OrGate(BasicEvent("a", 0.1), BasicEvent("b", 0.2))
        assert top_event_probability(tree) == pytest.approx(0.28)

    def test_shared_event_exact(self):
        # "x" feeds two AND branches of an OR: naive evaluation
        # double-counts its randomness.
        tree = OrGate(
            AndGate(BasicEvent("x"), BasicEvent("a")),
            AndGate(BasicEvent("x"), BasicEvent("b")),
        )
        probs = {"x": 0.5, "a": 0.5, "b": 0.5}
        # Exact: P(x and (a or b)) = 0.5 * 0.75 = 0.375.
        assert top_event_probability(tree, probs) == pytest.approx(0.375)

    def test_missing_probability(self):
        with pytest.raises(ValidationError):
            top_event_probability(AndGate(BasicEvent("a")), {})


class TestRBDDuality:
    @pytest.mark.parametrize(
        "block",
        [
            series("a", "b", "c"),
            parallel("a", "b", "c"),
            series("a", parallel("b", "c")),
            parallel(series("a", "b"), series("c", "d")),
            k_of_n(2, ["a", "b", "c", "d"]),
            series("lan", k_of_n(2, ["a", "b", "c"]), parallel("d", "e")),
        ],
    )
    def test_failure_probability_complements_availability(self, block):
        names = sorted(set(block.component_names()))
        avail = {name: 0.6 + 0.05 * i for i, name in enumerate(names)}
        tree = from_rbd(block)
        failure = top_event_probability(
            tree, {name: 1.0 - a for name, a in avail.items()}
        )
        assert failure == pytest.approx(
            1.0 - system_availability(block, avail), abs=1e-12
        )

    def test_default_probabilities_carried_over(self):
        block = series(Component("a", availability=0.9))
        tree = from_rbd(block)
        assert top_event_probability(tree) == pytest.approx(0.1)

    def test_shared_components_stay_exact(self):
        block = parallel(series("x", "a"), series("x", "b"))
        avail = {"x": 0.9, "a": 0.8, "b": 0.7}
        tree = from_rbd(block)
        failure = top_event_probability(
            tree, {k: 1.0 - v for k, v in avail.items()}
        )
        assert failure == pytest.approx(1.0 - system_availability(block, avail))

    def test_boolean_duality_exhaustive(self):
        from repro.rbd import structure_function

        block = series("a", parallel("b", k_of_n(2, ["c", "d", "e"])))
        tree = from_rbd(block)
        names = sorted(set(block.component_names()))
        for states in itertools.product([False, True], repeat=len(names)):
            up = dict(zip(names, states))
            failed = {n: not s for n, s in up.items()}
            assert tree._occurs(failed) == (not structure_function(block, up))
