"""Tests for RBD importance measures."""

import pytest

from repro.errors import ValidationError
from repro.rbd import (
    birnbaum_importance,
    criticality_importance,
    improvement_potential,
    parallel,
    rank_components,
    series,
    system_availability,
)


@pytest.fixture
def ta_like():
    """LAN in series with a 1-of-2 reservation pair — a TA-like shape."""
    return series("lan", parallel("f1", "f2")), {
        "lan": 0.9966,
        "f1": 0.9,
        "f2": 0.9,
    }


class TestBirnbaum:
    def test_series_component(self, ta_like):
        block, probs = ta_like
        # For lan in series: I_B = A(rest) = 1 - 0.1^2.
        assert birnbaum_importance(block, "lan", probs) == pytest.approx(0.99)

    def test_is_partial_derivative(self, ta_like):
        block, probs = ta_like
        h = 1e-7
        up = dict(probs, f1=probs["f1"] + h)
        down = dict(probs, f1=probs["f1"] - h)
        numeric = (
            system_availability(block, up) - system_availability(block, down)
        ) / (2 * h)
        assert birnbaum_importance(block, "f1", probs) == pytest.approx(
            numeric, abs=1e-6
        )

    def test_series_dominates_redundant(self, ta_like):
        block, probs = ta_like
        assert birnbaum_importance(block, "lan", probs) > birnbaum_importance(
            block, "f1", probs
        )

    def test_unknown_component(self, ta_like):
        block, probs = ta_like
        with pytest.raises(ValidationError):
            birnbaum_importance(block, "nope", probs)


class TestCriticality:
    def test_in_unit_interval(self, ta_like):
        block, probs = ta_like
        for name in ("lan", "f1"):
            value = criticality_importance(block, name, probs)
            assert 0.0 <= value <= 1.0

    def test_perfect_system_yields_zero(self):
        block = series("a")
        assert criticality_importance(block, "a", {"a": 1.0}) == 0.0

    def test_single_component_system(self):
        block = series("a")
        # The only component is always the cause of failure.
        assert criticality_importance(block, "a", {"a": 0.9}) == pytest.approx(1.0)


class TestImprovementPotential:
    def test_perfect_component_gains_nothing(self, ta_like):
        block, probs = ta_like
        probs = dict(probs, lan=1.0)
        assert improvement_potential(block, "lan", probs) == pytest.approx(0.0)

    def test_matches_definition(self, ta_like):
        block, probs = ta_like
        base = system_availability(block, probs)
        improved = system_availability(block, dict(probs, lan=1.0))
        assert improvement_potential(block, "lan", probs) == pytest.approx(
            improved - base
        )


class TestRanking:
    def test_series_component_ranks_first(self, ta_like):
        block, probs = ta_like
        ranking = rank_components(block, probs)
        assert ranking[0][0] == "lan"

    def test_all_measures_supported(self, ta_like):
        block, probs = ta_like
        for measure in ("birnbaum", "criticality", "improvement"):
            ranking = rank_components(block, probs, measure=measure)
            assert len(ranking) == 3

    def test_unknown_measure(self, ta_like):
        block, probs = ta_like
        with pytest.raises(ValidationError, match="unknown measure"):
            rank_components(block, probs, measure="voodoo")
