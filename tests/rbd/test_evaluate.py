"""Tests for exact RBD evaluation (including shared components)."""

import itertools

import pytest

from repro.errors import ValidationError
from repro.rbd import (
    Component,
    parallel,
    series,
    structure_function,
    system_availability,
)


def brute_force_availability(block, probs):
    """Enumerate all component states; exact for any sharing pattern."""
    names = sorted(set(block.component_names()))
    total = 0.0
    for states in itertools.product([False, True], repeat=len(names)):
        assignment = dict(zip(names, states))
        weight = 1.0
        for name, up in assignment.items():
            weight *= probs[name] if up else 1.0 - probs[name]
        if structure_function(block, assignment):
            total += weight
    return total


class TestSystemAvailability:
    def test_table3_structure(self):
        # 1-of-N reservation systems at 0.9 each (the paper's Table 3).
        for n in range(1, 6):
            block = parallel(*[f"s{i}" for i in range(n)])
            probs = {f"s{i}": 0.9 for i in range(n)}
            assert system_availability(block, probs) == pytest.approx(
                1.0 - 0.1**n
            )

    def test_uses_component_defaults(self):
        block = Component("a", availability=0.9) & Component("b", availability=0.8)
        assert system_availability(block) == pytest.approx(0.72)

    def test_explicit_values_override_defaults(self):
        block = Component("a", availability=0.9)
        assert system_availability(block, {"a": 0.5}) == pytest.approx(0.5)

    def test_missing_availability_raises(self):
        with pytest.raises(ValidationError, match="no availability"):
            system_availability(series("a", "b"), {"a": 0.9})

    def test_shared_component_exact(self):
        # "shared" appears on both parallel branches: the naive product
        # rule would treat the two references as independent.
        block = parallel(series("shared", "a"), series("shared", "b"))
        probs = {"shared": 0.9, "a": 0.8, "b": 0.7}
        exact = brute_force_availability(block, probs)
        assert system_availability(block, probs) == pytest.approx(exact)
        # And the naive rule is indeed wrong here.
        naive = block._structural(probs)
        assert abs(naive - exact) > 1e-3

    def test_multiple_shared_components(self):
        block = parallel(
            series("x", "y", "a"),
            series("x", "b"),
            series("y", "c"),
        )
        probs = {n: 0.8 for n in ("x", "y", "a", "b", "c")}
        assert system_availability(block, probs) == pytest.approx(
            brute_force_availability(block, probs)
        )

    def test_bounds(self):
        block = series("a", parallel("b", "c"))
        probs = {"a": 0.95, "b": 0.9, "c": 0.5}
        value = system_availability(block, probs)
        assert 0.0 <= value <= 1.0
        assert value <= probs["a"]  # series with 'a' caps at A(a)


class TestStructureFunction:
    def test_series_parallel(self):
        block = series("a", parallel("b", "c"))
        assert structure_function(block, {"a": True, "b": False, "c": True})
        assert not structure_function(block, {"a": False, "b": True, "c": True})

    def test_missing_state_raises(self):
        with pytest.raises(ValidationError, match="no state"):
            structure_function(series("a"), {})
