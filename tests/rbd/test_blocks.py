"""Tests for RBD block types."""

import pytest

from repro.errors import ValidationError
from repro.rbd import Component, KofN, Parallel, Series, k_of_n, parallel, series


class TestComponent:
    def test_default_availability_validated(self):
        with pytest.raises(ValidationError):
            Component("x", availability=1.5)

    def test_rejects_empty_name(self):
        with pytest.raises(ValidationError):
            Component("")

    def test_equality_and_hash(self):
        assert Component("a", 0.9) == Component("a", 0.9)
        assert Component("a") != Component("b")
        assert len({Component("a", 0.9), Component("a", 0.9)}) == 1

    def test_structural_requires_value(self):
        with pytest.raises(ValidationError, match="no availability"):
            Component("a")._structural({})


class TestSeries:
    def test_product_rule(self):
        block = Series(Component("a"), Component("b"))
        assert block._structural({"a": 0.9, "b": 0.8}) == pytest.approx(0.72)

    def test_flattens_nested_series(self):
        nested = Series(Series(Component("a"), Component("b")), Component("c"))
        assert len(nested.children) == 3

    def test_operator_sugar(self):
        block = Component("a") & Component("b") & Component("c")
        assert isinstance(block, Series)
        assert block.component_names() == ("a", "b", "c")

    def test_boolean_evaluation(self):
        block = Series(Component("a"), Component("b"))
        assert block._evaluate_bool({"a": True, "b": True})
        assert not block._evaluate_bool({"a": True, "b": False})


class TestParallel:
    def test_complement_rule(self):
        block = Parallel(Component("a"), Component("b"))
        assert block._structural({"a": 0.9, "b": 0.9}) == pytest.approx(0.99)

    def test_flattens_nested_parallel(self):
        nested = Parallel(Parallel(Component("a"), Component("b")), Component("c"))
        assert len(nested.children) == 3

    def test_operator_sugar(self):
        block = Component("a") | Component("b")
        assert isinstance(block, Parallel)

    def test_mixed_structure_preserved(self):
        block = Parallel(Series(Component("a"), Component("b")), Component("c"))
        assert len(block.children) == 2

    def test_boolean_evaluation(self):
        block = Parallel(Component("a"), Component("b"))
        assert block._evaluate_bool({"a": False, "b": True})
        assert not block._evaluate_bool({"a": False, "b": False})


class TestKofN:
    def test_two_of_three(self):
        block = KofN(2, [Component(c) for c in "abc"])
        probs = {"a": 0.9, "b": 0.9, "c": 0.9}
        # 3 * 0.9^2 * 0.1 + 0.9^3
        assert block._structural(probs) == pytest.approx(0.972)

    def test_one_of_n_equals_parallel(self):
        names = ["a", "b", "c", "d"]
        probs = {n: 0.7 for n in names}
        kofn = KofN(1, [Component(n) for n in names])
        par = Parallel(*[Component(n) for n in names])
        assert kofn._structural(probs) == pytest.approx(par._structural(probs))

    def test_n_of_n_equals_series(self):
        names = ["a", "b", "c"]
        probs = {"a": 0.9, "b": 0.8, "c": 0.7}
        kofn = KofN(3, [Component(n) for n in names])
        ser = Series(*[Component(n) for n in names])
        assert kofn._structural(probs) == pytest.approx(ser._structural(probs))

    def test_heterogeneous_probabilities(self):
        block = KofN(2, [Component("a"), Component("b"), Component("c")])
        probs = {"a": 0.5, "b": 0.6, "c": 0.7}
        expected = (
            0.5 * 0.6 * 0.3
            + 0.5 * 0.4 * 0.7
            + 0.5 * 0.6 * 0.7
            + 0.5 * 0.6 * 0.7  # a&b, a&c, b&c exactly-two terms + all three
        )
        # Compute directly by enumeration instead.
        exact = 0.0
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    if a + b + c >= 2:
                        exact += (
                            (0.5 if a else 0.5)
                            * (0.6 if b else 0.4)
                            * (0.7 if c else 0.3)
                        )
        assert block._structural(probs) == pytest.approx(exact)

    def test_boolean_evaluation(self):
        block = KofN(2, [Component(c) for c in "abc"])
        assert block._evaluate_bool({"a": True, "b": True, "c": False})
        assert not block._evaluate_bool({"a": True, "b": False, "c": False})

    def test_rejects_k_above_n(self):
        with pytest.raises(ValidationError):
            KofN(4, [Component(c) for c in "abc"])

    def test_rejects_empty_children(self):
        with pytest.raises(ValidationError):
            KofN(1, [])


class TestHelpers:
    def test_string_coercion(self):
        block = series("a", parallel("b", "c"))
        assert block.component_names() == ("a", "b", "c")

    def test_k_of_n_helper(self):
        block = k_of_n(2, ["a", "b", "c"])
        assert isinstance(block, KofN)

    def test_rejects_non_block(self):
        with pytest.raises(ValidationError):
            series(42)
