"""Tests for M/M/c/K response-time distributions."""

import math

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.queueing import MMCKQueue
from repro.queueing.responsetime import (
    erlang_cdf,
    erlang_survival,
    hypoexponential_survival,
    mean_conditional_response_time,
    response_time_quantile,
    response_time_survival,
    waiting_time_survival,
)


class TestErlang:
    def test_single_stage_is_exponential(self):
        assert erlang_survival(1, 2.0, 0.5) == pytest.approx(math.exp(-1.0))

    def test_survival_plus_cdf(self):
        assert erlang_survival(3, 1.5, 2.0) + erlang_cdf(3, 1.5, 2.0) == (
            pytest.approx(1.0)
        )

    def test_poisson_sum_identity(self):
        # P(Erlang(m, v) > t) = sum_{j<m} e^{-vt} (vt)^j / j!.
        m, v, t = 4, 2.0, 1.3
        direct = sum(
            math.exp(-v * t) * (v * t) ** j / math.factorial(j)
            for j in range(m)
        )
        assert erlang_survival(m, v, t) == pytest.approx(direct, rel=1e-12)

    def test_at_zero(self):
        assert erlang_survival(5, 1.0, 0.0) == 1.0

    def test_more_stages_longer(self):
        assert erlang_survival(4, 1.0, 2.0) > erlang_survival(2, 1.0, 2.0)


class TestHypoexponential:
    def test_matches_numerical_integration(self):
        # Erlang(2, 3) + Exp(1): integrate the convolution numerically.
        from scipy import integrate

        stages, stage_rate, final_rate, t = 2, 3.0, 1.0, 1.7

        def integrand(u):
            density = (
                stage_rate**stages
                * u ** (stages - 1)
                * math.exp(-stage_rate * u)
                / math.factorial(stages - 1)
            )
            return density * math.exp(-final_rate * (t - u))

        late_service, _ = integrate.quad(integrand, 0.0, t)
        expected = erlang_survival(stages, stage_rate, t) + late_service
        assert hypoexponential_survival(
            stages, stage_rate, final_rate, t
        ) == pytest.approx(expected, rel=1e-9)

    def test_equal_rates_collapse_to_erlang(self):
        assert hypoexponential_survival(2, 1.0, 1.0, 3.0) == pytest.approx(
            erlang_survival(3, 1.0, 3.0)
        )

    def test_final_rate_larger_fallback(self):
        # final_rate > stage_rate exercises the phase-type fallback.
        from scipy import integrate

        stages, stage_rate, final_rate, t = 3, 1.0, 4.0, 2.0

        def integrand(u):
            density = (
                stage_rate**stages
                * u ** (stages - 1)
                * math.exp(-stage_rate * u)
                / math.factorial(stages - 1)
            )
            return density * math.exp(-final_rate * (t - u))

        late_service, _ = integrate.quad(integrand, 0.0, t)
        expected = erlang_survival(stages, stage_rate, t) + late_service
        assert hypoexponential_survival(
            stages, stage_rate, final_rate, t
        ) == pytest.approx(expected, rel=1e-6)

    def test_at_zero(self):
        assert hypoexponential_survival(2, 3.0, 1.0, 0.0) == 1.0


@pytest.fixture
def single_server():
    return MMCKQueue(arrival_rate=80.0, service_rate=100.0, servers=1,
                     capacity=10)


@pytest.fixture
def multi_server():
    return MMCKQueue(arrival_rate=250.0, service_rate=100.0, servers=3,
                     capacity=12)


class TestResponseTimeSurvival:
    def test_monotone_decreasing_in_t(self, multi_server):
        times = [0.0, 0.005, 0.01, 0.02, 0.05, 0.1]
        values = [response_time_survival(multi_server, t) for t in times]
        assert values == sorted(values, reverse=True)
        assert values[0] == 1.0

    def test_bounded_by_service_survival(self, single_server):
        # Response time >= service time, so P(T > t) >= e^{-mu t}.
        for t in (0.001, 0.01, 0.05):
            assert response_time_survival(single_server, t) >= math.exp(
                -100.0 * t
            ) - 1e-12

    def test_idle_queue_is_pure_service(self):
        # Nearly always idle: response time ~ Exp(mu).
        queue = MMCKQueue(arrival_rate=0.001, service_rate=100.0, servers=1,
                          capacity=10)
        t = 0.02
        assert response_time_survival(queue, t) == pytest.approx(
            math.exp(-100.0 * t), rel=1e-3
        )

    def test_mean_matches_littles_law(self, single_server, multi_server):
        for queue in (single_server, multi_server):
            metrics = queue.metrics()
            assert mean_conditional_response_time(queue) == pytest.approx(
                metrics.mean_response_time, rel=1e-10
            )

    def test_saturated_queue_rejected(self):
        # An M/M/1/1 with astronomical load still accepts some requests;
        # validation only trips on pK == 1, which cannot happen for
        # finite rates — so check the validation path directly.
        queue = MMCKQueue(arrival_rate=1.0, service_rate=1.0, servers=1,
                          capacity=1)
        assert 0.0 <= response_time_survival(queue, 1.0) <= 1.0

    def test_matches_simulation_single_server(self, rng):
        from repro.sim import simulate_mm1k_response_times

        queue = MMCKQueue(arrival_rate=80.0, service_rate=100.0, servers=1,
                          capacity=10)
        samples = simulate_mm1k_response_times(
            80.0, 100.0, 10, num_arrivals=120_000, rng=rng
        )
        for t in (0.01, 0.03, 0.06):
            empirical = float(np.mean(samples > t))
            analytic = response_time_survival(queue, t)
            assert empirical == pytest.approx(analytic, abs=0.01)


class TestWaitingTimeSurvival:
    def test_zero_when_servers_idle(self):
        queue = MMCKQueue(arrival_rate=0.001, service_rate=100.0, servers=2,
                          capacity=10)
        assert waiting_time_survival(queue, 0.0) < 1e-4

    def test_atom_at_zero(self, multi_server):
        # P(W > 0) = P(arrive when all servers busy) < 1.
        value = waiting_time_survival(multi_server, 0.0)
        assert 0.0 < value < 1.0

    def test_below_response_survival(self, multi_server):
        for t in (0.0, 0.01, 0.05):
            assert waiting_time_survival(multi_server, t) <= (
                response_time_survival(multi_server, t) + 1e-12
            )


class TestQuantile:
    def test_roundtrip(self, single_server):
        q99 = response_time_quantile(single_server, 0.99)
        assert response_time_survival(single_server, q99) == pytest.approx(
            0.01, abs=1e-9
        )

    def test_monotone_in_probability(self, multi_server):
        q50 = response_time_quantile(multi_server, 0.5)
        q95 = response_time_quantile(multi_server, 0.95)
        q999 = response_time_quantile(multi_server, 0.999)
        assert q50 < q95 < q999

    def test_rejects_probabilities_outside_open_interval(self, single_server):
        # The response time has unbounded support, so only p strictly
        # inside (0, 1) has a meaningful quantile; the error names the
        # offending argument.
        for p in (0.0, 1.0, -0.1, 1.5, float("nan")):
            with pytest.raises(ValidationError, match="probability"):
                response_time_quantile(single_server, p)

    def test_rejects_non_numeric_probability(self, single_server):
        with pytest.raises(ValidationError, match="probability"):
            response_time_quantile(single_server, "0.5")

    def test_survival_rejects_negative_time(self, single_server):
        with pytest.raises(ValidationError, match="t"):
            response_time_survival(single_server, -1e-9)
