"""Tests for the M/M/c/K queue (paper eq. 3)."""

import math

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.queueing import (
    MMCKQueue,
    mm1k_blocking_probability,
    mmck_blocking_probability,
)


def paper_equation_3(a, i, k):
    """Literal transcription of eq. (3) for cross-checking."""
    numerator = a**k / (i ** (k - i) * math.factorial(i))
    denominator = sum(a**j / math.factorial(j) for j in range(i)) + sum(
        a**j / (i ** (j - i) * math.factorial(i)) for j in range(i, k + 1)
    )
    return numerator / denominator


class TestBlockingFormula:
    @pytest.mark.parametrize("servers", [2, 3, 4, 7, 10])
    @pytest.mark.parametrize("load", [0.5, 1.0, 1.5])
    def test_matches_literal_paper_equation(self, servers, load):
        k = 10
        assert mmck_blocking_probability(load, servers, k) == pytest.approx(
            paper_equation_3(load, servers, k), rel=1e-12
        )

    def test_single_server_reduces_to_equation_1(self):
        for load in (0.5, 1.0, 1.7):
            assert mmck_blocking_probability(load, 1, 10) == pytest.approx(
                mm1k_blocking_probability(load, 10)
            )

    def test_capacity_equal_servers_is_erlang_b(self):
        from repro.queueing import erlang_b

        assert mmck_blocking_probability(2.0, 3, 3) == pytest.approx(
            erlang_b(3, 2.0)
        )

    def test_more_servers_block_less(self):
        values = [
            mmck_blocking_probability(1.0, i, 10) for i in range(1, 11)
        ]
        assert values == sorted(values, reverse=True)

    def test_matches_birth_death_solution(self):
        # Independent check through the generic birth-death chain.
        from repro.queueing import birth_death_distribution

        alpha, nu, servers, k = 120.0, 100.0, 3, 10
        births = [alpha] * k
        deaths = [nu * min(n + 1, servers) for n in range(k)]
        dist = birth_death_distribution(births, deaths)
        assert mmck_blocking_probability(alpha / nu, servers, k) == pytest.approx(
            float(dist[-1]), rel=1e-12
        )

    def test_rejects_capacity_below_servers(self):
        with pytest.raises(ValidationError, match="capacity"):
            mmck_blocking_probability(1.0, 5, 3)

    def test_numerical_stability_large_capacity(self):
        value = mmck_blocking_probability(0.9, 4, 2000)
        assert 0.0 <= value < 1e-300 or value == 0.0


class TestMMCKQueue:
    def test_paper_footnote_value(self):
        # Four servers at aggregate load 1 barely ever block.
        q = MMCKQueue(arrival_rate=100.0, service_rate=100.0, servers=4,
                      capacity=10)
        assert q.blocking_probability() == pytest.approx(
            mmck_blocking_probability(1.0, 4, 10)
        )
        assert q.blocking_probability() < 1e-3

    def test_state_distribution_sums_to_one(self):
        q = MMCKQueue(arrival_rate=150.0, service_rate=100.0, servers=2,
                      capacity=8)
        assert q.state_distribution().sum() == pytest.approx(1.0)

    def test_metrics_littles_law(self):
        q = MMCKQueue(arrival_rate=150.0, service_rate=100.0, servers=2,
                      capacity=8)
        m = q.metrics()
        assert m.mean_number_in_system == pytest.approx(
            m.effective_arrival_rate * m.mean_response_time
        )
        assert m.mean_number_in_queue == pytest.approx(
            m.effective_arrival_rate * m.mean_waiting_time
        )

    def test_utilization_below_one_even_overloaded(self):
        q = MMCKQueue(arrival_rate=500.0, service_rate=100.0, servers=2,
                      capacity=6)
        assert 0.0 < q.metrics().utilization <= 1.0

    def test_blocking_consistent_with_metrics(self):
        q = MMCKQueue(arrival_rate=100.0, service_rate=100.0, servers=3,
                      capacity=12)
        assert q.metrics().blocking_probability == pytest.approx(
            q.blocking_probability()
        )

    def test_rejects_capacity_below_servers(self):
        with pytest.raises(ValidationError):
            MMCKQueue(arrival_rate=1.0, service_rate=1.0, servers=4, capacity=2)

    def test_offered_load(self):
        q = MMCKQueue(arrival_rate=150.0, service_rate=100.0, servers=2,
                      capacity=8)
        assert q.offered_load == pytest.approx(1.5)


class TestLargeFarms:
    """Regression: the scalar recurrence must survive c=500 farms."""

    def test_500_servers_finite_and_positive(self):
        value = mmck_blocking_probability(490.0, 500, 520)
        assert 0.0 < value < 1.0
        assert math.isfinite(value)

    def test_500_servers_matches_erlang_b_when_k_equals_c(self):
        from repro.queueing import erlang_b

        assert mmck_blocking_probability(480.0, 500, 500) == pytest.approx(
            erlang_b(500, 480.0), rel=1e-9
        )

    def test_large_k_renormalization_stays_stable(self):
        # Long buffer at rho just under 1: thousands of recurrence steps.
        value = mmck_blocking_probability(495.0, 500, 5000)
        assert 0.0 <= value < 1.0
        assert math.isfinite(value)
