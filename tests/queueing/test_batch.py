"""Tests for the vectorized M/M/c/K batch kernel.

The contract is *exact* parity: every grid entry must equal the scalar
``mmck_blocking_probability`` bit for bit, because the engine's
determinism guarantee (workers=N == workers=1) rests on it.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.queueing import (
    mm1k_blocking_probability,
    mmck_blocking_grid,
    mmck_blocking_grid_rates,
    mmck_blocking_probability,
)


class TestExactParityWithScalar:
    def test_fig11_grid_matches_scalar_bit_for_bit(self):
        """The whole Fig. 11 operating range in one vectorized pass."""
        loads = []
        servers = []
        for alpha in (0.5, 1.0, 1.5):
            for c in range(1, 11):
                loads.append(alpha)
                servers.append(c)
        loads = np.array(loads)
        servers = np.array(servers)
        capacity = np.full_like(servers, 10)

        grid = mmck_blocking_grid(loads, servers, capacity)
        for index in range(loads.size):
            scalar = mmck_blocking_probability(
                float(loads[index]), int(servers[index]), int(capacity[index])
            )
            assert grid[index] == scalar  # ==, not approx: bit-identity

    def test_single_server_points_match_mm1k_exactly(self):
        # c == 1 takes the closed-form M/M/1/K path; NumPy's SIMD pow
        # differs from libm pow by an ulp, so parity here is the
        # regression guard for the scalar fallback.
        loads = np.array([0.1, 0.5, 0.9, 1.0, 1.5, 3.0])
        grid = mmck_blocking_grid(loads, np.ones(6, dtype=int), 10)
        for index, load in enumerate(loads):
            assert grid[index] == mm1k_blocking_probability(float(load), 10)

    def test_large_server_counts_survive_renormalization(self):
        # Factorial-scale weights overflow float64 near c ~ 170; the
        # kernel renormalizes mid-recurrence exactly like the scalar.
        grid = mmck_blocking_grid([200.0], [500], [501])
        scalar = mmck_blocking_probability(200.0, 500, 501)
        assert grid[0] == scalar

    @given(
        st.floats(min_value=0.01, max_value=30.0, allow_nan=False),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=0, max_value=30),
    )
    @settings(max_examples=80, deadline=None)
    def test_random_points_match_scalar(self, load, servers, extra):
        capacity = servers + extra
        grid = mmck_blocking_grid([load], [servers], [capacity])
        assert grid[0] == mmck_blocking_probability(load, servers, capacity)


class TestBroadcastingAndValidation:
    def test_broadcasts_like_numpy(self):
        loads = np.array([[0.5], [1.0]])          # (2, 1)
        servers = np.array([1, 2, 3, 4])          # (4,)
        grid = mmck_blocking_grid(loads, servers, 10)
        assert grid.shape == (2, 4)
        assert grid[1, 2] == mmck_blocking_probability(1.0, 3, 10)

    def test_scalar_inputs_give_a_zero_dim_array(self):
        grid = mmck_blocking_grid(0.5, 2, 10)
        assert grid.shape == ()
        assert float(grid) == mmck_blocking_probability(0.5, 2, 10)

    def test_capacity_below_servers_rejected(self):
        with pytest.raises(ValidationError):
            mmck_blocking_grid([1.0], [4], [3])

    def test_non_positive_load_rejected(self):
        with pytest.raises(ValidationError):
            mmck_blocking_grid([0.0], [1], [10])

    def test_non_positive_servers_rejected(self):
        with pytest.raises(ValidationError):
            mmck_blocking_grid([1.0], [0], [10])

    def test_incompatible_shapes_rejected(self):
        with pytest.raises(ValidationError):
            mmck_blocking_grid([1.0, 2.0], [1, 2, 3], 10)


class TestRatesWrapper:
    def test_rates_divide_to_offered_load(self):
        grid = mmck_blocking_grid_rates([100.0], [100.0], [4], [10])
        assert grid[0] == mmck_blocking_probability(1.0, 4, 10)

    def test_non_positive_service_rate_rejected(self):
        with pytest.raises(ValidationError):
            mmck_blocking_grid_rates([100.0], [0.0], [4], [10])
