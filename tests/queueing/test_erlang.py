"""Tests for the Erlang B / Erlang C formulas."""

import math

import pytest

from repro.errors import ValidationError
from repro.queueing import erlang_b, erlang_c


class TestErlangB:
    def test_textbook_value(self):
        # B(2, 1) = (1/2!)/(1 + 1 + 1/2) = 0.2
        assert erlang_b(2, 1.0) == pytest.approx(0.2)

    def test_direct_formula(self):
        c, a = 5, 3.0
        direct = (a**c / math.factorial(c)) / sum(
            a**j / math.factorial(j) for j in range(c + 1)
        )
        assert erlang_b(c, a) == pytest.approx(direct, rel=1e-12)

    def test_zero_load(self):
        assert erlang_b(3, 0.0) == 0.0

    def test_monotone_decreasing_in_servers(self):
        values = [erlang_b(c, 4.0) for c in range(1, 12)]
        assert values == sorted(values, reverse=True)

    def test_huge_load_does_not_overflow(self):
        assert 0.9 < erlang_b(10, 1e6) < 1.0

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValidationError):
            erlang_b(0, 1.0)
        with pytest.raises(ValidationError):
            erlang_b(2, -1.0)


class TestErlangC:
    def test_single_server_equals_rho(self):
        assert erlang_c(1, 0.5) == pytest.approx(0.5)

    def test_direct_formula(self):
        c, a = 4, 3.0
        b = erlang_b(c, a)
        expected = b / (1.0 - (a / c) * (1.0 - b))
        assert erlang_c(c, a) == pytest.approx(expected)

    def test_zero_load(self):
        assert erlang_c(4, 0.0) == 0.0

    def test_c_at_least_b(self):
        for a in (0.5, 1.5, 2.9):
            assert erlang_c(3, a) >= erlang_b(3, a)

    def test_rejects_saturated_load(self):
        with pytest.raises(ValidationError):
            erlang_c(2, 2.0)
