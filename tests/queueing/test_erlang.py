"""Tests for the Erlang B / Erlang C formulas."""

import math

import pytest

from repro.errors import ValidationError
from repro.queueing import erlang_b, erlang_c


class TestErlangB:
    def test_textbook_value(self):
        # B(2, 1) = (1/2!)/(1 + 1 + 1/2) = 0.2
        assert erlang_b(2, 1.0) == pytest.approx(0.2)

    def test_direct_formula(self):
        c, a = 5, 3.0
        direct = (a**c / math.factorial(c)) / sum(
            a**j / math.factorial(j) for j in range(c + 1)
        )
        assert erlang_b(c, a) == pytest.approx(direct, rel=1e-12)

    def test_zero_load(self):
        assert erlang_b(3, 0.0) == 0.0

    def test_monotone_decreasing_in_servers(self):
        values = [erlang_b(c, 4.0) for c in range(1, 12)]
        assert values == sorted(values, reverse=True)

    def test_huge_load_does_not_overflow(self):
        assert 0.9 < erlang_b(10, 1e6) < 1.0

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValidationError):
            erlang_b(0, 1.0)
        with pytest.raises(ValidationError):
            erlang_b(2, -1.0)


class TestErlangBLargeFarms:
    """Regression tests: the naive a**c / c! form overflows near c=171."""

    def test_500_servers_at_high_load(self):
        # a = 480 erlangs on 500 servers: small but strictly positive
        # blocking; float overflow in the old formulation returned nan.
        value = erlang_b(500, 480.0)
        assert 0.0 < value < 0.05
        assert math.isfinite(value)

    def test_500_servers_recurrence_consistency(self):
        # The inverse recurrence 1/B(c) = 1 + (c/a)/B(c-1) must hold
        # exactly where both sides are representable.
        a = 450.0
        b_499 = erlang_b(499, a)
        b_500 = erlang_b(500, a)
        assert 1.0 / b_500 == pytest.approx(
            1.0 + (500.0 / a) / b_499, rel=1e-12
        )

    def test_1000_servers_lightly_loaded_underflows_to_zero(self):
        # Blocking is astronomically small; the recurrence saturates and
        # reports exactly 0 instead of overflowing.
        assert erlang_b(1000, 10.0) == 0.0

    def test_heavy_traffic_limit(self):
        # a >> c: blocking tends to 1 - c/a.
        assert erlang_b(500, 5000.0) == pytest.approx(0.9, abs=1e-3)

    def test_monotone_decreasing_in_servers_at_scale(self):
        values = [erlang_b(c, 480.0) for c in (460, 480, 500, 520)]
        assert values == sorted(values, reverse=True)


class TestErlangC:
    def test_single_server_equals_rho(self):
        assert erlang_c(1, 0.5) == pytest.approx(0.5)

    def test_direct_formula(self):
        c, a = 4, 3.0
        b = erlang_b(c, a)
        expected = b / (1.0 - (a / c) * (1.0 - b))
        assert erlang_c(c, a) == pytest.approx(expected)

    def test_zero_load(self):
        assert erlang_c(4, 0.0) == 0.0

    def test_c_at_least_b(self):
        for a in (0.5, 1.5, 2.9):
            assert erlang_c(3, a) >= erlang_b(3, a)

    def test_rejects_saturated_load(self):
        with pytest.raises(ValidationError):
            erlang_c(2, 2.0)

    def test_500_servers_finite(self):
        value = erlang_c(500, 480.0)
        assert 0.0 < value < 1.0
        assert math.isfinite(value)
        assert value >= erlang_b(500, 480.0)
