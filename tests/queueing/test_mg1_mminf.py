"""Tests for the M/G/1 and M/M/infinity queues."""

import math

import pytest

from repro.errors import ValidationError
from repro.queueing import MG1Queue, MM1Queue, MMInfQueue


class TestMG1:
    def test_exponential_service_reduces_to_mm1(self):
        mg1 = MG1Queue(0.7, 1.0, service_scv=1.0).metrics()
        mm1 = MM1Queue(0.7, 1.0).metrics()
        assert mg1.mean_waiting_time == pytest.approx(mm1.mean_waiting_time)
        assert mg1.mean_number_in_system == pytest.approx(
            mm1.mean_number_in_system
        )

    def test_deterministic_service_halves_waiting(self):
        md1 = MG1Queue(0.8, 1.0, service_scv=0.0)
        mm1 = MG1Queue(0.8, 1.0, service_scv=1.0)
        assert md1.mean_waiting_time() == pytest.approx(
            mm1.mean_waiting_time() / 2.0
        )

    def test_high_variability_hurts(self):
        waits = [
            MG1Queue(0.8, 1.0, service_scv=scv).mean_waiting_time()
            for scv in (0.0, 1.0, 4.0, 16.0)
        ]
        assert waits == sorted(waits)

    def test_littles_law(self):
        m = MG1Queue(0.6, 1.0, service_scv=2.5).metrics()
        assert m.mean_number_in_queue == pytest.approx(
            m.arrival_rate * m.mean_waiting_time
        )

    def test_pollaczek_khinchine_formula(self):
        lam, mu, scv = 0.5, 1.0, 3.0
        rho = lam / mu
        expected = rho * (1 + scv) / (2 * (mu - lam))
        assert MG1Queue(lam, mu, scv).mean_waiting_time() == pytest.approx(
            expected
        )

    def test_stability_required(self):
        with pytest.raises(ValidationError):
            MG1Queue(1.0, 1.0)

    def test_negative_scv_rejected(self):
        with pytest.raises(ValidationError):
            MG1Queue(0.5, 1.0, service_scv=-0.1)


class TestMMInf:
    def test_poisson_occupancy(self):
        q = MMInfQueue(arrival_rate=3.0, service_rate=1.0)
        assert q.probability_of(0) == pytest.approx(math.exp(-3.0))
        assert q.probability_of(3) == pytest.approx(
            math.exp(-3.0) * 27.0 / 6.0
        )
        assert q.probability_of(-1) == 0.0

    def test_occupancy_sums_to_one(self):
        q = MMInfQueue(arrival_rate=2.0, service_rate=0.5)
        assert sum(q.probability_of(n) for n in range(200)) == pytest.approx(
            1.0
        )

    def test_no_waiting(self):
        m = MMInfQueue(arrival_rate=5.0, service_rate=1.0).metrics()
        assert m.mean_waiting_time == 0.0
        assert m.mean_response_time == pytest.approx(1.0)
        assert m.blocking_probability == 0.0

    def test_bounds_the_mmck_family(self):
        """M/M/c/K blocking tends to 0 as c grows toward the M/M/inf limit."""
        from repro.queueing import mmck_blocking_probability

        load = 3.0
        blockings = [
            mmck_blocking_probability(load, c, c + 30) for c in (1, 2, 4, 8, 16)
        ]
        assert blockings == sorted(blockings, reverse=True)
        assert blockings[-1] < 1e-9
