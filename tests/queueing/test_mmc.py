"""Tests for the M/M/c queue."""

import pytest

from repro.errors import ValidationError
from repro.queueing import MMCQueue, MM1Queue


class TestMMC:
    def test_rejects_unstable_load(self):
        with pytest.raises(ValidationError):
            MMCQueue(arrival_rate=4.0, service_rate=1.0, servers=4)

    def test_single_server_reduces_to_mm1(self):
        mmc = MMCQueue(arrival_rate=0.7, service_rate=1.0, servers=1).metrics()
        mm1 = MM1Queue(arrival_rate=0.7, service_rate=1.0).metrics()
        assert mmc.mean_number_in_system == pytest.approx(
            mm1.mean_number_in_system
        )
        assert mmc.mean_waiting_time == pytest.approx(mm1.mean_waiting_time)

    def test_waiting_probability_is_erlang_c(self):
        from repro.queueing import erlang_c

        q = MMCQueue(arrival_rate=3.0, service_rate=1.0, servers=4)
        assert q.probability_of_waiting() == pytest.approx(erlang_c(4, 3.0))

    def test_littles_law(self):
        q = MMCQueue(arrival_rate=5.0, service_rate=2.0, servers=4)
        m = q.metrics()
        assert m.mean_number_in_system == pytest.approx(
            m.arrival_rate * m.mean_response_time
        )

    def test_state_probabilities_sum_to_one(self):
        q = MMCQueue(arrival_rate=3.0, service_rate=1.0, servers=4)
        assert sum(q.probability_of(n) for n in range(300)) == pytest.approx(1.0)

    def test_state_probabilities_match_finite_approximation(self):
        from repro.queueing import MMCKQueue

        q = MMCQueue(arrival_rate=2.0, service_rate=1.0, servers=3)
        finite = MMCKQueue(
            arrival_rate=2.0, service_rate=1.0, servers=3, capacity=80
        )
        dist = finite.state_distribution()
        for n in range(6):
            assert q.probability_of(n) == pytest.approx(float(dist[n]), abs=1e-9)

    def test_more_servers_cut_waiting(self):
        few = MMCQueue(arrival_rate=3.0, service_rate=1.0, servers=4).metrics()
        many = MMCQueue(arrival_rate=3.0, service_rate=1.0, servers=8).metrics()
        assert many.mean_waiting_time < few.mean_waiting_time
