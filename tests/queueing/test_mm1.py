"""Tests for the M/M/1 queue."""

import pytest

from repro.errors import ValidationError
from repro.queueing import MM1Queue


class TestMM1:
    def test_rejects_unstable_load(self):
        with pytest.raises(ValidationError, match="stability"):
            MM1Queue(arrival_rate=1.0, service_rate=1.0)

    def test_utilization(self):
        q = MM1Queue(arrival_rate=0.5, service_rate=2.0)
        assert q.utilization == pytest.approx(0.25)

    def test_textbook_metrics(self):
        q = MM1Queue(arrival_rate=1.0, service_rate=2.0)
        m = q.metrics()
        assert m.mean_number_in_system == pytest.approx(1.0)
        assert m.mean_number_in_queue == pytest.approx(0.5)
        assert m.mean_response_time == pytest.approx(1.0)
        assert m.mean_waiting_time == pytest.approx(0.5)
        assert m.blocking_probability == 0.0
        assert m.throughput == pytest.approx(1.0)

    def test_littles_law(self):
        q = MM1Queue(arrival_rate=3.0, service_rate=4.0)
        m = q.metrics()
        assert m.mean_number_in_system == pytest.approx(
            m.arrival_rate * m.mean_response_time
        )

    def test_state_probabilities_geometric(self):
        q = MM1Queue(arrival_rate=1.0, service_rate=2.0)
        assert q.probability_of(0) == pytest.approx(0.5)
        assert q.probability_of(3) == pytest.approx(0.5 * 0.5**3)
        assert q.probability_of(-1) == 0.0

    def test_state_probabilities_sum_to_one(self):
        q = MM1Queue(arrival_rate=1.0, service_rate=2.0)
        assert sum(q.probability_of(n) for n in range(200)) == pytest.approx(1.0)

    def test_waiting_time_explodes_near_saturation(self):
        light = MM1Queue(arrival_rate=0.5, service_rate=1.0).metrics()
        heavy = MM1Queue(arrival_rate=0.99, service_rate=1.0).metrics()
        assert heavy.mean_waiting_time > 50 * light.mean_waiting_time
