"""Tests for the M/M/1/K queue (paper eq. 1)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.queueing import MM1KQueue, mm1k_blocking_probability


class TestBlockingFormula:
    def test_paper_equation_formula(self):
        # pK = rho^K (1 - rho) / (1 - rho^(K+1))
        rho, k = 0.8, 10
        expected = rho**k * (1 - rho) / (1 - rho ** (k + 1))
        assert mm1k_blocking_probability(rho, k) == pytest.approx(expected)

    def test_critical_load_limit(self):
        # At rho = 1 the formula degenerates to 1 / (K + 1) by continuity.
        assert mm1k_blocking_probability(1.0, 10) == pytest.approx(1.0 / 11.0)

    def test_continuity_at_critical_load(self):
        near = mm1k_blocking_probability(1.0 + 1e-9, 10)
        assert near == pytest.approx(1.0 / 11.0, abs=1e-6)

    def test_overload_blocks_heavily(self):
        assert mm1k_blocking_probability(2.0, 5) > 0.5

    def test_light_load_blocks_rarely(self):
        assert mm1k_blocking_probability(0.1, 10) < 1e-10

    def test_monotone_in_load(self):
        values = [mm1k_blocking_probability(rho, 8) for rho in (0.2, 0.5, 0.9, 1.3)]
        assert values == sorted(values)

    def test_monotone_decreasing_in_capacity(self):
        values = [mm1k_blocking_probability(0.9, k) for k in (1, 2, 5, 10, 20)]
        assert values == sorted(values, reverse=True)

    def test_capacity_one_is_erlang_b(self):
        from repro.queueing import erlang_b

        for load in (0.3, 1.0, 2.5):
            assert mm1k_blocking_probability(load, 1) == pytest.approx(
                erlang_b(1, load)
            )

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValidationError):
            mm1k_blocking_probability(-0.5, 10)
        with pytest.raises(ValidationError):
            mm1k_blocking_probability(0.5, 0)


class TestMM1KQueue:
    def test_blocking_matches_formula(self):
        q = MM1KQueue(arrival_rate=80.0, service_rate=100.0, capacity=10)
        assert q.blocking_probability() == pytest.approx(
            mm1k_blocking_probability(0.8, 10)
        )

    def test_paper_configuration(self):
        # alpha = nu = 100/s, K = 10 -> pK = 1/11 (the basic architecture
        # at full load).
        q = MM1KQueue(arrival_rate=100.0, service_rate=100.0, capacity=10)
        assert q.blocking_probability() == pytest.approx(1.0 / 11.0)

    def test_state_distribution_geometric(self):
        q = MM1KQueue(arrival_rate=50.0, service_rate=100.0, capacity=4)
        dist = q.state_distribution()
        # pi_n proportional to rho^n.
        ratios = dist[1:] / dist[:-1]
        assert ratios == pytest.approx([0.5] * 4)

    def test_blocking_equals_full_state_probability(self):
        q = MM1KQueue(arrival_rate=90.0, service_rate=100.0, capacity=7)
        assert q.blocking_probability() == pytest.approx(
            q.state_distribution()[-1]
        )

    def test_metrics_littles_law(self):
        q = MM1KQueue(arrival_rate=90.0, service_rate=100.0, capacity=6)
        m = q.metrics()
        assert m.mean_number_in_system == pytest.approx(
            m.effective_arrival_rate * m.mean_response_time
        )
        assert m.mean_number_in_queue == pytest.approx(
            m.effective_arrival_rate * m.mean_waiting_time
        )

    def test_metrics_throughput_and_loss(self):
        q = MM1KQueue(arrival_rate=100.0, service_rate=100.0, capacity=10)
        m = q.metrics()
        assert m.throughput + m.loss_rate == pytest.approx(100.0)

    def test_metrics_approach_mm1_for_large_capacity(self):
        from repro.queueing import MM1Queue

        finite = MM1KQueue(arrival_rate=50.0, service_rate=100.0, capacity=60)
        infinite = MM1Queue(arrival_rate=50.0, service_rate=100.0)
        assert finite.metrics().mean_number_in_system == pytest.approx(
            infinite.metrics().mean_number_in_system, abs=1e-9
        )

    def test_probability_of(self):
        q = MM1KQueue(arrival_rate=50.0, service_rate=100.0, capacity=3)
        m = q.metrics()
        assert m.probability_of(0) == pytest.approx(q.state_distribution()[0])
        assert m.probability_of(99) == 0.0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValidationError):
            MM1KQueue(arrival_rate=1.0, service_rate=1.0, capacity=0)
