"""Tests for the generic birth-death steady-state solver."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.queueing import birth_death_distribution


class TestBirthDeathDistribution:
    def test_two_state_closed_form(self):
        dist = birth_death_distribution([2.0], [3.0])
        assert dist == pytest.approx([0.6, 0.4])

    def test_matches_ctmc_steady_state(self):
        from repro.markov import birth_death_chain

        births = [3.0, 2.0, 1.0]
        deaths = [1.0, 2.0, 3.0]
        dist = birth_death_distribution(births, deaths)
        pi = birth_death_chain(births, deaths).steady_state()
        for i in range(4):
            assert dist[i] == pytest.approx(pi[i], abs=1e-12)

    def test_zero_birth_truncates(self):
        dist = birth_death_distribution([1.0, 0.0, 1.0], [1.0, 1.0, 1.0])
        assert dist[2] == 0.0
        assert dist[3] == 0.0
        assert dist[:2].sum() == pytest.approx(1.0)

    def test_normalization(self):
        rng = np.random.default_rng(2)
        births = rng.uniform(0.1, 5.0, 20)
        deaths = rng.uniform(0.1, 5.0, 20)
        dist = birth_death_distribution(births, deaths)
        assert dist.sum() == pytest.approx(1.0)
        assert np.all(dist >= 0)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValidationError, match="equal length"):
            birth_death_distribution([1.0], [1.0, 2.0])

    def test_rejects_nonpositive_death(self):
        with pytest.raises(ValidationError):
            birth_death_distribution([1.0], [0.0])

    def test_rejects_negative_birth(self):
        with pytest.raises(ValidationError):
            birth_death_distribution([-1.0], [1.0])

    def test_rejects_nan_death_rate(self):
        # NaN fails "death <= 0" as False and would silently poison the
        # whole distribution; the finiteness check names the NaN instead.
        with pytest.raises(ValidationError, match="NaN"):
            birth_death_distribution([1.0], [float("nan")])

    def test_rejects_nan_birth_rate(self):
        with pytest.raises(ValidationError):
            birth_death_distribution([float("nan")], [1.0])
