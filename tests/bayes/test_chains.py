"""Service-function chains and the cloud Travel Agency.

Chain composition is a *joint* inference query — the tests pin the
common-cause correlation that distinguishes it from a product of
marginals, and check the eq.-(10) aggregation over the Table 1 user
classes against a hand-rolled scenario sum.
"""

import pytest

from repro.bayes import (
    CLOUD_CHAINS,
    CloudDeployment,
    CloudTravelAgency,
    ServiceFunctionChain,
    chain_availability,
    chain_user_availability,
)
from repro.bayes.network import BayesianNetwork
from repro.errors import ValidationError
from repro.ta import CLASS_A, CLASS_B
from repro.ta.userclasses import BOOK, BROWSE, FUNCTIONS, HOME, PAY, SEARCH

EXACT = 1e-12


def tiny_network():
    """Two chains sharing one zone: web in-zone, db in-zone, pay not."""
    net = BayesianNetwork()
    net.add_node("zone", cpt=0.99)
    net.add_node("web", parents=("zone",), cpt=(0.0, 0.999))
    net.add_node("db", parents=("zone",), cpt=(0.0, 0.998))
    net.add_node("pay", cpt=0.9995)
    return net


class TestServiceFunctionChain:
    def test_validation(self):
        with pytest.raises(ValidationError, match="name must be non-empty"):
            ServiceFunctionChain("", ("web",))
        with pytest.raises(ValidationError, match="at least one service"):
            ServiceFunctionChain("browse", ())
        with pytest.raises(ValidationError, match="duplicate service"):
            ServiceFunctionChain("browse", ("web", "web"))

    def test_chain_availability_is_joint_not_product(self):
        net = tiny_network()
        chain = ServiceFunctionChain("browse", ("web", "db"))
        joint = chain_availability(net, chain)
        # P(web, db) = P(zone) * 0.999 * 0.998 — NOT marginal product.
        assert joint == pytest.approx(0.99 * 0.999 * 0.998, abs=EXACT)
        assert joint > net.marginal("web") * net.marginal("db")


class TestChainUserAvailability:
    CHAINS = {
        HOME: ServiceFunctionChain(HOME, ("web",)),
        BROWSE: ServiceFunctionChain(BROWSE, ("web", "db")),
        SEARCH: ServiceFunctionChain(SEARCH, ("web", "db")),
        BOOK: ServiceFunctionChain(BOOK, ("web", "db")),
        PAY: ServiceFunctionChain(PAY, ("web", "db", "pay")),
    }

    def test_matches_hand_rolled_scenario_sum(self):
        net = tiny_network()
        result = chain_user_availability(net, self.CHAINS, CLASS_A)
        expected = 0.0
        for scenario in CLASS_A.scenarios:
            services = set()
            for function in scenario.functions:
                services.update(self.CHAINS[function].services)
            expected += scenario.probability * net.probability_all_up(
                tuple(services)
            )
        assert result.availability == pytest.approx(expected, abs=EXACT)
        assert result.user_class == CLASS_A.name
        assert len(result.per_scenario) == len(CLASS_A.scenarios)

    def test_missing_chain_named(self):
        net = tiny_network()
        chains = dict(self.CHAINS)
        del chains[PAY]
        with pytest.raises(
            ValidationError, match="no service chain for function 'pay'"
        ):
            chain_user_availability(net, chains, CLASS_A)


class TestCloudDeployment:
    def test_defaults_valid(self):
        deployment = CloudDeployment()
        assert deployment.zones == 3
        assert deployment.db_quorum == 2

    def test_quorum_bound(self):
        with pytest.raises(
            ValidationError, match=r"db_quorum must be in 1\.\.3"
        ):
            CloudDeployment(db_replicas=3, db_quorum=4)

    def test_probabilities_validated(self):
        with pytest.raises(ValidationError, match="zone_availability"):
            CloudDeployment(zone_availability=1.01)


class TestCloudTravelAgency:
    def test_every_table6_function_has_a_chain(self):
        assert sorted(CLOUD_CHAINS) == sorted(FUNCTIONS)

    def test_function_availabilities_ordered_by_chain_length(self):
        agency = CloudTravelAgency()
        home = agency.function_availability(HOME)
        browse = agency.function_availability(BROWSE)
        search = agency.function_availability(SEARCH)
        # Longer chains can only lose availability.
        assert home >= browse >= search

    def test_unknown_function_rejected(self):
        agency = CloudTravelAgency()
        with pytest.raises(ValidationError, match="unknown function 'ftp'"):
            agency.function_availability("ftp")

    def test_marginals_match_closed_forms(self):
        from repro.bayes import farm_availability, replica_set_availability

        deployment = CloudDeployment()
        agency = CloudTravelAgency(deployment)
        assert agency.web_availability() == pytest.approx(
            farm_availability(
                deployment.zones,
                deployment.zone_availability,
                deployment.web_servers_per_zone,
                deployment.arrival_rate,
                deployment.service_rate,
                deployment.buffer_capacity,
                deployment.web_failure_rate,
                deployment.web_repair_rate,
            ),
            abs=EXACT,
        )
        # Round-robin over 3 zones with 3 replicas = one per zone.
        assert agency.db_availability() == pytest.approx(
            replica_set_availability(
                [1, 1, 1],
                deployment.db_quorum,
                deployment.db_replica_availability,
                deployment.zone_availability,
            ),
            abs=EXACT,
        )

    def test_user_availability_reuses_core_result(self):
        agency = CloudTravelAgency()
        result = agency.user_availability(CLASS_A)
        assert result.user_class == CLASS_A.name
        assert 0.99 < result.availability < 1.0
        # Class A visits pay-heavy scenarios less often than class B
        # books/pays — both classes land in the same neighbourhood.
        other = agency.user_availability(CLASS_B)
        assert abs(result.availability - other.availability) < 1e-3

    def test_strict_quorum_hurts(self):
        relaxed = CloudTravelAgency(
            CloudDeployment(db_replicas=3, db_quorum=2)
        )
        strict = CloudTravelAgency(
            CloudDeployment(db_replicas=3, db_quorum=3)
        )
        assert (
            strict.user_availability(CLASS_A).availability
            < relaxed.user_availability(CLASS_A).availability
        )

    def test_single_zone_deployment_builds(self):
        agency = CloudTravelAgency(
            CloudDeployment(zones=1, db_replicas=2, db_quorum=1)
        )
        assert agency.network.node("db-2").parents == ("zone-1",)
        assert 0.9 < agency.user_availability(CLASS_B).availability < 1.0
