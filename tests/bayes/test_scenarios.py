"""The cloud comparison grid: engine execution, ranking, rendering.

The comparison is the unit behind ``repro cloud`` and the server's
``cloud`` job kind, so its determinism contract (serial == workers,
cache-warm == cache-cold) is pinned here at the library level.
"""

import pytest

from repro.bayes import (
    CloudDeployment,
    CloudScenario,
    compare_cloud_scenarios,
    evaluate_cloud_scenario,
    format_cloud_comparison,
)
from repro.engine import EvaluationEngine
from repro.errors import ValidationError
from repro.workloads import (
    cloud_comparison_text,
    default_cloud_scenarios,
    run_cloud_comparison,
)


def small_grid():
    return (
        CloudScenario("one-zone", CloudDeployment(zones=1, db_replicas=2,
                                                  db_quorum=1)),
        CloudScenario("three-zone", CloudDeployment()),
    )


class TestEvaluateCloudScenario:
    def test_result_fields(self):
        result = evaluate_cloud_scenario(small_grid()[1])
        assert result.scenario == "three-zone"
        assert result.zones == 3
        assert 0.99 < result.class_a < 1.0
        assert 0.99 < result.class_b < 1.0
        assert result.mean == pytest.approx(
            (result.class_a + result.class_b) / 2.0
        )
        assert result.downtime_hours_per_year == pytest.approx(
            (1.0 - result.mean) * 8760.0
        )


class TestCompareCloudScenarios:
    def test_ranking_is_sorted_best_first(self):
        report = compare_cloud_scenarios(small_grid())
        assert len(report.cells) == 2
        means = [cell.mean for cell in report.ranking]
        assert means == sorted(means, reverse=True)
        assert report.best is report.ranking[0]

    def test_workers_bit_identical(self):
        serial = compare_cloud_scenarios(small_grid())
        parallel = compare_cloud_scenarios(
            small_grid(), engine=EvaluationEngine(workers=2)
        )
        assert serial.cells == parallel.cells
        assert serial.ranking == parallel.ranking

    def test_cache_warm_bit_identical(self, tmp_path):
        cold = compare_cloud_scenarios(
            small_grid(), engine=EvaluationEngine(cache_dir=tmp_path)
        )
        entries = list(tmp_path.rglob("*"))
        assert entries  # the keyed scenario cells were persisted
        warm = compare_cloud_scenarios(
            small_grid(), engine=EvaluationEngine(cache_dir=tmp_path)
        )
        assert warm.cells == cold.cells
        # Nothing new was written on the warm run: every cell restored.
        assert list(tmp_path.rglob("*")) == entries

    def test_empty_and_duplicate_rejected(self):
        with pytest.raises(ValidationError, match="at least one scenario"):
            compare_cloud_scenarios(())
        twin = small_grid()[0]
        with pytest.raises(ValidationError, match="must be unique"):
            compare_cloud_scenarios((twin, twin))


class TestFormatting:
    def test_table_lists_best_first_with_downtime(self):
        report = compare_cloud_scenarios(small_grid())
        text = format_cloud_comparison(report, title="cloud grid")
        lines = text.splitlines()
        assert lines[0] == "cloud grid"
        assert "deployment" in text and "downtime" in text
        body = [line for line in lines if line.startswith(("one-", "three-"))]
        assert body[0].startswith(report.best.scenario)


class TestWorkloads:
    def test_default_grid_names_are_unique(self):
        scenarios = default_cloud_scenarios()
        names = [s.name for s in scenarios]
        assert len(set(names)) == len(names)
        assert len(scenarios) >= 4
        zones = {s.deployment.zones for s in scenarios}
        assert {1, 2, 3} <= zones

    def test_run_cloud_comparison_text(self):
        report = run_cloud_comparison(zone_availability=0.999)
        text = cloud_comparison_text(report, 100.0, 0.999)
        assert "best deployment:" in text
        assert report.best.scenario in text
        assert "zone availability 0.999" in text
