"""Cloud building blocks: k-of-n CPTs, closed forms, the model builder.

The closed forms (`replica_set_availability`, `farm_availability`) are
checked against exact network inference over the corresponding
Bayesian-network constructs at several parameter points; the
Monte-Carlo leg of the contract lives in ``test_cross_validation.py``.
"""

import pytest

from repro.availability import WebServiceModel
from repro.bayes import (
    CloudModelBuilder,
    farm_availability,
    k_of_n_cpt,
    replica_set_availability,
)
from repro.errors import ValidationError

# Exact closed form vs exact inference: only float-noise apart.
EXACT = 1e-12


class TestKofNCpt:
    def test_k_equals_one_is_or(self):
        # Only the all-down row is 0.
        table = k_of_n_cpt(3, 1)
        assert table[0] == 0.0
        assert all(v == 1.0 for v in table[1:])

    def test_k_equals_n_is_and(self):
        # Only the all-up row is 1.
        table = k_of_n_cpt(3, 3)
        assert table[-1] == 1.0
        assert all(v == 0.0 for v in table[:-1])

    def test_majority_rows(self):
        table = k_of_n_cpt(3, 2)
        # Rows with >= 2 set bits: 3, 5, 6, 7.
        assert [i for i, v in enumerate(table) if v == 1.0] == [3, 5, 6, 7]

    def test_k_above_n_rejected(self):
        with pytest.raises(
            ValidationError, match=r"k must be in 1\.\.3 \(n replicas\), got 4"
        ):
            k_of_n_cpt(3, 4)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValidationError, match="k must be"):
            k_of_n_cpt(3, 0)
        with pytest.raises(ValidationError, match="n must be"):
            k_of_n_cpt(0, 1)


class TestReplicaSetClosedForm:
    def test_single_replica_single_zone(self):
        assert replica_set_availability(
            [1], 1, 0.95, zone_availability=0.99
        ) == pytest.approx(0.99 * 0.95, abs=EXACT)

    def test_parallel_pair_perfect_zones(self):
        a = 0.9
        assert replica_set_availability([1, 1], 1, a) == pytest.approx(
            1.0 - (1.0 - a) ** 2, abs=EXACT
        )

    def test_series_pair_perfect_zones(self):
        a = 0.9
        assert replica_set_availability([1, 1], 2, a) == pytest.approx(
            a * a, abs=EXACT
        )

    def test_same_zone_pair_correlates(self):
        # Both replicas share one zone: the common cause makes the OR
        # block strictly worse than the independent two-zone placement.
        together = replica_set_availability([2], 1, 0.95, 0.99)
        apart = replica_set_availability([1, 1], 1, 0.95, 0.99)
        assert together < apart
        # Conditional-on-zone closed form for the single-zone pair.
        assert together == pytest.approx(
            0.99 * (1.0 - 0.05**2), abs=EXACT
        )

    @pytest.mark.parametrize(
        "zones, quorum, replica_a, zone_a",
        [
            ([1, 1, 1], 2, 0.9999, 0.9995),
            ([2, 2], 2, 0.999, 0.999),
            ([2, 1], 3, 0.95, 0.99),
            ([3], 2, 0.98, 0.995),
        ],
    )
    def test_matches_network_inference(self, zones, quorum, replica_a, zone_a):
        builder = CloudModelBuilder()
        placement = []
        for i, count in enumerate(zones):
            zone = builder.add_zone(f"zone-{i + 1}", zone_a)
            placement.extend([zone] * count)
        builder.add_replica_set(
            "set", placement, quorum=quorum, replica_availability=replica_a
        )
        network = builder.build()
        assert network.marginal("set") == pytest.approx(
            replica_set_availability(zones, quorum, replica_a, zone_a),
            abs=EXACT,
        )

    def test_quorum_out_of_range(self):
        with pytest.raises(
            ValidationError, match=r"quorum must be in 1\.\.3"
        ):
            replica_set_availability([2, 1], 4, 0.9)

    def test_empty_zones_rejected(self):
        with pytest.raises(ValidationError, match="at least one zone"):
            replica_set_availability([], 1, 0.9)


class TestFarmClosedForm:
    FARM = dict(
        servers_per_zone=2,
        arrival_rate=100.0,
        service_rate=100.0,
        buffer_capacity=10,
        failure_rate=1e-4,
        repair_rate=1.0,
    )

    def test_perfect_zones_reduce_to_web_service_model(self):
        full = WebServiceModel(
            servers=3 * self.FARM["servers_per_zone"],
            arrival_rate=self.FARM["arrival_rate"],
            service_rate=self.FARM["service_rate"],
            buffer_capacity=self.FARM["buffer_capacity"],
            failure_rate=self.FARM["failure_rate"],
            repair_rate=self.FARM["repair_rate"],
        ).availability()
        assert farm_availability(
            zones=3, zone_availability=1.0, **self.FARM
        ) == pytest.approx(full, abs=EXACT)

    @pytest.mark.parametrize("zones, zone_a", [(1, 0.999), (2, 0.9995), (3, 0.995)])
    def test_matches_network_inference(self, zones, zone_a):
        builder = CloudModelBuilder()
        names = [
            builder.add_zone(f"zone-{i + 1}", zone_a) for i in range(zones)
        ]
        builder.add_farm("web", names, **self.FARM)
        network = builder.build()
        assert network.marginal("web") == pytest.approx(
            farm_availability(zones, zone_a, **self.FARM), abs=EXACT
        )

    def test_more_zones_help(self):
        one = farm_availability(1, 0.999, **self.FARM)
        three = farm_availability(3, 0.999, **self.FARM)
        assert three > one


class TestCloudModelBuilder:
    def test_undeclared_zone_named(self):
        builder = CloudModelBuilder()
        with pytest.raises(
            ValidationError,
            match="'db' references undeclared zone 'zone-9'",
        ):
            builder.add_replica_set(
                "db", ["zone-9"], quorum=1, replica_availability=0.9
            )

    def test_replica_quorum_bounds(self):
        builder = CloudModelBuilder()
        zone = builder.add_zone("zone-1", 0.999)
        with pytest.raises(
            ValidationError, match=r"quorum must be in 1\.\.2"
        ):
            builder.add_replica_set(
                "db", [zone, zone], quorum=3, replica_availability=0.9
            )

    def test_empty_replica_set_rejected(self):
        builder = CloudModelBuilder()
        with pytest.raises(ValidationError, match="at least one replica"):
            builder.add_replica_set(
                "db", [], quorum=1, replica_availability=0.9
            )

    def test_zoneless_replicas_are_independent_roots(self):
        builder = CloudModelBuilder()
        builder.add_replica_set(
            "flight", [None, None], quorum=1, replica_availability=0.9
        )
        network = builder.build()
        assert network.node("flight-1").parents == ()
        assert network.marginal("flight") == pytest.approx(
            1.0 - 0.1**2, abs=EXACT
        )

    def test_farm_buffer_must_cover_full_farm(self):
        builder = CloudModelBuilder()
        zones = [builder.add_zone(f"z{i}", 0.999) for i in range(3)]
        with pytest.raises(
            ValidationError,
            match=r"farm 'web' buffer_capacity must be >= 6",
        ):
            builder.add_farm(
                "web",
                zones,
                servers_per_zone=2,
                arrival_rate=100.0,
                service_rate=100.0,
                buffer_capacity=5,
                failure_rate=1e-4,
                repair_rate=1.0,
            )

    def test_farm_duplicate_zone_rejected(self):
        builder = CloudModelBuilder()
        zone = builder.add_zone("z1", 0.999)
        with pytest.raises(ValidationError, match="duplicate zone"):
            builder.add_farm(
                "web",
                [zone, zone],
                servers_per_zone=1,
                arrival_rate=1.0,
                service_rate=1.0,
                buffer_capacity=4,
                failure_rate=1e-4,
                repair_rate=1.0,
            )

    def test_zone_availability_validated(self):
        builder = CloudModelBuilder()
        with pytest.raises(
            ValidationError, match="zone 'z1' availability"
        ):
            builder.add_zone("z1", 1.5)
