"""DES cross-validation of every ``repro.bayes`` closed form.

The tier-1 agreement contract for the cloud models: ancestral sampling
(:func:`repro.sim.estimate_joint_availability`) and replayed sessions
(:func:`repro.sim.estimate_chain_user_availability`) must agree with

* the replica-set closed form (zero-inflated binomial convolution),
* the zonal common-cause farm closed form (binomial regime mixture),
* the service-chain eq.-(10) composition,

each at three or more parameter points, within
``|estimate - closed form| <= Z_TOL * stderr + ABS_FLOOR`` — the house
tolerance convention from ``tests/sim/test_clients.py``.
"""

import numpy as np
import pytest

from repro.bayes import (
    CLOUD_CHAINS,
    CloudDeployment,
    CloudModelBuilder,
    CloudTravelAgency,
    chain_user_availability,
    farm_availability,
    replica_set_availability,
)
from repro.sim import (
    estimate_chain_user_availability,
    estimate_joint_availability,
    sample_node_states,
)
from repro.ta import CLASS_A, CLASS_B

Z_TOL = 4.0        # accepted |z| in stderr units
ABS_FLOOR = 5e-4   # guard against vanishing stderr at extreme parameters

SAMPLES = 60_000


def assert_agrees(estimate, stderr, analytic):
    tolerance = Z_TOL * stderr + ABS_FLOOR
    assert abs(estimate - analytic) <= tolerance, (
        f"simulation {estimate:.6f} vs closed form {analytic:.6f} "
        f"(tolerance {tolerance:.6f})"
    )


class TestReplicaSetCrossValidation:
    # Three placements: singleton zone, spread pair, mixed 2+1 quorum.
    POINTS = [
        ([2], 1, 0.95, 0.99),
        ([1, 1, 1], 2, 0.98, 0.995),
        ([2, 1], 2, 0.9, 0.97),
    ]

    @pytest.mark.parametrize("zones, quorum, replica_a, zone_a", POINTS)
    def test_sampled_quorum_matches_closed_form(
        self, zones, quorum, replica_a, zone_a
    ):
        builder = CloudModelBuilder()
        placement = []
        for i, count in enumerate(zones):
            zone = builder.add_zone(f"zone-{i + 1}", zone_a)
            placement.extend([zone] * count)
        builder.add_replica_set(
            "set", placement, quorum=quorum, replica_availability=replica_a
        )
        network = builder.build()
        estimate = estimate_joint_availability(
            network, ("set",), SAMPLES, np.random.default_rng(7)
        )
        assert_agrees(
            estimate.availability,
            estimate.stderr,
            replica_set_availability(zones, quorum, replica_a, zone_a),
        )


class TestFarmCrossValidation:
    # Three farm shapes: single zone, wide two-zone, lossy three-zone.
    POINTS = [
        (1, 0.99, 4, 100.0, 100.0, 10),
        (2, 0.995, 2, 150.0, 100.0, 8),
        (3, 0.97, 2, 300.0, 100.0, 10),
    ]

    @pytest.mark.parametrize(
        "zones, zone_a, spz, arrival, service, buffer", POINTS
    )
    def test_sampled_farm_matches_closed_form(
        self, zones, zone_a, spz, arrival, service, buffer
    ):
        builder = CloudModelBuilder()
        names = [
            builder.add_zone(f"zone-{i + 1}", zone_a) for i in range(zones)
        ]
        builder.add_farm(
            "web",
            names,
            servers_per_zone=spz,
            arrival_rate=arrival,
            service_rate=service,
            buffer_capacity=buffer,
            failure_rate=1e-4,
            repair_rate=1.0,
        )
        network = builder.build()
        estimate = estimate_joint_availability(
            network, ("web",), SAMPLES, np.random.default_rng(11)
        )
        assert_agrees(
            estimate.availability,
            estimate.stderr,
            farm_availability(
                zones, zone_a, spz, arrival, service, buffer, 1e-4, 1.0
            ),
        )

    def test_sampled_common_cause_joint(self):
        # The farm AND a same-zoned replica set jointly: correlation
        # through the shared zones, not just the marginals.
        deployment = CloudDeployment(zone_availability=0.98)
        agency = CloudTravelAgency(deployment)
        network = agency.network
        estimate = estimate_joint_availability(
            network, ("web", "db"), SAMPLES, np.random.default_rng(13)
        )
        assert_agrees(
            estimate.availability,
            estimate.stderr,
            network.probability_all_up(("web", "db")),
        )


class TestChainCrossValidation:
    # Three (deployment, user class) points across both Table 1 classes.
    POINTS = [
        (CloudDeployment(zone_availability=0.99), CLASS_A),
        (CloudDeployment(zone_availability=0.99), CLASS_B),
        (
            CloudDeployment(
                zones=2,
                zone_availability=0.97,
                db_replicas=2,
                db_quorum=1,
                reservation_availability=0.98,
            ),
            CLASS_A,
        ),
    ]

    @pytest.mark.parametrize("deployment, user_class", POINTS)
    def test_replayed_sessions_match_eq10_composition(
        self, deployment, user_class
    ):
        agency = CloudTravelAgency(deployment)
        estimate = estimate_chain_user_availability(
            agency.network,
            CLOUD_CHAINS,
            user_class,
            SAMPLES,
            np.random.default_rng(17),
        )
        analytic = chain_user_availability(
            agency.network, CLOUD_CHAINS, user_class
        )
        assert_agrees(
            estimate.served_fraction, estimate.stderr, analytic.availability
        )


class TestSamplerContracts:
    def test_sampling_is_seed_deterministic(self):
        network = CloudTravelAgency().network
        a = sample_node_states(network, 500, np.random.default_rng(3))
        b = sample_node_states(network, 500, np.random.default_rng(3))
        assert sorted(a) == sorted(b)
        for name in a:
            np.testing.assert_array_equal(a[name], b[name])

    def test_child_respects_sampled_parents(self):
        # A replica can never be up while its zone is sampled down.
        builder = CloudModelBuilder()
        zone = builder.add_zone("zone-1", 0.5)
        builder.add_replica_set(
            "db", [zone, zone], quorum=1, replica_availability=0.9
        )
        states = sample_node_states(
            builder.build(), 4_000, np.random.default_rng(5)
        )
        down = ~states["zone-1"]
        assert down.any()
        assert not states["db-1"][down].any()
        assert not states["db"][down].any()
