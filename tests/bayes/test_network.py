"""The Bayesian-network core: construction, validation, exact inference.

Variable elimination is checked against the independent brute-force
enumeration oracle on seeded random networks, and the validation layer
is pinned to one-line errors naming the offending node, CPT row, or
cycle edge.
"""

import numpy as np
import pytest

from repro.bayes import BayesianNetwork
from repro.errors import ModelStructureError, ValidationError


def random_network(rng, nodes=7, edge_probability=0.5):
    """A random DAG over *nodes* binary nodes with random CPTs."""
    network = BayesianNetwork()
    names = [f"n{i}" for i in range(nodes)]
    for i, name in enumerate(names):
        parents = tuple(
            names[j] for j in range(i) if rng.random() < edge_probability
        )
        table = rng.random(1 << len(parents))
        network.add_node(name, parents=parents, cpt=tuple(table))
    return network, names


class TestConstruction:
    def test_root_accepts_plain_float(self):
        net = BayesianNetwork()
        net.add_node("a", cpt=0.99)
        assert net.node("a").table == (0.99,)

    def test_cpt_row_order_parents0_most_significant(self):
        net = BayesianNetwork()
        net.add_node("a", cpt=1.0)
        net.add_node("b", cpt=1.0)
        # Row index = (a << 1) | b: row 2 is a-up/b-down.
        net.add_node("c", parents=("a", "b"), cpt=(0.1, 0.2, 0.3, 0.4))
        node = net.node("c")
        assert node.table[2] == 0.3

    def test_mapping_cpt_matches_sequence_cpt(self):
        seq = BayesianNetwork()
        seq.add_node("a", cpt=0.9)
        seq.add_node("b", cpt=0.8)
        seq.add_node("c", parents=("a", "b"), cpt=(0.1, 0.2, 0.3, 0.4))
        mapped = BayesianNetwork()
        mapped.add_node("a", cpt=0.9)
        mapped.add_node("b", cpt=0.8)
        mapped.add_node(
            "c",
            parents=("a", "b"),
            cpt={
                (False, False): 0.1,
                (False, True): 0.2,
                (True, False): 0.3,
                (True, True): 0.4,
            },
        )
        assert mapped.node("c").table == seq.node("c").table
        assert mapped.marginal("c") == seq.marginal("c")

    def test_duplicate_node_rejected(self):
        net = BayesianNetwork()
        net.add_node("a", cpt=0.5)
        with pytest.raises(ValidationError, match="duplicate node 'a'"):
            net.add_node("a", cpt=0.5)

    def test_self_parent_rejected(self):
        net = BayesianNetwork()
        with pytest.raises(ValidationError, match="cannot be its own parent"):
            net.add_node("a", parents=("a",), cpt=(0.1, 0.9))

    def test_duplicate_parent_rejected(self):
        net = BayesianNetwork()
        net.add_node("z", cpt=0.9)
        with pytest.raises(ValidationError, match="duplicate parent"):
            net.add_node("a", parents=("z", "z"), cpt=(0.0, 0.1, 0.2, 0.3))

    def test_wrong_cpt_length_names_node_and_expected_rows(self):
        net = BayesianNetwork()
        net.add_node("z", cpt=0.9)
        with pytest.raises(
            ValidationError, match=r"node 'a' CPT must have 2 rows"
        ):
            net.add_node("a", parents=("z",), cpt=(0.1, 0.2, 0.3))

    def test_out_of_range_probability_names_node_and_row(self):
        net = BayesianNetwork()
        with pytest.raises(ValidationError, match=r"node 'a' CPT row 0"):
            net.add_node("a", cpt=1.5)

    def test_mapping_cpt_missing_row_rejected(self):
        net = BayesianNetwork()
        net.add_node("z", cpt=0.9)
        with pytest.raises(ValidationError, match="missing 1 of 2 rows"):
            net.add_node("a", parents=("z",), cpt={(True,): 0.5})

    def test_mapping_cpt_bad_key_rejected(self):
        net = BayesianNetwork()
        net.add_node("z", cpt=0.9)
        with pytest.raises(ValidationError, match="tuple of 1 booleans"):
            net.add_node("a", parents=("z",), cpt={(1,): 0.5, (0,): 0.1})


class TestStructureValidation:
    def test_undefined_parent_named(self):
        net = BayesianNetwork()
        net.add_node("a", parents=("ghost",), cpt=(0.1, 0.9))
        with pytest.raises(
            ModelStructureError,
            match="node 'a' references undefined parent 'ghost'",
        ):
            net.topological_order()

    def test_cycle_names_an_offending_edge(self):
        net = BayesianNetwork()
        net.add_node("a", parents=("c",), cpt=(0.1, 0.9))
        net.add_node("b", parents=("a",), cpt=(0.1, 0.9))
        net.add_node("c", parents=("b",), cpt=(0.1, 0.9))
        with pytest.raises(ModelStructureError) as excinfo:
            net.topological_order()
        message = str(excinfo.value)
        assert "dependency cycle through edge" in message
        # The named edge must be one that actually exists in the cycle.
        assert any(
            f"{parent!r} -> {child!r}" in message
            for parent, child in (("c", "a"), ("a", "b"), ("b", "c"))
        )

    def test_two_node_cycle_edge(self):
        net = BayesianNetwork()
        net.add_node("a", parents=("b",), cpt=(0.1, 0.9))
        net.add_node("b", parents=("a",), cpt=(0.1, 0.9))
        with pytest.raises(ModelStructureError, match="dependency cycle"):
            net.topological_order()

    def test_order_is_parents_first(self):
        rng = np.random.default_rng(7)
        net, _ = random_network(rng)
        order = net.topological_order()
        seen = set()
        for name in order:
            assert all(p in seen for p in net.node(name).parents)
            seen.add(name)

    def test_unknown_node_lookup_lists_known(self):
        net = BayesianNetwork()
        net.add_node("a", cpt=0.5)
        with pytest.raises(
            ValidationError, match=r"unknown node 'x'; known nodes: \['a'\]"
        ):
            net.node("x")


class TestFromSpec:
    SPEC = {
        "nodes": [
            {"name": "zone", "cpt": 0.99},
            {"name": "replica", "parents": ["zone"], "cpt": [0.0, 0.95]},
        ]
    }

    def test_round_trip(self):
        net = BayesianNetwork.from_spec(self.SPEC)
        assert net.nodes == ("zone", "replica")
        assert net.marginal("replica") == pytest.approx(0.99 * 0.95)

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(
            ValidationError, match=r"unknown network spec key\(s\) \['seed'\]"
        ):
            BayesianNetwork.from_spec({"nodes": [], "seed": 1})

    def test_unknown_node_key_rejected_naming_node(self):
        with pytest.raises(
            ValidationError, match=r"node 'zone': unknown key\(s\) \['zprob'\]"
        ):
            BayesianNetwork.from_spec(
                {"nodes": [{"name": "zone", "cpt": 0.99, "zprob": 1}]}
            )

    def test_missing_name_and_missing_cpt(self):
        with pytest.raises(ValidationError, match="missing 'name'"):
            BayesianNetwork.from_spec({"nodes": [{"cpt": 0.5}]})
        with pytest.raises(ValidationError, match="node 'a' is missing 'cpt'"):
            BayesianNetwork.from_spec({"nodes": [{"name": "a"}]})

    def test_structure_validated_eagerly(self):
        spec = {
            "nodes": [
                {"name": "a", "parents": ["b"], "cpt": [0.1, 0.9]},
                {"name": "b", "parents": ["a"], "cpt": [0.1, 0.9]},
            ]
        }
        with pytest.raises(ModelStructureError, match="dependency cycle"):
            BayesianNetwork.from_spec(spec)

    def test_non_mapping_spec_rejected(self):
        with pytest.raises(ValidationError, match="must be a mapping"):
            BayesianNetwork.from_spec([1, 2])


class TestInference:
    def test_independent_chain_is_product(self):
        net = BayesianNetwork()
        net.add_node("a", cpt=0.9)
        net.add_node("b", cpt=0.8)
        assert net.probability_all_up(("a", "b")) == pytest.approx(0.72)

    def test_marginal_sums_over_parent(self):
        net = BayesianNetwork()
        net.add_node("zone", cpt=0.99)
        net.add_node("replica", parents=("zone",), cpt=(0.0, 0.95))
        assert net.marginal("replica") == pytest.approx(0.99 * 0.95)

    def test_conditional_on_zone_down(self):
        net = BayesianNetwork()
        net.add_node("zone", cpt=0.99)
        net.add_node("replica", parents=("zone",), cpt=(0.0, 0.95))
        assert net.marginal("replica", evidence={"zone": False}) == 0.0
        assert net.marginal(
            "replica", evidence={"zone": True}
        ) == pytest.approx(0.95)

    def test_marginal_of_evidence_node_is_indicator(self):
        net = BayesianNetwork()
        net.add_node("a", cpt=0.5)
        net.add_node("b", cpt=0.5)
        assert net.marginal("a", evidence={"a": True, "b": True}) == 1.0
        assert net.marginal("a", evidence={"a": False, "b": True}) == 0.0

    def test_zero_probability_evidence_rejected(self):
        net = BayesianNetwork()
        net.add_node("zone", cpt=0.99)
        net.add_node("replica", parents=("zone",), cpt=(0.0, 1.0))
        net.add_node("other", cpt=0.5)
        with pytest.raises(ValidationError, match="probability zero"):
            net.marginal(
                "other", evidence={"zone": True, "replica": False}
            )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_variable_elimination_matches_enumeration(self, seed):
        rng = np.random.default_rng(seed)
        net, names = random_network(rng)
        for _ in range(8):
            chosen = [n for n in names if rng.random() < 0.5] or [names[0]]
            assignment = {n: bool(rng.integers(2)) for n in chosen}
            assert net.probability_of(assignment) == pytest.approx(
                net.brute_force_probability(assignment), abs=1e-12
            )

    def test_disconnected_components_are_independent(self):
        # Two disjoint sub-networks: the joint factors into the product.
        net = BayesianNetwork()
        net.add_node("a1", cpt=0.9)
        net.add_node("a2", parents=("a1",), cpt=(0.2, 0.95))
        net.add_node("b1", cpt=0.7)
        net.add_node("b2", parents=("b1",), cpt=(0.1, 0.8))
        joint = net.probability_of({"a2": True, "b2": True})
        assert joint == pytest.approx(
            net.marginal("a2") * net.marginal("b2"), abs=1e-12
        )
        assert joint == pytest.approx(
            net.brute_force_probability({"a2": True, "b2": True}), abs=1e-12
        )

    def test_isolated_root_does_not_disturb_query(self):
        net = BayesianNetwork()
        net.add_node("lonely", cpt=0.123)
        net.add_node("a", cpt=0.9)
        assert net.marginal("a") == pytest.approx(0.9, abs=1e-12)

    def test_deterministic_cpt_rows(self):
        # 0/1 rows (an AND gate) stay exact under elimination.
        net = BayesianNetwork()
        net.add_node("x", cpt=0.6)
        net.add_node("y", cpt=0.5)
        net.add_node("and", parents=("x", "y"), cpt=(0.0, 0.0, 0.0, 1.0))
        assert net.marginal("and") == pytest.approx(0.3, abs=1e-12)
        assert net.marginal("and", evidence={"x": False}) == 0.0
        assert net.marginal("x", evidence={"and": True}) == 1.0

    def test_deterministic_always_down_node(self):
        net = BayesianNetwork()
        net.add_node("dead", cpt=0.0)
        net.add_node("live", cpt=1.0)
        assert net.marginal("dead") == 0.0
        assert net.marginal("live") == 1.0
        assert net.probability_of({"dead": False, "live": True}) == 1.0

    def test_int_states_accepted_booleans_required_otherwise(self):
        net = BayesianNetwork()
        net.add_node("a", cpt=0.5)
        assert net.probability_of({"a": 1}) == pytest.approx(0.5)
        with pytest.raises(ValidationError, match="must be a boolean"):
            net.probability_of({"a": 0.5})

    def test_empty_assignment_rejected(self):
        net = BayesianNetwork()
        net.add_node("a", cpt=0.5)
        with pytest.raises(ValidationError, match="non-empty mapping"):
            net.probability_of({})
        with pytest.raises(ValidationError, match="at least one node"):
            net.probability_all_up(())

    def test_enumeration_guard(self):
        net = BayesianNetwork()
        for i in range(25):
            net.add_node(f"n{i}", cpt=0.5)
        with pytest.raises(ValidationError, match="capped at 24 nodes"):
            net.brute_force_probability({"n0": True})
