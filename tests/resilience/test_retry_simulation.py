"""DES retry simulation vs the closed-form retry model."""

import math

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.resilience import RetryPolicy, retry_adjusted_user_availability
from repro.sim import estimate_user_availability_with_retries
from repro.ta import CLASS_A, TravelAgencyModel

TA = TravelAgencyModel()
SESSIONS = 20_000


def simulate(policy, seed=13, sessions=SESSIONS):
    return estimate_user_availability_with_retries(
        TA.hierarchical_model, CLASS_A, policy, sessions,
        np.random.default_rng(seed),
    )


class TestAgreementWithClosedForm:
    def test_served_fraction_matches_within_monte_carlo_error(self):
        policy = RetryPolicy(max_retries=2, persistence=0.9, backoff_base=0.5)
        closed = retry_adjusted_user_availability(
            TA.hierarchical_model, CLASS_A, policy
        )
        result = simulate(policy)
        p = closed.adjusted_availability
        sigma = math.sqrt(p * (1.0 - p) / SESSIONS)
        assert result.served_fraction == pytest.approx(p, abs=4.0 * sigma)
        assert result.mean_attempts == pytest.approx(
            closed.expected_attempts, abs=0.02
        )
        assert result.abandoned_fraction == pytest.approx(
            closed.abandonment_probability, abs=0.005
        )

    def test_zero_retries_match_single_submission(self):
        policy = RetryPolicy(max_retries=0)
        closed = retry_adjusted_user_availability(
            TA.hierarchical_model, CLASS_A, policy
        )
        result = simulate(policy)
        assert result.mean_attempts == 1.0
        assert result.abandoned_fraction == 0.0
        assert result.served_fraction == pytest.approx(
            closed.availability, abs=0.01
        )


class TestSimulationMechanics:
    def test_fractions_partition_the_sessions(self):
        result = simulate(
            RetryPolicy(max_retries=3, persistence=0.7), sessions=5000
        )
        assert (
            result.served_fraction
            + result.abandoned_fraction
            + result.exhausted_fraction
        ) == pytest.approx(1.0, abs=1e-12)

    def test_backoff_accumulates_on_retried_successes(self):
        # With availability < 1 and persistent retries, some successes
        # happen on attempt >= 2 and carry a positive backoff delay.
        result = simulate(
            RetryPolicy(max_retries=3, backoff_base=2.0), sessions=5000
        )
        assert result.mean_success_delay > 0.0

    def test_reproducible_from_seed(self):
        policy = RetryPolicy(max_retries=2)
        a = simulate(policy, seed=99, sessions=2000)
        b = simulate(policy, seed=99, sessions=2000)
        assert a == b

    def test_rejects_zero_sessions(self):
        with pytest.raises(ValidationError):
            simulate(RetryPolicy(), sessions=0)
