"""Tests for the fault-injection campaign engine."""

import math

import pytest

from repro.errors import ValidationError
from repro.resilience import (
    NullScenario,
    RecurrentOutage,
    ScheduledOutage,
    run_campaign,
    run_campaigns,
)
from repro.ta import CLASS_A, CLASS_B, TravelAgencyModel

TA = TravelAgencyModel()


class TestRunCampaign:
    def test_null_campaign_agrees_with_analytic(self):
        result = run_campaign(
            TA.hierarchical_model, CLASS_A,
            horizon=4000.0, replications=4, seed=11,
        )
        assert result.scenario == "null"
        assert result.user_class == CLASS_A.name
        assert len(result.replications) == 4
        assert result.agrees_with_analytic(sigmas=3.0)

    def test_reproducible_from_seed(self):
        kwargs = dict(horizon=1000.0, replications=3, seed=42)
        first = run_campaign(TA.hierarchical_model, CLASS_A, **kwargs)
        second = run_campaign(TA.hierarchical_model, CLASS_A, **kwargs)
        assert first.values == second.values

    def test_different_seeds_give_different_values(self):
        a = run_campaign(TA.hierarchical_model, CLASS_A,
                         horizon=1000.0, replications=2, seed=1)
        b = run_campaign(TA.hierarchical_model, CLASS_A,
                         horizon=1000.0, replications=2, seed=2)
        assert a.values != b.values

    def test_scheduled_total_outage_shows_deterministic_drop(self):
        # internet-link is a common single point of failure: forcing it
        # down for 10% of the horizon costs ~0.1 availability.
        scenario = ScheduledOutage(
            frozenset({"internet-link"}), start=100.0, duration=100.0
        )
        result = run_campaign(
            TA.hierarchical_model, CLASS_A, scenario,
            horizon=1000.0, replications=3, seed=5,
        )
        assert result.availability_drop == pytest.approx(
            0.1 * result.analytic_availability, abs=0.02
        )
        assert result.mean_outage_fraction > 0.09

    def test_correlated_outage_breaks_independence_assumption(self):
        scenario = RecurrentOutage(
            frozenset({"lan-segment", "app-host-1", "app-host-2"}),
            episode_rate=0.02,
            mean_duration=5.0,
        )
        result = run_campaign(
            TA.hierarchical_model, CLASS_A, scenario,
            horizon=4000.0, replications=4, seed=9,
        )
        assert result.availability_drop > 0.02
        assert not result.agrees_with_analytic(sigmas=2.0)

    def test_single_replication_has_nan_stderr(self):
        result = run_campaign(
            TA.hierarchical_model, CLASS_A,
            horizon=500.0, replications=1, seed=0,
        )
        assert math.isnan(result.stderr)
        assert math.isnan(result.z_score)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValidationError):
            run_campaign(TA.hierarchical_model, CLASS_A, horizon=0.0)
        with pytest.raises(ValidationError):
            run_campaign(TA.hierarchical_model, CLASS_A, replications=0)


class TestRunCampaigns:
    def test_grid_covers_every_cell_with_distinct_seeds(self):
        results = run_campaigns(
            TA.hierarchical_model,
            (CLASS_A, CLASS_B),
            (NullScenario(),
             ScheduledOutage(frozenset({"internet-link"}), 10.0, 20.0)),
            horizon=500.0,
            replications=2,
            seed=100,
        )
        assert len(results) == 4
        keys = {(r.user_class, r.scenario) for r in results}
        assert keys == {
            (CLASS_A.name, "null"),
            (CLASS_A.name, "scheduled-outage"),
            (CLASS_B.name, "null"),
            (CLASS_B.name, "scheduled-outage"),
        }
        assert len({r.seed for r in results}) == 4
