"""Parallel fault-injection campaigns must be bit-identical to serial.

Replications already draw from per-replication ``SeedSequence`` streams,
so distributing them over worker processes must not change a single
drawn number; the engine assembles results by replication index.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.resilience import RecurrentOutage, run_campaign
from repro.ta import CLASS_A, CLASS_B, TravelAgencyModel

TA = TravelAgencyModel()


def _campaign(workers, **overrides):
    kwargs = dict(horizon=400.0, replications=3, seed=7, workers=workers)
    kwargs.update(overrides)
    return run_campaign(TA.hierarchical_model, CLASS_A, **kwargs)


class TestParallelEqualsSerial:
    def test_null_campaign_bit_identical(self):
        serial = _campaign(workers=1)
        parallel = _campaign(workers=2)
        # Tuple equality over floats: bit-identity, not statistics.
        assert parallel.values == serial.values
        assert parallel.replications == serial.replications
        assert parallel.scenario == serial.scenario

    def test_fault_scenario_bit_identical(self):
        scenario = RecurrentOutage(
            frozenset({"lan-segment"}), episode_rate=0.02, mean_duration=5.0
        )
        serial = _campaign(workers=1, scenario=scenario)
        parallel = _campaign(workers=2, scenario=scenario)
        assert parallel.values == serial.values

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        replications=st.integers(min_value=2, max_value=4),
        user_class=st.sampled_from([CLASS_A, CLASS_B]),
    )
    @settings(max_examples=5, deadline=None)
    def test_property_any_seed_and_size(self, seed, replications, user_class):
        kwargs = dict(horizon=250.0, replications=replications, seed=seed)
        serial = run_campaign(
            TA.hierarchical_model, user_class, workers=1, **kwargs
        )
        parallel = run_campaign(
            TA.hierarchical_model, user_class, workers=2, **kwargs
        )
        assert parallel.values == serial.values

    def test_more_workers_than_replications(self):
        serial = _campaign(workers=1, replications=2)
        parallel = _campaign(workers=8, replications=2)
        assert parallel.values == serial.values


class TestWorkersParameter:
    def test_invalid_workers_rejected(self):
        with pytest.raises(ValidationError):
            _campaign(workers=0)

    def test_single_replication_stays_serial(self):
        # One replication cannot be parallelized; no pool is paid for.
        serial = _campaign(workers=1, replications=1)
        parallel = _campaign(workers=4, replications=1)
        assert parallel.values == serial.values

    def test_streaming_observer_with_workers_rejected(self):
        # A streaming observer needs replications in timeline order,
        # which a worker pool cannot guarantee; the error says how to
        # fix the call and names the offending worker count.
        class Recorder:
            def interval(self, start, end, availability):
                pass

            def fault(self, time, event):
                pass

        with pytest.raises(ValidationError, match="workers=3") as excinfo:
            _campaign(workers=3, observer=Recorder())
        assert "workers=1" in str(excinfo.value)

    def test_streaming_observer_fine_with_single_worker(self):
        intervals = []

        class Recorder:
            def interval(self, start, end, availability):
                intervals.append((start, end, availability))

            def fault(self, time, event):
                pass

        result = _campaign(workers=1, observer=Recorder())
        assert intervals
        assert len(result.replications) == 3

    def test_parallel_campaign_journals_every_replication(self, tmp_path):
        from repro.runtime import read_journal

        path = tmp_path / "campaign.jsonl"
        result = _campaign(workers=2, journal=path)
        records = read_journal(path)
        kinds = [r["kind"] for r in records]
        assert kinds[0] == "campaign_start"
        assert kinds.count("replication") == len(result.replications)
        assert kinds[-1] == "campaign_end"
