"""Tests for the resilience report renderers."""

from repro.availability import WebServiceModel
from repro.resilience import (
    AdmitAll,
    ClassLoad,
    RetryPolicy,
    ShedClasses,
    compare_policies,
    format_campaign_table,
    format_policy_table,
    format_retry_table,
    run_campaign,
)
from repro.ta import CLASS_A, TravelAgencyModel


def test_campaign_table_renders_every_row():
    ta = TravelAgencyModel()
    result = run_campaign(
        ta.hierarchical_model, CLASS_A, horizon=500.0, replications=2, seed=0
    )
    text = format_campaign_table([result])
    assert "class A" in text
    assert "null" in text
    assert "analytic" in text
    assert "+/-" in text


def test_campaign_table_single_replication_shows_na():
    ta = TravelAgencyModel()
    result = run_campaign(
        ta.hierarchical_model, CLASS_A, horizon=500.0, replications=1, seed=0
    )
    assert "n/a" in format_campaign_table([result])


def test_retry_table_renders_policy_columns():
    ta = TravelAgencyModel()
    result = ta.retry_adjusted_availability(
        CLASS_A, RetryPolicy(max_retries=2, persistence=0.9)
    )
    text = format_retry_table([result])
    assert "class A" in text
    assert "A adjusted" in text
    assert "0.9" in text


def test_policy_table_lists_every_policy_class_pair():
    web = WebServiceModel(
        servers=2, arrival_rate=150.0, service_rate=100.0,
        buffer_capacity=8, failure_rate=1e-3, repair_rate=1.0,
    )
    loads = [ClassLoad("a", 100.0), ClassLoad("b", 50.0)]
    evaluations = compare_policies(
        web, loads, [AdmitAll(), ShedClasses(frozenset({"a"}), 2)]
    )
    text = format_policy_table(evaluations)
    assert text.count("admit-all") == 2
    assert text.count("shed-low-value") == 2
