"""Tests for the fault-scenario library."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.resilience import (
    CompositeScenario,
    NullScenario,
    RecurrentDegradation,
    RecurrentOutage,
    ScheduledOutage,
    ServiceDegradation,
)
from repro.ta import TravelAgencyModel

MODEL = TravelAgencyModel().hierarchical_model
HORIZON = 1000.0


def compiled(scenario, seed=1):
    return scenario.compile(MODEL, HORIZON, np.random.default_rng(seed))


class TestNullScenario:
    def test_compiles_to_nothing(self):
        assert compiled(NullScenario()) == []


class TestScheduledOutage:
    def test_produces_force_and_release_pair(self):
        scenario = ScheduledOutage(
            frozenset({"lan-segment"}), start=100.0, duration=25.0
        )
        events = compiled(scenario)
        assert len(events) == 2
        assert events[0].time == 100.0
        assert events[0].force_down == frozenset({"lan-segment"})
        assert events[1].time == 125.0
        assert events[1].release == frozenset({"lan-segment"})

    def test_outage_past_horizon_is_dropped(self):
        scenario = ScheduledOutage(
            frozenset({"lan-segment"}), start=2000.0, duration=10.0
        )
        assert compiled(scenario) == []

    def test_rejects_empty_resource_set(self):
        with pytest.raises(ValidationError):
            ScheduledOutage(frozenset(), start=0.0, duration=1.0)

    def test_rejects_zero_duration(self):
        with pytest.raises(ValidationError):
            ScheduledOutage(frozenset({"x"}), start=0.0, duration=0.0)


class TestRecurrentOutage:
    def test_events_pair_up_and_stay_reproducible(self):
        scenario = RecurrentOutage(
            frozenset({"lan-segment", "app-host-1"}),
            episode_rate=0.05,
            mean_duration=5.0,
        )
        events_a = compiled(scenario, seed=7)
        events_b = compiled(scenario, seed=7)
        assert events_a == events_b
        assert len(events_a) % 2 == 0
        assert len(events_a) > 0
        forces = events_a[0::2]
        releases = events_a[1::2]
        for force, release in zip(forces, releases):
            assert force.force_down == scenario.resources
            assert release.release == scenario.resources
            assert release.time > force.time

    def test_different_seeds_differ(self):
        scenario = RecurrentOutage(
            frozenset({"lan-segment"}), episode_rate=0.05, mean_duration=5.0
        )
        assert compiled(scenario, seed=1) != compiled(scenario, seed=2)

    def test_episode_onsets_stay_inside_horizon(self):
        scenario = RecurrentOutage(
            frozenset({"lan-segment"}), episode_rate=0.5, mean_duration=1.0
        )
        for event in compiled(scenario)[0::2]:
            assert event.time < HORIZON


class TestServiceDegradation:
    def test_sets_and_restores_the_factor(self):
        scenario = ServiceDegradation(
            "web", factor=0.7, start=10.0, duration=5.0
        )
        events = compiled(scenario)
        assert events[0].service_factors == {"web": 0.7}
        assert events[1].service_factors == {"web": 1.0}
        assert events[1].time == 15.0

    def test_rejects_factor_above_one(self):
        with pytest.raises(ValidationError):
            ServiceDegradation("web", factor=1.2, start=0.0, duration=1.0)


class TestRecurrentDegradation:
    def test_windows_never_overlap(self):
        scenario = RecurrentDegradation(
            "web", factor=0.5, episode_rate=0.2, mean_duration=10.0
        )
        events = compiled(scenario, seed=3)
        times = [event.time for event in events]
        assert times == sorted(times)
        # Alternating set/restore: factors toggle 0.5, 1.0, 0.5, ...
        factors = [event.service_factors["web"] for event in events]
        assert factors[0::2] == [0.5] * len(factors[0::2])
        assert factors[1::2] == [1.0] * len(factors[1::2])


class TestComposition:
    def test_plus_concatenates_timelines(self):
        a = ScheduledOutage(frozenset({"lan-segment"}), start=10.0,
                            duration=5.0)
        b = ServiceDegradation("web", factor=0.9, start=50.0, duration=5.0)
        combined = a + b
        assert isinstance(combined, CompositeScenario)
        events = compiled(combined)
        assert len(events) == 4

    def test_plus_flattens_nested_composites(self):
        a = ScheduledOutage(frozenset({"a"}), start=1.0, duration=1.0)
        b = ScheduledOutage(frozenset({"b"}), start=2.0, duration=1.0)
        c = ScheduledOutage(frozenset({"c"}), start=3.0, duration=1.0)
        combined = (a + b) + c
        assert len(combined.parts) == 3

    def test_empty_composite_rejected(self):
        with pytest.raises(ValidationError):
            CompositeScenario(parts=())
