"""Tests for admission-control graceful-degradation policies."""

import pytest

from repro.availability import WebServiceModel
from repro.errors import ValidationError
from repro.resilience import (
    AdmitAll,
    ClassLoad,
    ShedClasses,
    compare_policies,
    conditional_class_availability,
    degraded_service_factor,
    evaluate_policy,
)


def farm(**overrides):
    config = dict(
        servers=4,
        arrival_rate=350.0,
        service_rate=100.0,
        buffer_capacity=10,
        failure_rate=1e-2,
        repair_rate=1.0,
        coverage=0.98,
        reconfiguration_rate=12.0,
    )
    config.update(overrides)
    return WebServiceModel(**config)


LOADS = [
    ClassLoad("low", 250.0, value=1.0),
    ClassLoad("high", 100.0, value=5.0),
]


class TestClassLoad:
    def test_rejects_empty_name(self):
        with pytest.raises(ValidationError):
            ClassLoad("", 1.0)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValidationError):
            ClassLoad("x", 0.0)


class TestPolicies:
    def test_admit_all_admits_everywhere(self):
        policy = AdmitAll()
        assert policy.admits("anything", 0)
        assert policy.admits("anything", 4)

    def test_shedding_triggers_below_threshold(self):
        policy = ShedClasses(frozenset({"low"}), below_servers=3)
        assert not policy.admits("low", 2)
        assert policy.admits("low", 3)
        assert policy.admits("high", 1)

    def test_rejects_empty_shed_set(self):
        with pytest.raises(ValidationError):
            ShedClasses(frozenset(), below_servers=2)


class TestConditionalAvailability:
    def test_zero_servers_serve_nobody(self):
        result = conditional_class_availability(farm(), LOADS, AdmitAll(), 0)
        assert result == {"low": 0.0, "high": 0.0}

    def test_shed_class_gets_zero_and_kept_class_improves(self):
        web = farm()
        policy = ShedClasses(frozenset({"low"}), below_servers=3)
        admit_all = conditional_class_availability(web, LOADS, AdmitAll(), 1)
        shedding = conditional_class_availability(web, LOADS, policy, 1)
        assert shedding["low"] == 0.0
        assert shedding["high"] > admit_all["high"]

    def test_full_farm_is_unaffected_by_shedding(self):
        web = farm()
        policy = ShedClasses(frozenset({"low"}), below_servers=3)
        assert conditional_class_availability(
            web, LOADS, policy, web.servers
        ) == conditional_class_availability(
            web, LOADS, AdmitAll(), web.servers
        )


class TestEvaluatePolicy:
    def test_admit_all_classes_share_one_availability(self):
        evaluation = evaluate_policy(farm(), LOADS, AdmitAll())
        assert evaluation.class_availability["low"] == pytest.approx(
            evaluation.class_availability["high"], abs=1e-15
        )
        assert 0.0 < evaluation.served_fraction <= 1.0

    def test_shedding_trades_low_for_high(self):
        admit_all, shedding = compare_policies(
            farm(), LOADS,
            [AdmitAll(), ShedClasses(frozenset({"low"}), below_servers=3)],
        )
        assert (
            shedding.class_availability["high"]
            > admit_all.class_availability["high"]
        )
        assert (
            shedding.class_availability["low"]
            < admit_all.class_availability["low"]
        )

    def test_value_rate_reflects_class_values(self):
        evaluation = evaluate_policy(farm(), LOADS, AdmitAll())
        expected = sum(
            load.value * load.arrival_rate
            * evaluation.class_availability[load.name]
            for load in LOADS
        )
        assert evaluation.value_rate == pytest.approx(expected, abs=1e-9)

    def test_rejects_duplicate_class_names(self):
        with pytest.raises(ValidationError, match="duplicate"):
            evaluate_policy(
                farm(), [ClassLoad("x", 1.0), ClassLoad("x", 2.0)], AdmitAll()
            )

    def test_rejects_empty_load_list(self):
        with pytest.raises(ValidationError):
            evaluate_policy(farm(), [], AdmitAll())


class TestUnknownClassNames:
    def test_evaluate_policy_names_the_unknown_class(self):
        policy = ShedClasses(frozenset({"lwo"}), below_servers=3)  # typo
        with pytest.raises(ValidationError, match="'lwo'"):
            evaluate_policy(farm(), LOADS, policy)

    def test_conditional_availability_names_the_unknown_class(self):
        policy = ShedClasses(frozenset({"bronze"}), below_servers=3)
        with pytest.raises(ValidationError, match="'bronze'") as excinfo:
            conditional_class_availability(farm(), LOADS, policy, 2)
        # The message also lists what classes *are* offered.
        assert "high" in str(excinfo.value)
        assert "low" in str(excinfo.value)

    def test_every_unknown_class_is_reported(self):
        policy = ShedClasses(frozenset({"ghost", "low"}), below_servers=3)
        with pytest.raises(ValidationError, match="ghost"):
            evaluate_policy(farm(), LOADS, policy)

    def test_known_classes_still_accepted(self):
        policy = ShedClasses(frozenset({"low"}), below_servers=3)
        evaluation = evaluate_policy(farm(), LOADS, policy)
        assert evaluation.policy == "shed-low-value"

    def test_referenced_classes_default_is_empty(self):
        assert AdmitAll().referenced_classes() == frozenset()
        policy = ShedClasses(frozenset({"a", "b"}), below_servers=1)
        assert policy.referenced_classes() == frozenset({"a", "b"})


class TestDegradedServiceFactor:
    def test_full_capacity_factor_is_one(self):
        assert degraded_service_factor(farm()) == pytest.approx(1.0)

    def test_fewer_servers_reduce_the_factor(self):
        web = farm()
        factors = [
            degraded_service_factor(web, servers_up=c)
            for c in range(web.servers, 0, -1)
        ]
        assert all(0.0 < f <= 1.0 for f in factors)
        assert factors == sorted(factors, reverse=True)

    def test_zero_servers_is_a_hard_outage(self):
        assert degraded_service_factor(farm(), servers_up=0) == 0.0

    def test_inflated_arrival_rate_reduces_the_factor(self):
        web = farm()
        assert degraded_service_factor(
            web, arrival_rate=2.0 * web.arrival_rate
        ) < 1.0
