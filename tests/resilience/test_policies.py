"""Tests for client-side resilience policies (repro.resilience.policies)."""

import math

import numpy as np
import pytest

from repro.engine import EvaluationEngine, TaskGraph, client_policy_task
from repro.errors import ValidationError
from repro.queueing import MMCKQueue
from repro.queueing.responsetime import response_time_survival
from repro.resilience import (
    CircuitBreakerPolicy,
    FarmFaultScenario,
    HedgePolicy,
    RetryPolicy,
    TimeoutPolicy,
    circuit_breaker_availability,
    circuit_breaker_chain,
    compare_client_policies,
    evaluate_policy_cell,
    format_policy_comparison,
    policy_label,
    request_policy_availability,
    session_outcome,
)

FARM = dict(arrival_rate=350.0, service_rate=100.0, servers=4, capacity=10)


class TestCircuitBreakerPolicy:
    def test_defaults_probe_at_request_rate(self):
        policy = CircuitBreakerPolicy(failure_threshold=3, reset_timeout=10.0)
        assert policy.probe_rate == policy.request_rate

    def test_rejects_zero_threshold(self):
        with pytest.raises(ValidationError, match="failure_threshold"):
            CircuitBreakerPolicy(failure_threshold=0, reset_timeout=1.0)

    def test_rejects_nonpositive_reset(self):
        with pytest.raises(ValidationError, match="reset_timeout"):
            CircuitBreakerPolicy(failure_threshold=1, reset_timeout=0.0)

    def test_rejects_probe_rate_above_request_rate(self):
        with pytest.raises(ValidationError, match="probe_rate"):
            CircuitBreakerPolicy(
                failure_threshold=1, reset_timeout=1.0,
                request_rate=1.0, probe_rate=2.0,
            )


class TestCircuitBreakerChain:
    def test_state_space(self):
        chain = circuit_breaker_chain(
            0.5, CircuitBreakerPolicy(failure_threshold=3, reset_timeout=2.0)
        )
        assert len(chain.states) == 5  # 3 closed streaks + open + half-open
        assert "open" in chain.states
        assert "half-open" in chain.states

    def test_boundary_availability_rejected(self):
        policy = CircuitBreakerPolicy(failure_threshold=2, reset_timeout=1.0)
        for a in (0.0, 1.0):
            with pytest.raises(ValidationError, match="availability"):
                circuit_breaker_chain(a, policy)

    def test_matches_hand_derived_threshold_one_closed_form(self):
        # f = 1: three states C, O, H.  Solve the balance equations
        # directly and compare against the CTMC route.
        a, lam, reset, probe = 0.7, 2.0, 5.0, 2.0
        policy = CircuitBreakerPolicy(
            failure_threshold=1, reset_timeout=reset, request_rate=lam,
        )
        q = np.zeros((3, 3))
        q[0, 1] = lam * (1 - a)          # C -> O on a failure
        q[1, 2] = 1.0 / reset            # O -> H on the reset timer
        q[2, 0] = probe * a              # H -> C on a successful probe
        q[2, 1] = probe * (1 - a)        # H -> O on a failed probe
        for i in range(3):
            q[i, i] = -q[i].sum()
        pi = np.linalg.lstsq(
            np.vstack([q.T, np.ones(3)]),
            np.array([0.0, 0.0, 0.0, 1.0]),
            rcond=None,
        )[0]
        expected = a * (pi[0] + (probe / lam) * pi[2])
        result = circuit_breaker_availability(a, policy)
        assert result.availability == pytest.approx(expected, abs=1e-12)
        assert result.open_probability == pytest.approx(pi[1], abs=1e-12)


class TestCircuitBreakerAvailability:
    def test_perfect_service_never_trips(self):
        result = circuit_breaker_availability(
            1.0, CircuitBreakerPolicy(failure_threshold=1, reset_timeout=1.0)
        )
        assert result.availability == 1.0
        assert result.closed_probability == 1.0
        assert result.short_circuit_probability == 0.0

    def test_dead_service_cycles_open_and_half_open(self):
        policy = CircuitBreakerPolicy(
            failure_threshold=3, reset_timeout=4.0, request_rate=1.0
        )
        result = circuit_breaker_availability(0.0, policy)
        assert result.availability == 0.0
        assert result.closed_probability == 0.0
        # Open/half-open occupancy: mean sojourns 4.0 and 1/probe = 1.0.
        assert result.open_probability == pytest.approx(4.0 / 5.0)
        assert result.half_open_probability == pytest.approx(1.0 / 5.0)
        # Full probing: every half-open demand is a probe, so only the
        # open state short-circuits.
        assert result.short_circuit_probability == pytest.approx(4.0 / 5.0)

    def test_healthy_service_costs_little(self):
        result = circuit_breaker_availability(
            0.999,
            CircuitBreakerPolicy(failure_threshold=3, reset_timeout=30.0),
        )
        assert result.availability > 0.998
        assert result.protection_cost >= 0.0

    def test_availability_never_exceeds_attempt_availability(self):
        policy = CircuitBreakerPolicy(failure_threshold=2, reset_timeout=5.0)
        for a in (0.1, 0.4, 0.75, 0.95, 0.999):
            result = circuit_breaker_availability(a, policy)
            assert 0.0 <= result.availability <= a + 1e-12
            assert result.protection_cost >= -1e-12

    def test_occupancies_sum_to_one(self):
        result = circuit_breaker_availability(
            0.6,
            CircuitBreakerPolicy(
                failure_threshold=4, reset_timeout=2.0,
                request_rate=3.0, probe_rate=1.0,
            ),
        )
        total = (
            result.closed_probability
            + result.open_probability
            + result.half_open_probability
        )
        assert total == pytest.approx(1.0, abs=1e-12)

    def test_longer_reset_timeout_hurts_when_service_is_healthy(self):
        # A breaker that stays open longer short-circuits more of the
        # demand that would have succeeded.
        a = 0.9
        quick = circuit_breaker_availability(
            a, CircuitBreakerPolicy(failure_threshold=2, reset_timeout=1.0)
        )
        slow = circuit_breaker_availability(
            a, CircuitBreakerPolicy(failure_threshold=2, reset_timeout=50.0)
        )
        assert quick.availability > slow.availability


class TestRequestPolicyValidation:
    def test_timeout_policy_rejects_nonpositive_timeout(self):
        with pytest.raises(ValidationError, match="timeout"):
            TimeoutPolicy(0.0)

    def test_hedge_rejects_delay_at_or_beyond_timeout(self):
        with pytest.raises(ValidationError, match="hedge_delay"):
            HedgePolicy(timeout=0.05, hedge_delay=0.05)

    def test_rejects_unknown_policy_object(self):
        queue = MMCKQueue(**FARM)
        with pytest.raises(ValidationError, match="policy"):
            request_policy_availability(queue, object())


class TestTimeoutAvailability:
    def test_matches_survival_closed_form(self):
        queue = MMCKQueue(**FARM)
        tau = 0.04
        result = request_policy_availability(queue, TimeoutPolicy(tau))
        expected = (1.0 - queue.blocking_probability()) * (
            1.0 - response_time_survival(queue, tau)
        )
        assert result.availability == pytest.approx(expected, abs=1e-12)
        assert result.hedge_probability == 0.0
        assert result.effective_arrival_rate == queue.arrival_rate

    def test_attempt_availability_scales_linearly(self):
        queue = MMCKQueue(**FARM)
        full = request_policy_availability(queue, TimeoutPolicy(0.05))
        half = request_policy_availability(
            queue, TimeoutPolicy(0.05), attempt_availability=0.5
        )
        assert half.availability == pytest.approx(
            0.5 * full.availability, abs=1e-12
        )

    def test_monotone_in_timeout(self):
        queue = MMCKQueue(**FARM)
        values = [
            request_policy_availability(queue, TimeoutPolicy(t)).availability
            for t in (0.01, 0.02, 0.05, 0.1, 0.5)
        ]
        assert values == sorted(values)
        assert values[-1] <= 1.0 - queue.blocking_probability() + 1e-12


class TestHedgeAvailability:
    def test_hedging_beats_plain_timeout_on_a_provisioned_farm(self):
        queue = MMCKQueue(
            arrival_rate=100.0, service_rate=100.0, servers=4, capacity=10
        )
        plain = request_policy_availability(queue, TimeoutPolicy(0.05))
        hedged = request_policy_availability(queue, HedgePolicy(0.05, 0.01))
        assert hedged.availability > plain.availability

    def test_load_feedback_inflates_the_arrival_rate(self):
        queue = MMCKQueue(**FARM)
        result = request_policy_availability(queue, HedgePolicy(0.05, 0.01))
        assert queue.arrival_rate < result.effective_arrival_rate
        assert result.effective_arrival_rate <= 2.0 * queue.arrival_rate
        assert result.iterations >= 1
        # The fixed point is self-consistent: re-deriving the hedge
        # probability from the effective queue reproduces the rate.
        loaded = result.effective_queue(queue)
        blocking = loaded.blocking_probability()
        w = blocking + (1.0 - blocking) * response_time_survival(
            loaded, 0.01
        )
        assert result.effective_arrival_rate == pytest.approx(
            queue.arrival_rate * (1.0 + w), rel=1e-9
        )

    def test_small_blocking_limit_is_min_of_two_response_times(self):
        # With a huge buffer and light load pK ~ 0 and feedback is
        # negligible, so A -> 1 - S(tau) S(tau - d).
        queue = MMCKQueue(
            arrival_rate=10.0, service_rate=100.0, servers=4, capacity=400
        )
        tau, d = 0.05, 0.02
        result = request_policy_availability(queue, HedgePolicy(tau, d))
        s_tau = response_time_survival(queue, tau)
        s_gap = response_time_survival(queue, tau - d)
        assert result.availability == pytest.approx(
            1.0 - s_tau * s_gap, abs=1e-3
        )

    def test_hedging_backfires_on_a_saturated_single_server(self):
        # The feedback doubles load on an already saturated farm —
        # hedging then *loses* to the plain timeout.
        queue = MMCKQueue(
            arrival_rate=100.0, service_rate=100.0, servers=1, capacity=10
        )
        plain = request_policy_availability(queue, TimeoutPolicy(0.05))
        hedged = request_policy_availability(queue, HedgePolicy(0.05, 0.02))
        assert hedged.availability < plain.availability


class TestPolicyLabel:
    def test_labels_are_distinct_and_stable(self):
        labels = [
            policy_label(RetryPolicy(max_retries=2)),
            policy_label(
                CircuitBreakerPolicy(failure_threshold=3, reset_timeout=30.0)
            ),
            policy_label(TimeoutPolicy(0.05)),
            policy_label(HedgePolicy(0.05, 0.02)),
        ]
        assert len(set(labels)) == 4
        assert labels[0] == "retry(k=2, p=1)"
        assert labels[3] == "hedge(t=0.05, d=0.02)"

    def test_rejects_unsupported_type(self):
        with pytest.raises(ValidationError, match="policy"):
            policy_label("not a policy")


class TestFarmFaultScenario:
    def test_rejects_empty_name(self):
        with pytest.raises(ValidationError):
            FarmFaultScenario("", servers_up=1)

    def test_rejects_fractional_servers(self):
        with pytest.raises(ValidationError, match="servers_up"):
            FarmFaultScenario("x", servers_up=1.5)

    def test_rejects_bad_service_availability(self):
        with pytest.raises(ValidationError, match="service_availability"):
            FarmFaultScenario("x", servers_up=1, service_availability=1.5)


class TestEvaluatePolicyCell:
    def test_total_outage_zeroes_every_policy(self):
        scenario = FarmFaultScenario("outage", servers_up=0)
        for policy in (
            RetryPolicy(max_retries=5),
            CircuitBreakerPolicy(failure_threshold=2, reset_timeout=1.0),
            TimeoutPolicy(0.05),
            HedgePolicy(0.05, 0.01),
        ):
            cell = evaluate_policy_cell(
                policy, scenario, 100.0, 100.0, 10
            )
            assert cell.availability == 0.0
            assert cell.attempt_availability == 0.0

    def test_retry_cell_matches_session_outcome(self):
        scenario = FarmFaultScenario(
            "degraded", servers_up=2, service_availability=0.95
        )
        policy = RetryPolicy(max_retries=2)
        cell = evaluate_policy_cell(policy, scenario, 100.0, 100.0, 10)
        queue = MMCKQueue(
            arrival_rate=100.0, service_rate=100.0, servers=2, capacity=10
        )
        attempt = (1.0 - queue.blocking_probability()) * 0.95
        assert cell.attempt_availability == pytest.approx(attempt)
        assert cell.availability == pytest.approx(
            session_outcome(attempt, policy).served
        )

    def test_capacity_never_shrinks_below_servers(self):
        # servers_up above the nominal capacity must still be a valid
        # M/M/c/K (K >= c).
        cell = evaluate_policy_cell(
            TimeoutPolicy(0.05),
            FarmFaultScenario("big", servers_up=20),
            100.0, 100.0, 10,
        )
        assert 0.0 < cell.availability <= 1.0


class TestCompareClientPolicies:
    POLICIES = [
        RetryPolicy(max_retries=3),
        CircuitBreakerPolicy(failure_threshold=3, reset_timeout=30.0),
        TimeoutPolicy(0.05),
        HedgePolicy(0.05, 0.02),
    ]
    SCENARIOS = [
        FarmFaultScenario("nominal", servers_up=4, weight=0.7),
        FarmFaultScenario(
            "degraded", servers_up=2, service_availability=0.95, weight=0.2
        ),
        FarmFaultScenario(
            "critical", servers_up=1, service_availability=0.9, weight=0.1
        ),
    ]

    def run(self, engine=None):
        return compare_client_policies(
            self.POLICIES, self.SCENARIOS,
            arrival_rate=100.0, service_rate=100.0, capacity=10,
            engine=engine,
        )

    def test_grid_is_complete_and_ranked(self):
        report = self.run()
        assert len(report.cells) == 12
        assert len(report.ranking) == 4
        means = [r.mean_availability for r in report.ranking]
        assert means == sorted(means, reverse=True)
        # Weighted mean recomputes from the cells.
        top = report.ranking[0]
        cells = [c for c in report.cells if c.policy == top.policy]
        weights = {s.name: s.weight for s in self.SCENARIOS}
        expected = sum(
            weights[c.scenario] * c.availability for c in cells
        ) / sum(weights.values())
        assert top.mean_availability == pytest.approx(expected, abs=1e-12)

    def test_persistent_retry_wins_this_grid(self):
        report = self.run()
        assert report.best.policy == "retry(k=3, p=1)"
        assert report.best.worst_scenario == "critical"

    def test_cell_lookup(self):
        report = self.run()
        cell = report.cell("timeout(t=0.05)", "nominal")
        assert cell.scenario == "nominal"
        with pytest.raises(ValidationError, match="no cell"):
            report.cell("timeout(t=0.05)", "nope")

    def test_parallel_engine_is_bit_identical(self):
        serial = self.run()
        parallel = self.run(EvaluationEngine(workers=2))
        assert serial == parallel

    def test_warm_cache_skips_every_cell(self):
        engine = EvaluationEngine()
        first = self.run(engine)
        again = self.run(engine)
        assert first == again
        assert engine.cache.stats.hits >= 12

    def test_rejects_empty_and_duplicate_inputs(self):
        with pytest.raises(ValidationError, match="policy"):
            compare_client_policies(
                [], self.SCENARIOS, arrival_rate=1.0, service_rate=1.0,
                capacity=5,
            )
        with pytest.raises(ValidationError, match="duplicate"):
            compare_client_policies(
                [TimeoutPolicy(0.05), TimeoutPolicy(0.05)],
                self.SCENARIOS,
                arrival_rate=1.0, service_rate=1.0, capacity=5,
            )
        with pytest.raises(ValidationError, match="duplicate"):
            compare_client_policies(
                self.POLICIES,
                [
                    FarmFaultScenario("x", servers_up=1),
                    FarmFaultScenario("x", servers_up=2),
                ],
                arrival_rate=1.0, service_rate=1.0, capacity=5,
            )

    def test_report_renders(self):
        text = format_policy_comparison(self.run())
        assert "Client-policy ranking" in text
        assert "Policy x scenario cells" in text
        assert "retry(k=3, p=1)" in text


class TestClientPolicyTask:
    def test_key_covers_the_full_spec(self):
        graph = TaskGraph()
        scenario = FarmFaultScenario("s", servers_up=2)
        a = client_policy_task(
            graph, "a", TimeoutPolicy(0.05), scenario,
            arrival_rate=100.0, service_rate=100.0, capacity=10,
        )
        b = client_policy_task(
            graph, "b", TimeoutPolicy(0.06), scenario,
            arrival_rate=100.0, service_rate=100.0, capacity=10,
        )
        c = client_policy_task(
            graph, "c", TimeoutPolicy(0.05), scenario,
            arrival_rate=200.0, service_rate=100.0, capacity=10,
        )
        assert a.key is not None
        assert len({a.key, b.key, c.key}) == 3

    def test_identical_specs_share_a_key(self):
        graph = TaskGraph()
        scenario = FarmFaultScenario("s", servers_up=2)
        a = client_policy_task(
            graph, "a", HedgePolicy(0.05, 0.01), scenario,
            arrival_rate=100.0, service_rate=100.0, capacity=10,
        )
        b = client_policy_task(
            graph, "b", HedgePolicy(0.05, 0.01), scenario,
            arrival_rate=100.0, service_rate=100.0, capacity=10,
        )
        assert a.key == b.key
