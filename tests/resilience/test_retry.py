"""Tests for the closed-form retry/abandonment model."""

import math

import pytest

from repro.errors import ValidationError
from repro.resilience import (
    RetryPolicy,
    retry_adjusted_user_availability,
    session_outcome,
)
from repro.ta import CLASS_A, CLASS_B, TravelAgencyModel


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_retries == 3
        assert policy.persistence == 1.0

    def test_backoff_schedule(self):
        policy = RetryPolicy(backoff_base=0.5, backoff_factor=2.0)
        assert [policy.backoff_delay(i) for i in range(4)] == [
            0.5, 1.0, 2.0, 4.0,
        ]

    def test_backoff_cap(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=10.0,
                             backoff_cap=5.0)
        assert policy.backoff_delay(3) == 5.0

    def test_rejects_negative_retries(self):
        with pytest.raises(ValidationError):
            RetryPolicy(max_retries=-1)

    def test_rejects_bad_persistence(self):
        with pytest.raises(ValidationError):
            RetryPolicy(persistence=1.5)

    def test_rejects_shrinking_backoff(self):
        with pytest.raises(ValidationError):
            RetryPolicy(backoff_factor=0.5)

    def test_infinite_cap_is_allowed(self):
        assert RetryPolicy(backoff_cap=math.inf).backoff_delay(10) > 1000.0


class TestSessionOutcome:
    def test_outcomes_sum_to_one(self):
        for a in (0.0, 0.3, 0.9, 0.999, 1.0):
            for p in (0.0, 0.5, 1.0):
                for k in (0, 1, 5):
                    out = session_outcome(a, RetryPolicy(max_retries=k,
                                                         persistence=p))
                    assert out.served + out.abandoned + out.exhausted == (
                        pytest.approx(1.0, abs=1e-12)
                    )

    def test_zero_retries_reproduce_single_submission(self):
        out = session_outcome(0.97, RetryPolicy(max_retries=0))
        assert out.served == pytest.approx(0.97)
        assert out.expected_attempts == 1.0

    def test_monotone_in_retry_budget(self):
        served = [
            session_outcome(0.8, RetryPolicy(max_retries=k)).served
            for k in range(6)
        ]
        assert served == sorted(served)

    def test_persistent_retries_approach_one(self):
        out = session_outcome(0.5, RetryPolicy(max_retries=40))
        assert out.served == pytest.approx(1.0, abs=1e-12)

    def test_zero_availability_full_persistence_always_exhausts(self):
        out = session_outcome(0.0, RetryPolicy(max_retries=3, persistence=1.0))
        assert out.served == 0.0
        assert out.exhausted == 1.0
        assert out.expected_attempts == 4.0

    def test_abandonment_splits_the_failure_mass(self):
        out = session_outcome(0.8, RetryPolicy(max_retries=2, persistence=0.5))
        # Explicit enumeration: fail(0.2) then abandon(0.5) -> 0.1; etc.
        assert out.abandoned == pytest.approx(
            0.2 * 0.5 + 0.2 * 0.5 * 0.2 * 0.5, abs=1e-12
        )

    def test_expected_attempts_geometric(self):
        out = session_outcome(0.75, RetryPolicy(max_retries=10**3))
        # q = 0.25; expected attempts -> 1/(1-q)
        assert out.expected_attempts == pytest.approx(1.0 / 0.75, abs=1e-9)


class TestRetryAdjustedUserAvailability:
    def test_zero_retries_equal_eq_10(self):
        ta = TravelAgencyModel()
        for users in (CLASS_A, CLASS_B):
            result = ta.retry_adjusted_availability(
                users, RetryPolicy(max_retries=0)
            )
            assert result.adjusted_availability == pytest.approx(
                result.availability, abs=1e-15
            )

    def test_improvement_is_nonnegative_and_monotone(self):
        ta = TravelAgencyModel()
        values = [
            ta.retry_adjusted_availability(
                CLASS_A, RetryPolicy(max_retries=k)
            ).adjusted_availability
            for k in range(5)
        ]
        assert values == sorted(values)
        assert values[-1] > values[0]

    def test_per_scenario_weights_recompose_the_total(self):
        ta = TravelAgencyModel()
        result = ta.retry_adjusted_availability(CLASS_B, RetryPolicy())
        total = sum(
            item.scenario.probability * item.outcome.served
            for item in result.per_scenario
        )
        assert result.adjusted_availability == pytest.approx(total, abs=1e-15)

    def test_facade_and_module_function_agree(self):
        ta = TravelAgencyModel()
        policy = RetryPolicy(max_retries=2, persistence=0.8)
        direct = retry_adjusted_user_availability(
            ta.hierarchical_model, CLASS_A, policy
        )
        via_facade = ta.retry_adjusted_availability(CLASS_A, policy)
        assert direct.adjusted_availability == pytest.approx(
            via_facade.adjusted_availability, abs=1e-15
        )

    def test_sweep_with_retries_has_dominating_column(self):
        ta = TravelAgencyModel()
        sweep = ta.reservation_sweep_with_retries(
            CLASS_A, (1, 3, 5), RetryPolicy(max_retries=2)
        )
        for _n, base, adjusted in sweep:
            assert adjusted > base
        bases = [base for _n, base, _adj in sweep]
        assert bases == sorted(bases)
