"""Cross-model integration tests.

The same systems are modeled through several independent routes — closed
forms, the generic CTMC solver, reliability block diagrams, fault trees,
stochastic Petri nets, the hierarchical engine and Monte-Carlo
simulation — and the answers must agree.  Any transcription error in one
layer breaks one of these equalities.
"""

import numpy as np
import pytest

from repro.availability import ImperfectCoverageFarm, WebServiceModel
from repro.faulttree import from_rbd, top_event_probability
from repro.markov import MarkovRewardModel
from repro.rbd import parallel, series, system_availability
from repro.spn import SPNAnalysis, StochasticPetriNet
from repro.ta import CLASS_A, CLASS_B, TAParameters, TravelAgencyModel


class TestSearchFunctionFourWays:
    """The TA Search function evaluated via RBD, fault tree and engine."""

    @pytest.fixture(scope="class")
    def pieces(self):
        params = TAParameters()
        ta = TravelAgencyModel(params)
        services = ta.service_availabilities()
        block = series("net", "lan", "web", "application", "database",
                       "flight", "hotel", "car")
        return ta, services, block

    def test_rbd_matches_engine(self, pieces):
        ta, services, block = pieces
        rbd_value = system_availability(block, services)
        assert ta.hierarchical_model.function_availability("search") == (
            pytest.approx(rbd_value, rel=1e-12)
        )

    def test_fault_tree_matches_rbd(self, pieces):
        _, services, block = pieces
        tree = from_rbd(block)
        failure = top_event_probability(
            tree, {k: 1 - v for k, v in services.items()}
        )
        assert failure == pytest.approx(
            1 - system_availability(block, services), abs=1e-12
        )


class TestFarmFourWays:
    """The Fig. 10 farm via closed forms, CTMC, SPN and simulation."""

    CONFIG = dict(
        servers=3, failure_rate=0.02, repair_rate=1.0,
        coverage=0.95, reconfiguration_rate=6.0,
    )

    @pytest.fixture(scope="class")
    def farm(self):
        return ImperfectCoverageFarm(**self.CONFIG)

    def test_closed_form_vs_ctmc(self, farm):
        operational, down = farm.state_probabilities()
        pi = farm.to_ctmc().steady_state()
        for i in operational:
            assert operational[i] == pytest.approx(pi[i], rel=1e-10)

    def test_closed_form_vs_spn(self, farm):
        cfg = self.CONFIG
        net = StochasticPetriNet("farm")
        net.add_place("up", tokens=cfg["servers"])
        net.add_place("failed")
        net.add_place("manual")
        net.add_timed_transition(
            "covered",
            rate_function=lambda m: m["up"] * cfg["coverage"] * cfg["failure_rate"],
        )
        net.add_input_arc("up", "covered")
        net.add_output_arc("covered", "failed")
        net.add_timed_transition(
            "uncovered",
            rate_function=lambda m: m["up"]
            * (1 - cfg["coverage"])
            * cfg["failure_rate"],
        )
        net.add_input_arc("up", "uncovered")
        net.add_output_arc("uncovered", "manual")
        net.add_timed_transition("reconfigure", rate=cfg["reconfiguration_rate"])
        net.add_input_arc("manual", "reconfigure")
        net.add_output_arc("reconfigure", "failed")
        net.add_timed_transition("repair", rate=cfg["repair_rate"])
        net.add_input_arc("failed", "repair")
        net.add_output_arc("repair", "up")
        for blocked in ("repair", "covered", "uncovered"):
            net.add_inhibitor_arc("manual", blocked)
        analysis = SPNAnalysis(net)
        assert analysis.probability(
            lambda m: m["up"] == 0 or m["manual"] > 0
        ) == pytest.approx(farm.down_state_probability(), rel=1e-9)

    def test_closed_form_vs_simulation(self, farm, rng):
        from repro.sim import simulate_ctmc_occupancy

        occupancy = simulate_ctmc_occupancy(
            farm.to_ctmc(), self.CONFIG["servers"], 150_000.0, rng
        )
        operational, _ = farm.state_probabilities()
        assert occupancy[3] == pytest.approx(operational[3], abs=0.01)


class TestUserAvailabilityThreeWays:
    def test_engine_closed_form_and_simulation_agree(self, rng):
        ta = TravelAgencyModel()
        for users in (CLASS_A, CLASS_B):
            engine = ta.user_availability(users).availability
            closed = ta.closed_form_user_availability(users)
            assert engine == pytest.approx(closed, abs=1e-14)
        from repro.sim import estimate_user_availability

        monte_carlo = estimate_user_availability(
            ta.hierarchical_model, CLASS_A, sessions=30_000, rng=rng
        )
        assert monte_carlo == pytest.approx(
            ta.user_availability(CLASS_A).availability, abs=0.005
        )


class TestWebServiceThreeWays:
    def test_composite_reward_and_queue_agreement(self):
        model = WebServiceModel(
            servers=4, arrival_rate=100.0, service_rate=100.0,
            buffer_capacity=10, failure_rate=1e-4, repair_rate=1.0,
            coverage=0.98, reconfiguration_rate=12.0,
        )
        # Route 1: the loss-breakdown combination (eq. 9).
        direct = model.availability()
        # Route 2: the generic Markov reward model.
        reward = model.reward_model().steady_state_reward()
        # Route 3: manual combination from the raw pieces.
        farm = model.farm()
        operational, down = farm.state_probabilities()
        from repro.queueing import mmck_blocking_probability

        manual = sum(
            operational[i]
            * (1.0 - mmck_blocking_probability(1.0, i, 10))
            for i in range(1, 5)
        )
        assert direct == pytest.approx(reward, abs=1e-14)
        assert direct == pytest.approx(manual, abs=1e-12)
