"""Failure-injection integration tests.

Force individual resources/services to total failure or perfection and
check that the whole hierarchy responds exactly as the model structure
dictates — single points of failure zero the system, redundant elements
degrade it gracefully, and irrelevant elements change nothing.
"""

import pytest

from repro.core import HierarchicalModel
from repro.profiles import UserClass
from repro.rbd import parallel
from repro.ta import CLASS_A, CLASS_B, TAParameters, TravelAgencyModel


def ta_with(**param_changes):
    return TravelAgencyModel(TAParameters().replace(**param_changes))


class TestSinglePointsOfFailure:
    def test_dead_lan_kills_everything(self):
        model = ta_with(lan_availability=1e-12)
        result = model.user_availability(CLASS_A)
        assert result.availability < 1e-10
        for name, value in model.function_availabilities().items():
            assert value < 1e-10, name

    def test_dead_internet_kills_everything(self):
        model = ta_with(internet_availability=1e-12)
        assert model.user_availability(CLASS_B).availability < 1e-10

    def test_dead_payment_only_kills_pay_scenarios(self):
        healthy = TravelAgencyModel()
        broken = ta_with(payment_availability=1e-12)
        healthy_result = healthy.user_availability(CLASS_B)
        broken_result = broken.user_availability(CLASS_B)
        # Only the SC4 mass (0.203) can be lost.
        lost = healthy_result.availability - broken_result.availability
        sc4_mass = 0.203
        assert 0.0 < lost < sc4_mass
        # Pay function itself is dead; the others are untouched.
        assert broken.function_availabilities()["pay"] < 1e-10
        assert broken.function_availabilities()["home"] == pytest.approx(
            healthy.function_availabilities()["home"]
        )


class TestRedundancyDegradation:
    def test_one_dead_reservation_system_is_absorbed(self):
        """With N = 5 systems per item, one dead system barely matters."""
        healthy = TravelAgencyModel()

        # Rebuild with one flight system dead via the generic engine.
        model = healthy.hierarchical_model
        services = model.service_availabilities()
        degraded = dict(services)
        # A(flight) with 4 live systems instead of 5:
        degraded["flight"] = 1.0 - (1.0 - 0.9) ** 4
        base = healthy.user_availability(CLASS_A).availability
        weakened = sum(
            s.probability
            * model.scenario_availability(s.functions, degraded)
            for s in CLASS_A.scenarios
        )
        assert weakened < base
        # A(flight) drops by 9e-5 (1-of-5 -> 1-of-4), weighted by the
        # ~52% of sessions that touch the backend.
        assert base - weakened < 1e-4

    def test_all_reservation_systems_dead_kills_search(self):
        model = ta_with(reservation_availability=1e-12)
        functions = model.function_availabilities()
        assert functions["search"] < 1e-10
        assert functions["home"] > 0.9
        # Users still complete SC1 scenarios.
        result = model.user_availability(CLASS_A)
        sc1_mass = 0.48
        assert 0.3 < result.availability < sc1_mass + 0.1

    def test_database_disk_mirroring_matters(self):
        mirrored = TravelAgencyModel()  # redundant: two mirrored disks
        fragile = ta_with(disk_availability=0.5)
        # Even at 50% disk availability, mirroring keeps A(DS) at ~0.75.
        assert fragile.service_availabilities()["database"] == pytest.approx(
            (1 - 0.004**2) * (1 - 0.25), rel=1e-6
        )
        assert fragile.user_availability(CLASS_A).availability < (
            mirrored.user_availability(CLASS_A).availability
        )


class TestPerfection:
    def test_perfect_services_leave_only_profile_mass(self):
        """With every availability forced to 1, users see 1.0."""
        model = HierarchicalModel()
        model.add_resource("r", 1.0)
        model.add_service("s", "r")
        model.add_function("f", services=["s"])
        users = UserClass.from_probabilities("all", {frozenset({"f"}): 1.0})
        assert model.user_availability(users).availability == 1.0

    def test_upper_bound_is_common_services(self):
        """No scenario can beat A_net * A_LAN * A(WS)."""
        ta = TravelAgencyModel()
        services = ta.service_availabilities()
        cap = services["net"] * services["lan"] * services["web"]
        result = ta.user_availability(CLASS_A)
        for item in result.per_scenario:
            assert item.availability <= cap + 1e-12


class TestImportanceUnderInjection:
    def test_importance_of_dead_service_is_unchanged_slope(self):
        """Birnbaum importance is availability-independent for the LAN
        (it multiplies every scenario), so injection doesn't change it."""
        healthy = TravelAgencyModel()
        degraded = ta_with(lan_availability=0.5)
        imp_healthy = healthy.service_importance(CLASS_A)["lan"]
        imp_degraded = degraded.service_importance(CLASS_A)["lan"]
        assert imp_healthy == pytest.approx(imp_degraded, rel=1e-9)

    def test_payment_importance_scales_with_buyer_share(self):
        ta = TravelAgencyModel()
        imp_a = ta.service_importance(CLASS_A)["payment"]
        imp_b = ta.service_importance(CLASS_B)["payment"]
        assert imp_b / imp_a == pytest.approx(0.203 / 0.075, rel=1e-6)
