"""Tests for the transient web-service availability extension."""

import pytest

from repro.availability import WebServiceModel
from repro.errors import ValidationError


def paper_model(**overrides):
    config = dict(
        servers=4,
        arrival_rate=100.0,
        service_rate=100.0,
        buffer_capacity=10,
        failure_rate=1e-4,
        repair_rate=1.0,
        coverage=0.98,
        reconfiguration_rate=12.0,
    )
    config.update(overrides)
    return WebServiceModel(**config)


class TestTransientAvailability:
    def test_at_time_zero_full_farm(self):
        model = paper_model()
        value = model.transient_availability(0.0)
        # All four servers up: availability = 1 - pK(4).
        assert value == pytest.approx(
            1.0 - model.blocking_probability(4), abs=1e-12
        )

    def test_converges_to_steady_state(self):
        model = paper_model(failure_rate=1e-2)
        steady = model.availability()
        assert model.transient_availability(5000.0) == pytest.approx(
            steady, abs=1e-9
        )

    def test_recovery_ramp_from_one_server(self):
        """Starting with one server, the measure climbs as repairs land."""
        model = paper_model(failure_rate=1e-3)
        values = [
            model.transient_availability(t, initial_servers=1)
            for t in (0.0, 0.5, 1.0, 2.0, 5.0, 20.0)
        ]
        assert values == sorted(values)
        # At t = 0, one server at load 1 drops ~1/11 of requests.
        assert values[0] == pytest.approx(
            1.0 - model.blocking_probability(1), abs=1e-12
        )
        assert values[-1] == pytest.approx(model.availability(), rel=1e-3)

    def test_degradation_from_full_farm(self):
        """Starting from all-up, availability decays toward steady state."""
        model = paper_model(failure_rate=0.05)
        early = model.transient_availability(0.01)
        late = model.transient_availability(200.0)
        assert early > late
        assert late == pytest.approx(model.availability(), rel=1e-6)

    def test_initial_servers_validation(self):
        model = paper_model()
        with pytest.raises(ValidationError):
            model.transient_availability(1.0, initial_servers=9)
        with pytest.raises(ValidationError):
            model.transient_availability(-1.0)

    def test_start_all_down(self):
        model = paper_model(failure_rate=1e-3)
        value = model.transient_availability(0.0, initial_servers=0)
        assert value == 0.0
        # Repairs restore service over time.
        assert model.transient_availability(3.0, initial_servers=0) > 0.8
