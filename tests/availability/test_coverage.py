"""Tests for the coverage farm models (paper Figs. 9 and 10, eqs. 4, 6-8)."""

import math

import pytest

from repro.availability import ImperfectCoverageFarm, PerfectCoverageFarm
from repro.errors import ValidationError


class TestPerfectCoverage:
    def test_equation_4_closed_form(self):
        nw, lam, mu = 4, 1e-3, 1.0
        farm = PerfectCoverageFarm(servers=nw, failure_rate=lam, repair_rate=mu)
        probs = farm.state_probabilities()
        ratio = mu / lam
        pi0 = probs[0]
        for i in range(nw + 1):
            expected = pi0 * ratio**i / math.factorial(i)
            assert probs[i] == pytest.approx(expected, rel=1e-12)

    def test_distribution_normalized(self):
        farm = PerfectCoverageFarm(servers=6, failure_rate=0.01, repair_rate=0.5)
        assert sum(farm.state_probabilities().values()) == pytest.approx(1.0)

    def test_single_server_is_two_state(self):
        lam, mu = 1e-3, 1.0
        farm = PerfectCoverageFarm(servers=1, failure_rate=lam, repair_rate=mu)
        probs = farm.state_probabilities()
        assert probs[1] == pytest.approx(mu / (lam + mu), abs=1e-14)

    def test_closed_form_matches_ctmc(self):
        farm = PerfectCoverageFarm(servers=5, failure_rate=0.02, repair_rate=0.8)
        pi = farm.to_ctmc().steady_state()
        probs = farm.state_probabilities()
        for i in range(6):
            assert pi[i] == pytest.approx(probs[i], abs=1e-14)

    def test_all_down_probability_decreases_with_servers(self):
        values = [
            PerfectCoverageFarm(
                servers=n, failure_rate=1e-2, repair_rate=1.0
            ).all_down_probability()
            for n in range(1, 8)
        ]
        assert values == sorted(values, reverse=True)

    def test_accessors(self):
        farm = PerfectCoverageFarm(servers=2, failure_rate=0.1, repair_rate=1.0)
        probs = farm.state_probabilities()
        assert farm.all_up_probability() == probs[2]
        assert farm.all_down_probability() == probs[0]


class TestImperfectCoverage:
    def test_equations_6_to_8_closed_forms(self):
        nw, lam, mu, c, beta = 4, 1e-4, 1.0, 0.98, 12.0
        farm = ImperfectCoverageFarm(
            servers=nw,
            failure_rate=lam,
            repair_rate=mu,
            coverage=c,
            reconfiguration_rate=beta,
        )
        operational, down = farm.state_probabilities()
        ratio = mu / lam
        pi0 = operational[0]
        for i in range(nw + 1):
            assert operational[i] == pytest.approx(
                pi0 * ratio**i / math.factorial(i), rel=1e-12
            )
        # Eq. 7: Pi_{y_i} = mu (1-c) / beta * (1/(i-1)!) (mu/lam)^(i-1) Pi_0.
        for i in range(1, nw + 1):
            expected = (
                mu
                * (1 - c)
                / beta
                * ratio ** (i - 1)
                / math.factorial(i - 1)
                * pi0
            )
            assert down[i] == pytest.approx(expected, rel=1e-12)

    def test_normalization(self):
        farm = ImperfectCoverageFarm(
            servers=5, failure_rate=0.01, repair_rate=1.0,
            coverage=0.9, reconfiguration_rate=6.0,
        )
        operational, down = farm.state_probabilities()
        assert sum(operational.values()) + sum(down.values()) == pytest.approx(1.0)

    def test_closed_form_matches_ctmc(self):
        farm = ImperfectCoverageFarm(
            servers=4, failure_rate=1e-3, repair_rate=0.7,
            coverage=0.95, reconfiguration_rate=10.0,
        )
        pi = farm.to_ctmc().steady_state()
        operational, down = farm.state_probabilities()
        for i in range(5):
            assert pi[i] == pytest.approx(operational[i], rel=1e-10)
        for i in range(1, 5):
            assert pi[("y", i)] == pytest.approx(down[i], rel=1e-10)

    def test_perfect_coverage_limit(self):
        """At c = 1 the imperfect model degenerates to the perfect one."""
        nw, lam, mu = 3, 1e-3, 1.0
        imperfect = ImperfectCoverageFarm(
            servers=nw, failure_rate=lam, repair_rate=mu,
            coverage=1.0, reconfiguration_rate=12.0,
        )
        perfect = PerfectCoverageFarm(servers=nw, failure_rate=lam, repair_rate=mu)
        operational, down = imperfect.state_probabilities()
        assert sum(down.values()) == 0.0
        expected = perfect.state_probabilities()
        for i in range(nw + 1):
            assert operational[i] == pytest.approx(expected[i], rel=1e-12)

    def test_down_probability_grows_with_uncoverage(self):
        def down_prob(c):
            return ImperfectCoverageFarm(
                servers=4, failure_rate=1e-3, repair_rate=1.0,
                coverage=c, reconfiguration_rate=12.0,
            ).down_state_probability()

        values = [down_prob(c) for c in (0.999, 0.99, 0.9, 0.5)]
        assert values == sorted(values)

    def test_slower_reconfiguration_hurts(self):
        def down_prob(beta):
            return ImperfectCoverageFarm(
                servers=4, failure_rate=1e-3, repair_rate=1.0,
                coverage=0.95, reconfiguration_rate=beta,
            ).down_state_probability()

        assert down_prob(1.0) > down_prob(12.0) > down_prob(120.0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            ImperfectCoverageFarm(
                servers=0, failure_rate=1e-3, repair_rate=1.0,
                coverage=0.9, reconfiguration_rate=12.0,
            )
        with pytest.raises(ValidationError):
            ImperfectCoverageFarm(
                servers=2, failure_rate=1e-3, repair_rate=1.0,
                coverage=1.5, reconfiguration_rate=12.0,
            )
