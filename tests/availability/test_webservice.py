"""Tests for the composite web-service model (paper eqs. 2, 5, 9)."""

import pytest

from repro.availability import (
    ImperfectCoverageFarm,
    PerfectCoverageFarm,
    TwoStateAvailability,
    WebServiceModel,
)
from repro.errors import ValidationError
from repro.queueing import mm1k_blocking_probability


def paper_model(**overrides):
    config = dict(
        servers=4,
        arrival_rate=100.0,
        service_rate=100.0,
        buffer_capacity=10,
        failure_rate=1e-4,
        repair_rate=1.0,
        coverage=0.98,
        reconfiguration_rate=12.0,
    )
    config.update(overrides)
    return WebServiceModel(**config)


class TestPaperNumbers:
    def test_table7_quoted_availability(self):
        """The paper's A(WS) = 0.999995587 to all printed digits."""
        assert paper_model().availability() == pytest.approx(
            0.999995587, abs=5e-10
        )

    def test_equation_2_basic_architecture(self):
        """One server: A = A(C_WS) * (1 - pK)."""
        lam, mu, alpha, nu, k = 1e-3, 1.0, 100.0, 100.0, 10
        model = WebServiceModel(
            servers=1, arrival_rate=alpha, service_rate=nu,
            buffer_capacity=k, failure_rate=lam, repair_rate=mu,
        )
        host = TwoStateAvailability(failure_rate=lam, repair_rate=mu)
        expected = host.availability * (
            1.0 - mm1k_blocking_probability(alpha / nu, k)
        )
        assert model.availability() == pytest.approx(expected, rel=1e-12)


class TestCompositeCombination:
    def test_equation_5_manual_expansion(self):
        """Perfect coverage: A = 1 - [sum Pi_i pK(i) + Pi_0]."""
        model = paper_model(coverage=1.0, reconfiguration_rate=None)
        farm = PerfectCoverageFarm(
            servers=4, failure_rate=1e-4, repair_rate=1.0
        )
        probs = farm.state_probabilities()
        loss = probs[0] + sum(
            probs[i] * model.blocking_probability(i) for i in range(1, 5)
        )
        assert model.availability() == pytest.approx(1.0 - loss, rel=1e-12)

    def test_equation_9_manual_expansion(self):
        """Imperfect coverage adds the y_i down states."""
        model = paper_model()
        farm = ImperfectCoverageFarm(
            servers=4, failure_rate=1e-4, repair_rate=1.0,
            coverage=0.98, reconfiguration_rate=12.0,
        )
        operational, down = farm.state_probabilities()
        loss = (
            operational[0]
            + sum(down.values())
            + sum(operational[i] * model.blocking_probability(i)
                  for i in range(1, 5))
        )
        assert model.availability() == pytest.approx(1.0 - loss, rel=1e-12)

    def test_loss_breakdown_sums_to_unavailability(self):
        model = paper_model()
        breakdown = model.loss_breakdown()
        assert breakdown.total_unavailability == pytest.approx(
            model.unavailability()
        )
        assert breakdown.availability == pytest.approx(model.availability())
        assert breakdown.buffer_full >= 0
        assert breakdown.manual_reconfiguration > 0

    def test_perfect_coverage_has_no_reconfiguration_loss(self):
        model = paper_model(coverage=1.0, reconfiguration_rate=None)
        assert model.loss_breakdown().manual_reconfiguration == 0.0

    def test_reward_model_agrees(self):
        model = paper_model()
        assert model.reward_model().steady_state_reward() == pytest.approx(
            model.availability(), abs=1e-14
        )


class TestShapeProperties:
    def test_overload_dominated_by_buffer_loss(self):
        model = paper_model(arrival_rate=150.0, servers=1)
        breakdown = model.loss_breakdown()
        assert breakdown.buffer_full > 0.2
        assert breakdown.buffer_full > 100 * breakdown.all_servers_down

    def test_perfect_coverage_improves_monotonically(self):
        """Fig. 11: unavailability drops as NW grows (perfect coverage)."""
        values = [
            paper_model(
                servers=n, coverage=1.0, reconfiguration_rate=None,
                failure_rate=1e-3,
            ).unavailability()
            for n in range(1, 9)
        ]
        assert values == sorted(values, reverse=True)

    def test_imperfect_coverage_reverses_trend(self):
        """Fig. 12: beyond a few servers, adding more *hurts*."""
        values = {
            n: paper_model(servers=n, failure_rate=1e-3).unavailability()
            for n in range(1, 11)
        }
        best = min(values, key=values.get)
        assert 2 <= best <= 5
        assert values[10] > values[best]

    def test_higher_coverage_always_helps(self):
        a_low = paper_model(coverage=0.9).availability()
        a_high = paper_model(coverage=0.99).availability()
        assert a_high > a_low

    def test_timescale_ratio_small_in_paper_regime(self):
        # Failure/repair per hour vs requests per second: after unit
        # conversion the ratio is tiny, validating the decomposition.
        model = paper_model(
            failure_rate=1e-4 / 3600.0,
            repair_rate=1.0 / 3600.0,
            reconfiguration_rate=12.0 / 3600.0,
        )
        assert model.timescale_ratio() < 1e-4


class TestValidation:
    def test_imperfect_coverage_needs_beta(self):
        with pytest.raises(ValidationError, match="reconfiguration_rate"):
            paper_model(reconfiguration_rate=None)

    def test_buffer_must_fit_servers(self):
        with pytest.raises(ValidationError, match="buffer_capacity"):
            paper_model(servers=12, buffer_capacity=10)

    def test_blocking_probability_validates_servers(self):
        with pytest.raises(ValidationError):
            paper_model().blocking_probability(0)

    def test_repr_mentions_coverage(self):
        assert "c=0.98" in repr(paper_model())
        assert "perfect" in repr(
            paper_model(coverage=1.0, reconfiguration_rate=None)
        )
