"""Tests for the deferred-maintenance option (paper Section 3.3)."""

import pytest

from repro.availability import RepairableGroup
from repro.errors import ValidationError


def group(threshold=1, **overrides):
    config = dict(units=4, failure_rate=0.1, repair_rate=1.0, repairmen=2)
    config.update(overrides)
    return RepairableGroup(repair_threshold=threshold, **config)


class TestDeferredMaintenance:
    def test_threshold_one_is_immediate(self):
        immediate = group(threshold=1)
        baseline = RepairableGroup(units=4, failure_rate=0.1,
                                   repair_rate=1.0, repairmen=2)
        probs = immediate.state_probabilities()
        expected = baseline.state_probabilities()
        for i in range(5):
            assert probs[i] == pytest.approx(expected[i], rel=1e-12)

    def test_deferring_reduces_availability(self):
        values = [group(threshold=t).availability(required=1)
                  for t in (1, 2, 3)]
        assert values == sorted(values, reverse=True)

    def test_top_states_become_unreachable(self):
        deferred = group(threshold=2)
        probs = deferred.state_probabilities()
        # With repairs starting at 2 failures, the all-up state is never
        # re-entered after the first failure.
        assert probs[4] == 0.0
        assert probs[3] > 0.5
        assert sum(probs.values()) == pytest.approx(1.0)

    def test_kofn_requirement_suffers_more(self):
        """Deferral barely hurts 1-of-4 service but badly hurts 3-of-4:
        the group now *lives* one failure down."""
        immediate = group(threshold=1)
        deferred = group(threshold=2)
        loss_loose = immediate.availability(1) - deferred.availability(1)
        loss_tight = immediate.availability(4) - deferred.availability(4)
        assert loss_tight > 100 * loss_loose

    def test_expected_units_drop(self):
        assert group(threshold=3).expected_operational_units() < (
            group(threshold=1).expected_operational_units()
        )

    def test_ctmc_marks_top_states_transient(self):
        from repro.errors import NotIrreducibleError

        chain = group(threshold=2).to_ctmc()
        with pytest.raises(NotIrreducibleError):
            chain.steady_state()

    def test_threshold_validation(self):
        with pytest.raises(ValidationError):
            group(threshold=5)
        with pytest.raises(ValidationError):
            group(threshold=0)

    def test_mean_recovery_time_to_operational(self):
        """First-passage sanity: from all-down, the deferred group still
        recovers (repairs are active while failures exceed the
        threshold)."""
        from repro.markov import mean_first_passage_time

        chain = group(threshold=2).to_ctmc()
        recovery = mean_first_passage_time(chain, 0, [3])
        assert 0.0 < recovery < 10.0
