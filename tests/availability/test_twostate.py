"""Tests for the two-state availability model."""

import pytest

from repro.availability import TwoStateAvailability
from repro.errors import ValidationError


class TestTwoState:
    def test_steady_state_availability(self):
        model = TwoStateAvailability(failure_rate=1e-3, repair_rate=1.0)
        assert model.availability == pytest.approx(1.0 / 1.001)
        assert model.availability + model.unavailability == pytest.approx(1.0)

    def test_mttf_mttr(self):
        model = TwoStateAvailability(failure_rate=0.25, repair_rate=2.0)
        assert model.mttf == pytest.approx(4.0)
        assert model.mttr == pytest.approx(0.5)

    def test_from_availability_roundtrip(self):
        model = TwoStateAvailability.from_availability(0.9966, repair_rate=2.0)
        assert model.availability == pytest.approx(0.9966, abs=1e-12)
        assert model.repair_rate == 2.0

    def test_from_availability_rejects_extremes(self):
        with pytest.raises(ValidationError):
            TwoStateAvailability.from_availability(1.0)
        with pytest.raises(ValidationError):
            TwoStateAvailability.from_availability(0.0)

    def test_to_ctmc_matches_closed_form(self):
        model = TwoStateAvailability(failure_rate=0.1, repair_rate=0.7)
        pi = model.to_ctmc().steady_state()
        assert pi["up"] == pytest.approx(model.availability, abs=1e-14)

    def test_transient_availability(self):
        model = TwoStateAvailability(failure_rate=0.5, repair_rate=1.5)
        assert model.transient_availability(0.0) == pytest.approx(1.0)
        assert model.transient_availability(0.0, initially_up=False) == 0.0
        assert model.transient_availability(1e9) == pytest.approx(
            model.availability
        )

    def test_transient_matches_ctmc(self):
        model = TwoStateAvailability(failure_rate=0.3, repair_rate=1.1)
        t = 2.5
        dist = model.to_ctmc().transient_distribution({"up": 1.0}, t)
        assert model.transient_availability(t) == pytest.approx(
            dist["up"], abs=1e-10
        )

    def test_rejects_nonpositive_rates(self):
        with pytest.raises(ValidationError):
            TwoStateAvailability(failure_rate=0.0, repair_rate=1.0)
        with pytest.raises(ValidationError):
            TwoStateAvailability(failure_rate=1.0, repair_rate=-1.0)
