"""Tests for the general repairable group model."""

import pytest

from repro.availability import PerfectCoverageFarm, RepairableGroup
from repro.errors import ValidationError


class TestRepairableGroup:
    def test_shared_repair_matches_perfect_farm(self):
        """With one repairman the group is exactly the Fig. 9 model."""
        group = RepairableGroup(units=4, failure_rate=1e-3, repair_rate=1.0)
        farm = PerfectCoverageFarm(servers=4, failure_rate=1e-3, repair_rate=1.0)
        group_probs = group.state_probabilities()
        farm_probs = farm.state_probabilities()
        for i in range(5):
            assert group_probs[i] == pytest.approx(farm_probs[i], rel=1e-12)

    def test_dedicated_repair_is_binomial(self):
        """With n repairmen the units are independent: binomial occupancy."""
        import math

        n, lam, mu = 3, 0.5, 1.0
        group = RepairableGroup(units=n, failure_rate=lam, repair_rate=mu,
                                repairmen=n)
        a = mu / (lam + mu)
        probs = group.state_probabilities()
        for i in range(n + 1):
            expected = math.comb(n, i) * a**i * (1 - a) ** (n - i)
            assert probs[i] == pytest.approx(expected, rel=1e-10)

    def test_more_repairmen_improve_availability(self):
        results = [
            RepairableGroup(
                units=4, failure_rate=0.5, repair_rate=1.0, repairmen=r
            ).availability()
            for r in range(1, 5)
        ]
        assert results == sorted(results)

    def test_kofn_requirement(self):
        group = RepairableGroup(units=3, failure_rate=0.5, repair_rate=1.0,
                                repairmen=3)
        a1 = group.availability(required=1)
        a2 = group.availability(required=2)
        a3 = group.availability(required=3)
        assert a1 > a2 > a3

    def test_required_validation(self):
        group = RepairableGroup(units=2, failure_rate=0.1, repair_rate=1.0)
        with pytest.raises(ValidationError):
            group.availability(required=3)
        with pytest.raises(ValidationError):
            group.availability(required=0)

    def test_expected_operational_units(self):
        group = RepairableGroup(units=2, failure_rate=1.0, repair_rate=1.0,
                                repairmen=2)
        # Independent units, each up half the time.
        assert group.expected_operational_units() == pytest.approx(1.0)

    def test_to_ctmc_consistent(self):
        group = RepairableGroup(units=3, failure_rate=0.2, repair_rate=0.9,
                                repairmen=2)
        pi = group.to_ctmc().steady_state()
        probs = group.state_probabilities()
        for i in range(4):
            assert pi[i] == pytest.approx(probs[i], rel=1e-12)

    def test_repairmen_cannot_exceed_units(self):
        with pytest.raises(ValidationError):
            RepairableGroup(units=2, failure_rate=0.1, repair_rate=1.0,
                            repairmen=3)
