"""Tests for the deadline-aware availability extension (the paper's
conclusion: also fail requests whose response time exceeds a threshold)."""

import pytest

from repro.availability import WebServiceModel
from repro.errors import ValidationError


def paper_model(**overrides):
    config = dict(
        servers=4,
        arrival_rate=100.0,
        service_rate=100.0,
        buffer_capacity=10,
        failure_rate=1e-4,
        repair_rate=1.0,
        coverage=0.98,
        reconfiguration_rate=12.0,
    )
    config.update(overrides)
    return WebServiceModel(**config)


class TestDeadlineAvailability:
    def test_infinite_deadline_recovers_base_measure(self):
        model = paper_model()
        assert model.deadline_availability(float("inf")) == pytest.approx(
            model.availability(), abs=1e-12
        )

    def test_monotone_in_deadline(self):
        model = paper_model()
        deadlines = (0.005, 0.01, 0.02, 0.05, 0.2, 1.0)
        values = [model.deadline_availability(d) for d in deadlines]
        assert values == sorted(values)

    def test_never_exceeds_base_availability(self):
        model = paper_model()
        base = model.availability()
        for deadline in (0.01, 0.05, 0.5):
            assert model.deadline_availability(deadline) <= base + 1e-12

    def test_tight_deadline_collapses_availability(self):
        model = paper_model()
        # Mean service time is 10 ms; a 1 ms budget fails most requests.
        assert model.deadline_availability(0.001) < 0.15

    def test_generous_deadline_approaches_base(self):
        model = paper_model()
        assert model.deadline_availability(2.0) == pytest.approx(
            model.availability(), abs=1e-6
        )

    def test_late_probability_consistency(self):
        """deadline availability == manual combination over states."""
        model = paper_model()
        farm = model.farm()
        operational, _ = farm.state_probabilities()
        deadline = 0.03
        manual = sum(
            operational[i]
            * (1.0 - model.blocking_probability(i))
            * (1.0 - model.late_probability(i, deadline))
            for i in range(1, 5)
        )
        assert model.deadline_availability(deadline) == pytest.approx(
            manual, rel=1e-12
        )

    def test_perfect_coverage_variant(self):
        model = paper_model(coverage=1.0, reconfiguration_rate=None)
        assert model.deadline_availability(0.05) < model.availability()

    def test_degraded_states_are_slower(self):
        """Fewer operational servers -> higher late probability."""
        model = paper_model()
        deadline = 0.03
        lates = [model.late_probability(i, deadline) for i in (1, 2, 3, 4)]
        assert lates == sorted(lates, reverse=True)

    def test_validation(self):
        model = paper_model()
        with pytest.raises(ValidationError):
            model.deadline_availability(0.0)
        with pytest.raises(ValidationError):
            model.late_probability(0, 0.1)


class TestDeadlineTradeoffs:
    def test_more_servers_help_under_deadline(self):
        """Extra capacity cuts queueing delay, so deadline availability
        keeps improving with NW longer than the plain measure does."""
        deadline = 0.02

        def value(nw):
            return paper_model(servers=nw).deadline_availability(deadline)

        assert value(4) > value(2) > value(1)

    def test_deadline_reshapes_optimum(self):
        """Under a latency SLO the buffer is a liability: requests that
        sit in a long buffer are served but late.  A tighter deadline
        shifts blame from blocking to lateness."""
        model = paper_model(servers=1, arrival_rate=95.0)
        base = model.availability()
        with_slo = model.deadline_availability(0.05)
        # The plain measure only sees ~blocking; the SLO measure is
        # strictly more pessimistic.
        assert with_slo < base
        assert base - with_slo > 0.1
