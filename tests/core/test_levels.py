"""Tests for resource/service/function level entities."""

import pytest

from repro.availability import TwoStateAvailability, WebServiceModel
from repro.core import Function, InteractionDiagram, Resource, Service
from repro.errors import ValidationError
from repro.rbd import parallel, series


class TestResource:
    def test_float_model(self):
        assert Resource("lan", 0.9966).availability() == 0.9966

    def test_attribute_model(self):
        model = TwoStateAvailability(failure_rate=1e-3, repair_rate=1.0)
        resource = Resource("host", model)
        assert resource.availability() == pytest.approx(model.availability)

    def test_method_model(self):
        web = WebServiceModel(
            servers=1, arrival_rate=50.0, service_rate=100.0,
            buffer_capacity=10, failure_rate=1e-3, repair_rate=1.0,
        )
        resource = Resource("web", web)
        assert resource.availability() == pytest.approx(web.availability())

    def test_callable_model(self):
        assert Resource("x", lambda: 0.5).availability() == 0.5

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValidationError):
            Resource("x", 1.2)

    def test_unusable_model_rejected_eagerly(self):
        with pytest.raises(ValidationError):
            Resource("x", object())

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            Resource("", 0.5)


class TestService:
    def test_single_resource_service(self):
        service = Service("net", "internet-link")
        assert service.resource_names() == ("internet-link",)
        assert service.availability({"internet-link": 0.9966}) == 0.9966

    def test_rbd_service(self):
        service = Service("flight", parallel("f1", "f2"))
        assert service.availability({"f1": 0.9, "f2": 0.9}) == pytest.approx(0.99)

    def test_resource_names_deduped(self):
        service = Service("s", series("a", parallel("a", "b")))
        assert service.resource_names() == ("a", "b")

    def test_invalid_structure_rejected(self):
        with pytest.raises(ValidationError):
            Service("s", 42)


class TestFunction:
    def test_series_shortcut(self):
        fn = Function("search", services=["web", "db"])
        assert fn.availability({"web": 0.9, "db": 0.9}) == pytest.approx(0.81)
        assert fn.service_names() == frozenset({"web", "db"})

    def test_diagram_function(self):
        d = InteractionDiagram("browse")
        d.add_node("hit", services=["web"])
        d.add_edge("Begin", "hit")
        d.add_edge("hit", "End")
        fn = Function("browse", diagram=d)
        assert fn.availability({"web": 0.9}) == pytest.approx(0.9)
        assert fn.service_usage_distribution() == {
            frozenset({"web"}): pytest.approx(1.0)
        }

    def test_diagram_and_services_mutually_exclusive(self):
        d = InteractionDiagram("f")
        d.add_node("a", services=["s"])
        d.add_edge("Begin", "a")
        d.add_edge("a", "End")
        with pytest.raises(ValidationError, match="not both"):
            Function("f", diagram=d, services=["s"])

    def test_needs_something(self):
        with pytest.raises(ValidationError):
            Function("f")

    def test_missing_service_availability(self):
        fn = Function("f", services=["web"])
        with pytest.raises(ValidationError, match="no availability"):
            fn.availability({})

    def test_invalid_diagram_rejected_eagerly(self):
        d = InteractionDiagram("f")  # no edges: invalid
        with pytest.raises(Exception):
            Function("f", diagram=d)
