"""Tests for the hierarchical model."""

import pytest

from repro.core import HierarchicalModel, InteractionDiagram
from repro.errors import ModelStructureError, ValidationError
from repro.profiles import UserClass
from repro.rbd import parallel


@pytest.fixture
def model():
    """A miniature two-function application."""
    m = HierarchicalModel()
    m.add_resource("link", 0.99)
    m.add_resource("host-1", 0.9)
    m.add_resource("host-2", 0.9)
    m.add_resource("db-host", 0.95)
    m.add_service("net", "link")
    m.add_service("web", parallel("host-1", "host-2"))
    m.add_service("database", "db-host")
    m.add_function("home", services=["web"])
    m.add_function("search", services=["web", "database"])
    m.require_everywhere(["net"])
    return m


@pytest.fixture
def users():
    return UserClass.from_probabilities(
        "mixed",
        {
            frozenset({"home"}): 0.6,
            frozenset({"home", "search"}): 0.4,
        },
    )


class TestConstruction:
    def test_duplicate_names_rejected(self, model):
        with pytest.raises(ValidationError):
            model.add_resource("link", 0.5)
        with pytest.raises(ValidationError):
            model.add_service("web", "link")
        with pytest.raises(ValidationError):
            model.add_function("home", services=["web"])

    def test_service_needs_known_resources(self, model):
        with pytest.raises(ModelStructureError, match="undefined resources"):
            model.add_service("bad", "ghost-resource")

    def test_function_needs_known_services(self, model):
        with pytest.raises(ModelStructureError, match="undefined services"):
            model.add_function("bad", services=["ghost-service"])

    def test_require_everywhere_validates(self, model):
        with pytest.raises(ModelStructureError):
            model.require_everywhere(["ghost"])

    def test_introspection(self, model):
        assert set(model.resources) == {"link", "host-1", "host-2", "db-host"}
        assert set(model.services) == {"net", "web", "database"}
        assert set(model.functions) == {"home", "search"}
        assert model.common_services == ("net",)

    def test_function_service_mapping_includes_common(self, model):
        mapping = model.function_service_mapping()
        assert mapping["home"] == frozenset({"web", "net"})
        assert mapping["search"] == frozenset({"web", "database", "net"})


class TestLevelEvaluation:
    def test_resource_availability(self, model):
        assert model.resource_availability("link") == 0.99
        with pytest.raises(ValidationError):
            model.resource_availability("ghost")

    def test_service_availability(self, model):
        assert model.service_availability("web") == pytest.approx(0.99)
        assert model.service_availability("net") == 0.99

    def test_function_availability_includes_common(self, model):
        # home = net * web = 0.99 * 0.99.
        assert model.function_availability("home") == pytest.approx(0.9801)
        assert model.function_availability("search") == pytest.approx(
            0.99 * 0.99 * 0.95
        )

    def test_unknown_function(self, model):
        with pytest.raises(ValidationError):
            model.function_availability("ghost")


class TestUserLevel:
    def test_scenario_availability_unions_services(self, model):
        # {home, search} needs net, web, database once each.
        value = model.scenario_availability(["home", "search"])
        assert value == pytest.approx(0.99 * 0.99 * 0.95)

    def test_scenario_availability_empty_uses_common_only(self, model):
        assert model.scenario_availability([]) == pytest.approx(0.99)

    def test_user_availability_weighted_sum(self, model, users):
        result = model.user_availability(users)
        expected = 0.6 * (0.99 * 0.99) + 0.4 * (0.99 * 0.99 * 0.95)
        assert result.availability == pytest.approx(expected)
        assert result.user_class == "mixed"
        assert len(result.per_scenario) == 2

    def test_unavailability_and_downtime(self, model, users):
        result = model.user_availability(users)
        assert result.unavailability == pytest.approx(1 - result.availability)
        assert result.downtime_hours_per_year == pytest.approx(
            result.unavailability * 8760.0
        )

    def test_contributions_sum_to_unavailability(self, model, users):
        result = model.user_availability(users)
        groups = result.contribution_by(
            lambda s: "deep" if "search" in s.functions else "shallow"
        )
        assert sum(groups.values()) == pytest.approx(result.unavailability)

    def test_shared_service_counted_once(self):
        """A scenario using the same service through two functions must
        not square its availability."""
        m = HierarchicalModel()
        m.add_resource("r", 0.5)
        m.add_service("s", "r")
        m.add_function("f1", services=["s"])
        m.add_function("f2", services=["s"])
        assert m.scenario_availability(["f1", "f2"]) == pytest.approx(0.5)

    def test_probabilistic_usage_unions_correctly(self):
        """Function-scenario mixing follows the paper's Browse algebra."""
        m = HierarchicalModel()
        m.add_resource("w", 0.9)
        m.add_resource("a", 0.8)
        m.add_service("web", "w")
        m.add_service("app", "a")
        d = InteractionDiagram("browse")
        d.add_node("hit", services=["web"])
        d.add_node("miss", services=["web", "app"])
        d.add_edge("Begin", "hit", 0.3)
        d.add_edge("Begin", "miss", 0.7)
        d.add_edge("hit", "End")
        d.add_edge("miss", "End")
        m.add_function("browse", diagram=d)
        # A = 0.3 * 0.9 + 0.7 * 0.9 * 0.8
        assert m.scenario_availability(["browse"]) == pytest.approx(
            0.3 * 0.9 + 0.7 * 0.72
        )

    def test_service_importance_ranks_common_first(self, model, users):
        importance = model.service_importance(users)
        assert importance["net"] >= importance["database"]
        assert importance["net"] >= importance["web"]
        # database only matters for the search scenarios.
        assert importance["database"] == pytest.approx(
            0.4 * 0.99 * 0.99, rel=1e-12
        )
