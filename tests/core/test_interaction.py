"""Tests for interaction diagrams."""

import pytest

from repro.core import InteractionDiagram
from repro.errors import ModelStructureError, ValidationError


def browse_like(q_cache=0.2, q_app=0.8, q_direct=0.4, q_db=0.6):
    d = InteractionDiagram("browse")
    d.add_node("cache", services=["web"])
    d.add_node("app", services=["web", "application"])
    d.add_node("db", services=["web", "application", "database"])
    d.add_edge("Begin", "cache", q_cache)
    d.add_edge("Begin", "app", q_app * q_direct)
    d.add_edge("Begin", "db", q_app * q_db)
    for node in ("cache", "app", "db"):
        d.add_edge(node, "End")
    return d


class TestConstruction:
    def test_reserved_names_rejected(self):
        d = InteractionDiagram("f")
        with pytest.raises(ValidationError, match="reserved"):
            d.add_node("Begin")

    def test_duplicate_node_rejected(self):
        d = InteractionDiagram("f")
        d.add_node("a")
        with pytest.raises(ValidationError, match="already exists"):
            d.add_node("a")

    def test_edge_to_unknown_node(self):
        d = InteractionDiagram("f")
        with pytest.raises(ValidationError, match="unknown node"):
            d.add_edge("Begin", "ghost")

    def test_edge_out_of_end_rejected(self):
        d = InteractionDiagram("f")
        d.add_node("a")
        with pytest.raises(ModelStructureError):
            d.add_edge("End", "a")

    def test_edge_into_begin_rejected(self):
        d = InteractionDiagram("f")
        d.add_node("a")
        with pytest.raises(ModelStructureError):
            d.add_edge("a", "Begin")

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            InteractionDiagram("")


class TestValidation:
    def test_unnormalized_branching_rejected(self):
        d = InteractionDiagram("f")
        d.add_node("a")
        d.add_edge("Begin", "a", 0.5)
        d.add_edge("a", "End")
        with pytest.raises(ModelStructureError, match="sum"):
            d.validate()

    def test_dead_end_rejected(self):
        d = InteractionDiagram("f")
        d.add_node("a")
        d.add_node("trap")
        d.add_edge("Begin", "a", 0.5)
        d.add_edge("Begin", "trap", 0.5)
        d.add_edge("a", "End")
        with pytest.raises(ModelStructureError, match="dead end"):
            d.validate()

    def test_cycle_rejected(self):
        d = InteractionDiagram("f")
        d.add_node("a")
        d.add_node("b")
        d.add_edge("Begin", "a")
        d.add_edge("a", "b", 0.5)
        d.add_edge("a", "End", 0.5)
        d.add_edge("b", "a")
        with pytest.raises(ModelStructureError, match="cycle"):
            d.validate()

    def test_missing_begin_edges_rejected(self):
        d = InteractionDiagram("f")
        with pytest.raises(ModelStructureError, match="Begin"):
            d.validate()


class TestScenarios:
    def test_three_browse_scenarios(self):
        scenarios = browse_like().scenarios()
        assert len(scenarios) == 3
        assert sum(s.probability for s in scenarios) == pytest.approx(1.0)

    def test_service_sets(self):
        usage = browse_like().service_usage_distribution()
        assert usage[frozenset({"web"})] == pytest.approx(0.2)
        assert usage[frozenset({"web", "application"})] == pytest.approx(0.32)
        assert usage[frozenset({"web", "application", "database"})] == (
            pytest.approx(0.48)
        )

    def test_scenarios_with_same_services_merge(self):
        d = InteractionDiagram("f")
        d.add_node("a", services=["s"])
        d.add_node("b", services=["s"])
        d.add_edge("Begin", "a", 0.5)
        d.add_edge("Begin", "b", 0.5)
        d.add_edge("a", "End")
        d.add_edge("b", "End")
        assert len(d.scenarios()) == 2
        assert d.service_usage_distribution() == {frozenset({"s"}): pytest.approx(1.0)}

    def test_zero_probability_branch_skipped(self):
        d = InteractionDiagram("f")
        d.add_node("a", services=["s"])
        d.add_node("never", services=["t"])
        d.add_edge("Begin", "a", 1.0)
        d.add_edge("Begin", "never", 0.0)
        d.add_edge("a", "End")
        d.add_edge("never", "End")
        # "never" is unreachable in practice but must not break validation
        # of outgoing sums (Begin sums to 1.0).
        assert d.all_services() == frozenset({"s", "t"})
        usage = d.service_usage_distribution()
        assert frozenset({"t"}) not in usage


class TestAvailability:
    def test_paper_browse_equation(self):
        """A(Browse)/A(WS) = q23 + A_AS (q24 q45 + q24 q47 A_DS)."""
        d = browse_like()
        a_ws, a_as, a_ds = 0.999, 0.99, 0.98
        expected = a_ws * (0.2 + a_as * (0.32 + 0.48 * a_ds))
        value = d.availability(
            {"web": a_ws, "application": a_as, "database": a_ds}
        )
        assert value == pytest.approx(expected, rel=1e-12)

    def test_perfect_services_give_one(self):
        d = browse_like()
        assert d.availability(
            {"web": 1.0, "application": 1.0, "database": 1.0}
        ) == pytest.approx(1.0)

    def test_missing_service_raises(self):
        d = browse_like()
        with pytest.raises(ValidationError, match="no availability"):
            d.availability({"web": 1.0})

    def test_and_split_multiplies_all(self):
        d = InteractionDiagram("search")
        d.add_node("fan", services=["flight", "hotel", "car"])
        d.add_edge("Begin", "fan")
        d.add_edge("fan", "End")
        value = d.availability({"flight": 0.9, "hotel": 0.8, "car": 0.7})
        assert value == pytest.approx(0.9 * 0.8 * 0.7)
