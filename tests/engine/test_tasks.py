"""Tests for evaluation task graphs."""

import numpy as np
import pytest

from repro.engine import (
    EvaluationEngine,
    TaskGraph,
    ctmc_steady_state_task,
    derived_task,
    queueing_batch_task,
)
from repro.errors import EngineError


def _one():
    return 1.0


def _double(x):
    return 2.0 * x


def _add(a, b):
    return a + b


class TestTaskGraph:
    def test_add_and_lookup(self):
        graph = TaskGraph()
        task = graph.add("a", _one)
        assert graph.task("a") is task
        assert "a" in graph
        assert len(graph) == 1
        assert graph.names == ("a",)

    def test_duplicate_name_rejected(self):
        graph = TaskGraph()
        graph.add("a", _one)
        with pytest.raises(EngineError, match="duplicate"):
            graph.add("a", _one)

    def test_empty_name_rejected(self):
        with pytest.raises(EngineError):
            TaskGraph().add("", _one)

    def test_non_callable_rejected(self):
        with pytest.raises(EngineError, match="callable"):
            TaskGraph().add("a", 42)

    def test_unknown_task_lookup(self):
        with pytest.raises(EngineError, match="no task named"):
            TaskGraph().task("ghost")

    def test_topological_order_respects_dependencies(self):
        graph = TaskGraph()
        graph.add("sink", _add, deps=("left", "right"))
        graph.add("left", _one)
        graph.add("right", _double, deps=("left",))
        order = graph.topological_order()
        assert set(order) == {"left", "right", "sink"}
        assert order.index("left") < order.index("right")
        assert order.index("right") < order.index("sink")

    def test_topological_order_is_deterministic(self):
        graph = TaskGraph()
        for name in ("c", "a", "b"):
            graph.add(name, _one)
        # Independent tasks keep insertion order (tie-breaking rule).
        assert graph.topological_order() == ("c", "a", "b")

    def test_unknown_dependency_rejected(self):
        graph = TaskGraph()
        graph.add("a", _one, deps=("ghost",))
        with pytest.raises(EngineError, match="unknown task"):
            graph.topological_order()

    def test_cycle_rejected(self):
        graph = TaskGraph()
        graph.add("a", _double, deps=("b",))
        graph.add("b", _double, deps=("a",))
        with pytest.raises(EngineError, match="cycle"):
            graph.topological_order()


class TestHelperConstructors:
    def test_ctmc_task_key_covers_the_generator(self):
        states = (2, 1, 0)
        generator = np.array([
            [-0.02, 0.02, 0.0],
            [1.0, -1.01, 0.01],
            [0.0, 1.0, -1.0],
        ])
        g1, g2 = TaskGraph(), TaskGraph()
        t1 = ctmc_steady_state_task(g1, "pi", states, generator)
        perturbed = generator.copy()
        perturbed[0, 1] *= 1.0 + 1e-12
        t2 = ctmc_steady_state_task(g2, "pi", states, perturbed)
        assert t1.key is not None
        assert t1.key != t2.key

    def test_queueing_task_key_covers_the_points(self):
        g1, g2 = TaskGraph(), TaskGraph()
        t1 = queueing_batch_task(g1, "pk", [0.5, 1.0], [4, 4], [10, 10])
        t2 = queueing_batch_task(g2, "pk", [0.5, 1.0], [4, 4], [10, 11])
        assert t1.key != t2.key

    def test_derived_tasks_are_never_cached(self):
        graph = TaskGraph()
        graph.add("a", _one)
        task = derived_task(graph, "cell", _double, deps=("a",))
        assert task.key is None
        assert task.deps == ("a",)


class TestGraphEndToEnd:
    def build(self):
        """pi (CTMC solve) + pk (queueing batch) -> one derived cell."""
        graph = TaskGraph()
        states = (1, 0)
        generator = np.array([[-0.01, 0.01], [1.0, -1.0]])
        ctmc_steady_state_task(graph, "pi", states, generator)
        queueing_batch_task(graph, "pk", [1.0], [1], [10])
        derived_task(graph, "cell", _combine_cell, deps=("pi", "pk"))
        return graph

    def test_graph_composes_model_layers(self):
        result = EvaluationEngine().run_graph(self.build())
        pi, pk = result["pi"], result["pk"]
        assert pi[1] + pi[0] == pytest.approx(1.0)
        expected = pi[1] * (1.0 - float(pk[0]))
        assert result["cell"] == pytest.approx(expected)

    def test_keyed_tasks_are_memoized_across_runs(self):
        engine = EvaluationEngine()
        first = engine.run_graph(self.build())
        second = engine.run_graph(self.build())
        assert second.values["cell"] == first.values["cell"]
        # Both keyed tasks hit; only the derived cell re-ran.
        assert second.cache_stats.hits == 2
        assert second.executed == 1

    def test_parallel_graph_matches_serial(self):
        serial = EvaluationEngine(workers=1).run_graph(self.build())
        parallel = EvaluationEngine(workers=2).run_graph(self.build())
        assert parallel.values["cell"] == serial.values["cell"]
        assert np.array_equal(parallel.values["pk"], serial.values["pk"])


def _combine_cell(pi, pk):
    """Availability-style composition: P(up) * P(not blocked)."""
    return pi[1] * (1.0 - float(pk[0]))
