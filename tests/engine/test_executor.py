"""Tests for the batch evaluation engine's executor.

The serial backend (``workers=1``) is the reference implementation;
every parallel/cached/resumed path must reproduce it bit for bit.
"""

import math

import pytest

from repro.engine import EvaluationEngine, MemoCache, canonical_key
from repro.errors import CancelledError, EngineError, ResumeError
from repro.runtime import read_journal


def _cube(x):
    """Module-level so process-pool workers can unpickle it."""
    return x ** 3


def _blocking(spec):
    lam, nw = spec
    from repro.availability import WebServiceModel

    return WebServiceModel(
        servers=int(nw), arrival_rate=100.0, service_rate=100.0,
        buffer_capacity=10, failure_rate=lam, repair_rate=1.0,
    ).unavailability()


def _keys(items):
    return [canonical_key("cube", x=float(x)) for x in items]


class TestSerialMap:
    def test_outputs_follow_input_order(self):
        result = EvaluationEngine().map(_cube, [3.0, 1.0, 2.0])
        assert result.outputs == (27.0, 1.0, 8.0)
        assert result.executed == 3
        assert result.restored == 0
        assert result.workers == 1

    def test_key_count_mismatch_rejected(self):
        with pytest.raises(EngineError, match="cache keys"):
            EvaluationEngine().map(_cube, [1.0, 2.0], keys=["only-one"])

    def test_closures_are_fine_serially(self):
        result = EvaluationEngine().map(lambda x: x + 1, [1, 2])
        assert result.outputs == (2, 3)

    def test_on_result_sees_computed_tasks_only(self):
        engine = EvaluationEngine()
        items = [1.0, 2.0]
        engine.map(_cube, items, keys=_keys(items))
        seen = []
        engine.map(_cube, items, keys=_keys(items),
                   on_result=lambda i, v: seen.append((i, v)))
        assert seen == []  # everything was a cache hit


class TestParallelMap:
    def test_bit_identical_to_serial(self):
        items = [(lam, nw) for lam in (1e-2, 1e-4) for nw in range(1, 5)]
        serial = EvaluationEngine(workers=1).map(_blocking, items)
        parallel = EvaluationEngine(workers=2).map(_blocking, items)
        # == on floats: bit-identity, not approximate agreement.
        assert parallel.outputs == serial.outputs
        assert parallel.workers == 2

    def test_unpicklable_work_function_is_an_engine_error(self):
        with pytest.raises(EngineError, match="worker processes"):
            EvaluationEngine(workers=2).map(lambda x: x, [1, 2, 3])

    def test_single_pending_task_stays_in_process(self):
        # One pending task never pays for a pool — closures still work.
        engine = EvaluationEngine(workers=4)
        assert engine.map(lambda x: -x, [5.0]).outputs == (-5.0,)


class TestCaching:
    def test_warm_rerun_skips_every_solver_call(self):
        engine = EvaluationEngine()
        items = [1.0, 2.0, 3.0, 4.0, 5.0]
        cold = engine.map(_cube, items, keys=_keys(items))
        assert cold.executed == 5
        assert cold.cache_stats.misses == 5

        warm = engine.map(_cube, items, keys=_keys(items))
        assert warm.outputs == cold.outputs
        assert warm.executed == 0              # no solver calls at all
        assert warm.cache_stats.hits == 5
        assert warm.cache_stats.hit_rate == 1.0

    def test_key_change_forces_recomputation(self):
        engine = EvaluationEngine()
        items = [1.0, 2.0]
        engine.map(_cube, items, keys=_keys(items))
        changed = [canonical_key("cube", x=float(x), capacity=11)
                   for x in items]
        again = engine.map(_cube, items, keys=changed)
        assert again.executed == 2
        assert again.cache_stats.hits == 0

    def test_disk_cache_shared_across_engines(self, tmp_path):
        items = [1.0, 2.0, 3.0]
        first = EvaluationEngine(cache_dir=tmp_path)
        cold = first.map(_cube, items, keys=_keys(items))

        second = EvaluationEngine(cache_dir=tmp_path)
        warm = second.map(_cube, items, keys=_keys(items))
        assert warm.outputs == cold.outputs
        assert warm.executed == 0
        assert warm.cache_stats.disk_hits == 3

    def test_cache_stats_are_per_run_deltas(self):
        engine = EvaluationEngine()
        items = [1.0]
        engine.map(_cube, items, keys=_keys(items))
        second = engine.map(_cube, items, keys=_keys(items))
        assert second.cache_stats.lookups == 1  # not cumulative

    def test_prebuilt_cache_and_cache_dir_conflict(self, tmp_path):
        with pytest.raises(EngineError, match="not both"):
            EvaluationEngine(cache=MemoCache(), cache_dir=tmp_path)


class TestCancellation:
    def test_cancelled_before_dispatch(self):
        from repro.runtime import Budget

        budget = Budget(wall_clock=1e-9).start()
        engine = EvaluationEngine(cancellation=budget)
        with pytest.raises(CancelledError):
            engine.map(_cube, [1.0, 2.0])


class TestJournalResume:
    def test_journaled_batch_resumes_bit_identically(self, tmp_path):
        items = [1.0, 2.0, 3.0, 4.0]
        reference = EvaluationEngine().map(_cube, items, keys=_keys(items))

        # Seed a partial journal: the batch header plus two results.
        from repro.runtime import Journal

        path = tmp_path / "batch.jsonl"
        with Journal(path) as journal:
            journal.append("batch_start", phase="batch", total=4)
            for index in (0, 2):
                journal.append("task_result", index=index,
                               key=_keys(items)[index],
                               value=reference.outputs[index])

        resumed = EvaluationEngine().map(
            _cube, items, keys=_keys(items), journal=path
        )
        assert resumed.outputs == reference.outputs
        assert resumed.restored == 2
        assert resumed.executed == 2
        kinds = [r["kind"] for r in read_journal(path)]
        assert kinds.count("task_result") == 4
        assert kinds[-1] == "batch_end"

    def test_completed_journal_recomputes_nothing(self, tmp_path):
        items = [1.0, 2.0]
        path = tmp_path / "batch.jsonl"
        first = EvaluationEngine().map(_cube, items, journal=path)
        replay = EvaluationEngine().map(_cube, items, journal=path)
        assert replay.outputs == first.outputs
        assert replay.restored == 2
        assert replay.executed == 0

    def test_mismatched_journal_rejected(self, tmp_path):
        path = tmp_path / "batch.jsonl"
        EvaluationEngine().map(_cube, [1.0, 2.0], journal=path)
        with pytest.raises(ResumeError, match="not .* of"):
            EvaluationEngine().map(_cube, [1.0, 2.0, 3.0], journal=path)

    def test_changed_keys_rejected_on_resume(self, tmp_path):
        path = tmp_path / "batch.jsonl"
        items = [1.0, 2.0]
        EvaluationEngine().map(_cube, items, keys=_keys(items), journal=path)
        changed = [canonical_key("cube", x=float(x), extra=1) for x in items]
        with pytest.raises(ResumeError, match="different cache key"):
            EvaluationEngine().map(_cube, items, keys=changed, journal=path)

    def test_non_json_results_rejected_under_a_journal(self, tmp_path):
        path = tmp_path / "batch.jsonl"
        with pytest.raises(EngineError, match="JSON"):
            EvaluationEngine().map(
                lambda x: {1, 2}, [0], journal=path
            )


class TestHeartbeat:
    def test_one_event_per_completed_task(self):
        events = []
        engine = EvaluationEngine(heartbeat=events.append)
        engine.map(_cube, [1.0, 2.0], phase="demo")
        assert all(event.phase == "demo" for event in events)
        assert events[-1].completed == 2
        assert events[-1].total == 2


class TestReportIntegration:
    def test_report_is_identical_through_the_engine(self):
        from repro.ta import TravelAgencyModel
        from repro.ta.report import availability_report

        model = TravelAgencyModel()
        reference = availability_report(model)
        engine = availability_report(model, engine=EvaluationEngine())
        assert engine == reference

    def test_report_is_identical_under_workers(self):
        from repro.ta import TravelAgencyModel
        from repro.ta.report import availability_report

        model = TravelAgencyModel()
        reference = availability_report(model)
        parallel = availability_report(
            model, engine=EvaluationEngine(workers=2)
        )
        assert parallel == reference
