"""Tests for the batch evaluation engine's executor.

The serial backend (``workers=1``) is the reference implementation;
every parallel/cached/resumed path must reproduce it bit for bit.
"""

import math
import os

import pytest

from repro.chaos import ChaosPlan, plan_transient_faults
from repro.engine import (
    EvaluationEngine,
    MemoCache,
    TaskGraph,
    TaskRetryPolicy,
    canonical_key,
)
from repro.errors import (
    CancelledError,
    ChaosError,
    EngineError,
    ResumeError,
    TransientTaskError,
)
from repro.runtime import read_journal


def _cube(x):
    """Module-level so process-pool workers can unpickle it."""
    return x ** 3


def _die(x):
    """Poison task: kills whichever worker runs it, every time."""
    os._exit(113)


def _die_once(marker, x):
    """Kills its worker on the first call ever (across processes)."""
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return x * 2
    os.close(fd)
    os._exit(113)


def _boom_on_42(x):
    if x == 42:
        raise ValueError("boom 42")
    return x


def _blocking(spec):
    lam, nw = spec
    from repro.availability import WebServiceModel

    return WebServiceModel(
        servers=int(nw), arrival_rate=100.0, service_rate=100.0,
        buffer_capacity=10, failure_rate=lam, repair_rate=1.0,
    ).unavailability()


def _keys(items):
    return [canonical_key("cube", x=float(x)) for x in items]


class TestSerialMap:
    def test_outputs_follow_input_order(self):
        result = EvaluationEngine().map(_cube, [3.0, 1.0, 2.0])
        assert result.outputs == (27.0, 1.0, 8.0)
        assert result.executed == 3
        assert result.restored == 0
        assert result.workers == 1

    def test_key_count_mismatch_rejected(self):
        with pytest.raises(EngineError, match="cache keys"):
            EvaluationEngine().map(_cube, [1.0, 2.0], keys=["only-one"])

    def test_closures_are_fine_serially(self):
        result = EvaluationEngine().map(lambda x: x + 1, [1, 2])
        assert result.outputs == (2, 3)

    def test_on_result_sees_computed_tasks_only(self):
        engine = EvaluationEngine()
        items = [1.0, 2.0]
        engine.map(_cube, items, keys=_keys(items))
        seen = []
        engine.map(_cube, items, keys=_keys(items),
                   on_result=lambda i, v: seen.append((i, v)))
        assert seen == []  # everything was a cache hit


class TestParallelMap:
    def test_bit_identical_to_serial(self):
        items = [(lam, nw) for lam in (1e-2, 1e-4) for nw in range(1, 5)]
        serial = EvaluationEngine(workers=1).map(_blocking, items)
        parallel = EvaluationEngine(workers=2).map(_blocking, items)
        # == on floats: bit-identity, not approximate agreement.
        assert parallel.outputs == serial.outputs
        assert parallel.workers == 2

    def test_unpicklable_work_function_is_an_engine_error(self):
        with pytest.raises(EngineError, match="worker processes"):
            EvaluationEngine(workers=2).map(lambda x: x, [1, 2, 3])

    def test_single_pending_task_stays_in_process(self):
        # One pending task never pays for a pool — closures still work.
        engine = EvaluationEngine(workers=4)
        assert engine.map(lambda x: -x, [5.0]).outputs == (-5.0,)


class TestCaching:
    def test_warm_rerun_skips_every_solver_call(self):
        engine = EvaluationEngine()
        items = [1.0, 2.0, 3.0, 4.0, 5.0]
        cold = engine.map(_cube, items, keys=_keys(items))
        assert cold.executed == 5
        assert cold.cache_stats.misses == 5

        warm = engine.map(_cube, items, keys=_keys(items))
        assert warm.outputs == cold.outputs
        assert warm.executed == 0              # no solver calls at all
        assert warm.cache_stats.hits == 5
        assert warm.cache_stats.hit_rate == 1.0

    def test_key_change_forces_recomputation(self):
        engine = EvaluationEngine()
        items = [1.0, 2.0]
        engine.map(_cube, items, keys=_keys(items))
        changed = [canonical_key("cube", x=float(x), capacity=11)
                   for x in items]
        again = engine.map(_cube, items, keys=changed)
        assert again.executed == 2
        assert again.cache_stats.hits == 0

    def test_disk_cache_shared_across_engines(self, tmp_path):
        items = [1.0, 2.0, 3.0]
        first = EvaluationEngine(cache_dir=tmp_path)
        cold = first.map(_cube, items, keys=_keys(items))

        second = EvaluationEngine(cache_dir=tmp_path)
        warm = second.map(_cube, items, keys=_keys(items))
        assert warm.outputs == cold.outputs
        assert warm.executed == 0
        assert warm.cache_stats.disk_hits == 3

    def test_cache_stats_are_per_run_deltas(self):
        engine = EvaluationEngine()
        items = [1.0]
        engine.map(_cube, items, keys=_keys(items))
        second = engine.map(_cube, items, keys=_keys(items))
        assert second.cache_stats.lookups == 1  # not cumulative

    def test_prebuilt_cache_and_cache_dir_conflict(self, tmp_path):
        with pytest.raises(EngineError, match="not both"):
            EvaluationEngine(cache=MemoCache(), cache_dir=tmp_path)


class TestCancellation:
    def test_cancelled_before_dispatch(self):
        from repro.runtime import Budget

        budget = Budget(wall_clock=1e-9).start()
        engine = EvaluationEngine(cancellation=budget)
        with pytest.raises(CancelledError):
            engine.map(_cube, [1.0, 2.0])


class TestJournalResume:
    def test_journaled_batch_resumes_bit_identically(self, tmp_path):
        items = [1.0, 2.0, 3.0, 4.0]
        reference = EvaluationEngine().map(_cube, items, keys=_keys(items))

        # Seed a partial journal: the batch header plus two results.
        from repro.runtime import Journal

        path = tmp_path / "batch.jsonl"
        with Journal(path) as journal:
            journal.append("batch_start", phase="batch", total=4)
            for index in (0, 2):
                journal.append("task_result", index=index,
                               key=_keys(items)[index],
                               value=reference.outputs[index])

        resumed = EvaluationEngine().map(
            _cube, items, keys=_keys(items), journal=path
        )
        assert resumed.outputs == reference.outputs
        assert resumed.restored == 2
        assert resumed.executed == 2
        kinds = [r["kind"] for r in read_journal(path)]
        assert kinds.count("task_result") == 4
        assert kinds[-1] == "batch_end"

    def test_completed_journal_recomputes_nothing(self, tmp_path):
        items = [1.0, 2.0]
        path = tmp_path / "batch.jsonl"
        first = EvaluationEngine().map(_cube, items, journal=path)
        replay = EvaluationEngine().map(_cube, items, journal=path)
        assert replay.outputs == first.outputs
        assert replay.restored == 2
        assert replay.executed == 0

    def test_mismatched_journal_rejected(self, tmp_path):
        path = tmp_path / "batch.jsonl"
        EvaluationEngine().map(_cube, [1.0, 2.0], journal=path)
        with pytest.raises(ResumeError, match="not .* of"):
            EvaluationEngine().map(_cube, [1.0, 2.0, 3.0], journal=path)

    def test_changed_keys_rejected_on_resume(self, tmp_path):
        path = tmp_path / "batch.jsonl"
        items = [1.0, 2.0]
        EvaluationEngine().map(_cube, items, keys=_keys(items), journal=path)
        changed = [canonical_key("cube", x=float(x), extra=1) for x in items]
        with pytest.raises(ResumeError, match="different cache key"):
            EvaluationEngine().map(_cube, items, keys=changed, journal=path)

    def test_non_json_results_rejected_under_a_journal(self, tmp_path):
        path = tmp_path / "batch.jsonl"
        with pytest.raises(EngineError, match="JSON"):
            EvaluationEngine().map(
                lambda x: {1, 2}, [0], journal=path
            )


class TestSupervision:
    def test_worker_kill_recovers_bit_identically(self, tmp_path):
        items = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        reference = EvaluationEngine().map(_cube, items)
        plan = ChaosPlan(state_dir=str(tmp_path / "state"), kill_tasks=(2,))
        survived = EvaluationEngine(workers=2, chaos=plan).map(_cube, items)
        assert survived.outputs == reference.outputs
        assert survived.respawns == 1
        assert plan.fired() == 1

    def test_poison_task_exhausts_the_respawn_budget(self):
        engine = EvaluationEngine(workers=2, max_respawns=2)
        with pytest.raises(EngineError, match="died 3 times.*giving up"):
            engine.map(_die, [1, 2, 3, 4])

    def test_kill_reaching_the_serial_backend_is_a_chaos_error(self, tmp_path):
        # A kill can only take down a pool worker; firing it in the
        # supervising process is a harness misconfiguration.
        plan = ChaosPlan(state_dir=str(tmp_path / "state"), kill_tasks=(0,))
        with pytest.raises(ChaosError, match="workers >= 2"):
            EvaluationEngine(chaos=plan).map(_cube, [1.0, 2.0])

    def test_graph_survives_a_worker_kill(self, tmp_path):
        marker = tmp_path / "die-once"

        def build():
            graph = TaskGraph()
            for i in range(4):
                graph.add(f"t{i}", _die_once, args=(str(marker), float(i)))
            return graph

        # Disarm the kill for the in-process reference run: an armed
        # marker would take down the test process itself.
        marker.touch()
        reference = EvaluationEngine().run_graph(build())

        marker.unlink()  # re-arm for the supervised pool run
        survived = EvaluationEngine(workers=2).run_graph(build())
        assert survived.values == reference.values
        assert survived.respawns == 1


class TestTaskRetry:
    def test_transient_faults_retry_to_identical_outputs(self, tmp_path):
        items = [1.0, 2.0, 3.0, 4.0, 5.0]
        reference = EvaluationEngine().map(_cube, items)
        for workers in (1, 2):
            plan = plan_transient_faults(
                len(items), seed=0, count=2,
                state_dir=str(tmp_path / f"state-{workers}"),
            )
            result = EvaluationEngine(
                workers=workers, chaos=plan, retry=TaskRetryPolicy()
            ).map(_cube, items)
            assert result.outputs == reference.outputs
            assert result.retries == 2
            assert plan.fired() == 2

    def test_exhausted_retries_reraise_the_original_error(self, tmp_path):
        plan = ChaosPlan(
            state_dir=str(tmp_path / "state"),
            transient_tasks=(0,), transient_failures=5,
        )
        engine = EvaluationEngine(
            chaos=plan, retry=TaskRetryPolicy(max_attempts=2)
        )
        with pytest.raises(TransientTaskError, match="injected transient"):
            engine.map(_cube, [1.0])
        assert plan.fired() == 2  # exactly max_attempts attempts were made

    def test_non_retryable_errors_are_not_retried(self):
        engine = EvaluationEngine(retry=TaskRetryPolicy())
        with pytest.raises(ValueError, match="boom 42"):
            engine.map(_boom_on_42, [41, 42])

    def test_attempt_counts_recorded_in_the_journal(self, tmp_path):
        plan = ChaosPlan(
            state_dir=str(tmp_path / "state"), transient_tasks=(1,)
        )
        path = tmp_path / "batch.jsonl"
        EvaluationEngine(chaos=plan, retry=TaskRetryPolicy()).map(
            _cube, [1.0, 2.0, 3.0], journal=path
        )
        by_index = {
            r["index"]: r for r in read_journal(path)
            if r["kind"] == "task_result"
        }
        assert by_index[0]["attempts"] == 1
        assert by_index[1]["attempts"] == 2
        assert by_index[2]["attempts"] == 1


class TestExceptionPropagation:
    def test_worker_errors_match_serial_type_and_message(self):
        items = [40, 41, 42, 43]
        with pytest.raises(ValueError) as serial_exc:
            EvaluationEngine().map(_boom_on_42, items)
        with pytest.raises(ValueError) as parallel_exc:
            EvaluationEngine(workers=2).map(_boom_on_42, items)
        assert type(parallel_exc.value) is type(serial_exc.value)
        assert str(parallel_exc.value) == str(serial_exc.value) == "boom 42"


class TestHeartbeat:
    def test_one_event_per_completed_task(self):
        events = []
        engine = EvaluationEngine(heartbeat=events.append)
        engine.map(_cube, [1.0, 2.0], phase="demo")
        assert all(event.phase == "demo" for event in events)
        assert events[-1].completed == 2
        assert events[-1].total == 2


class TestReportIntegration:
    def test_report_is_identical_through_the_engine(self):
        from repro.ta import TravelAgencyModel
        from repro.ta.report import availability_report

        model = TravelAgencyModel()
        reference = availability_report(model)
        engine = availability_report(model, engine=EvaluationEngine())
        assert engine == reference

    def test_report_is_identical_under_workers(self):
        from repro.ta import TravelAgencyModel
        from repro.ta.report import availability_report

        model = TravelAgencyModel()
        reference = availability_report(model)
        parallel = availability_report(
            model, engine=EvaluationEngine(workers=2)
        )
        assert parallel == reference
