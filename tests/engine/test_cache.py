"""Tests for content-addressed cache keys and the memo cache."""

import pickle
import warnings

import numpy as np
import pytest

from repro.engine import MemoCache, canonical_key
from repro.errors import EngineError


def generator_matrix():
    """A small CTMC generator (2-server farm, lambda=0.01, mu=1)."""
    return np.array([
        [-0.02, 0.02, 0.0],
        [1.0, -1.01, 0.01],
        [0.0, 1.0, -1.0],
    ])


class TestCanonicalKey:
    def test_deterministic(self):
        a = canonical_key("demo", load=0.5, servers=4, capacity=10)
        b = canonical_key("demo", load=0.5, servers=4, capacity=10)
        assert a == b
        assert len(a) == 64  # sha256 hex

    def test_keyword_order_irrelevant(self):
        a = canonical_key("demo", load=0.5, servers=4)
        b = canonical_key("demo", servers=4, load=0.5)
        assert a == b

    def test_kind_namespaces_computations(self):
        a = canonical_key("ctmc-steady-state", x=1.0)
        b = canonical_key("mmck-blocking", x=1.0)
        assert a != b

    def test_empty_kind_rejected(self):
        with pytest.raises(EngineError):
            canonical_key("", x=1.0)

    def test_any_generator_entry_changes_key(self):
        """Perturbing any single matrix entry must change the key."""
        base = generator_matrix()
        reference = canonical_key("ctmc", generator=base)
        for i in range(base.shape[0]):
            for j in range(base.shape[1]):
                perturbed = base.copy()
                perturbed[i, j] += 1e-12
                assert canonical_key("ctmc", generator=perturbed) != reference

    def test_every_queue_param_changes_key(self):
        base = dict(arrival_rate=100.0, service_rate=100.0,
                    servers=4, capacity=10)
        reference = canonical_key("mmck", **base)
        for name, bumped in [
            ("arrival_rate", 100.0 + 1e-9),
            ("service_rate", 100.0 - 1e-9),
            ("servers", 5),
            ("capacity", 11),
        ]:
            changed = dict(base, **{name: bumped})
            assert canonical_key("mmck", **changed) != reference

    def test_floats_hash_by_bit_pattern(self):
        assert canonical_key("f", x=0.0) != canonical_key("f", x=-0.0)
        assert (canonical_key("f", x=1.0)
                != canonical_key("f", x=1.0 + 2.0 ** -52))

    def test_scalar_types_do_not_collide(self):
        keys = {
            canonical_key("t", x=1),
            canonical_key("t", x=1.0),
            canonical_key("t", x=True),
            canonical_key("t", x="1"),
            canonical_key("t", x=None),
        }
        assert len(keys) == 5

    def test_array_shape_and_dtype_matter(self):
        flat = np.arange(6, dtype=float)
        assert (canonical_key("a", x=flat)
                != canonical_key("a", x=flat.reshape(2, 3)))
        assert (canonical_key("a", x=flat)
                != canonical_key("a", x=flat.astype(np.float32)))

    def test_containers_are_type_tagged(self):
        assert (canonical_key("c", x=(1, 2))
                == canonical_key("c", x=[1, 2]))  # both sequence-tagged
        assert canonical_key("c", x=(1, 2)) != canonical_key("c", x="12")

    def test_mapping_iteration_order_irrelevant(self):
        a = canonical_key("m", params={"lam": 0.01, "mu": 1.0})
        b = canonical_key("m", params={"mu": 1.0, "lam": 0.01})
        assert a == b

    def test_set_iteration_order_irrelevant(self):
        a = canonical_key("s", members=frozenset({"web-1", "web-2", "db"}))
        b = canonical_key("s", members=frozenset({"db", "web-2", "web-1"}))
        assert a == b
        assert a != canonical_key("s", members=frozenset({"web-1", "db"}))

    def test_unsupported_type_raises_instead_of_guessing(self):
        with pytest.raises(EngineError, match="canonical cache key"):
            canonical_key("bad", x=object())


class TestMemoCache:
    def test_hit_returns_the_stored_value(self):
        cache = MemoCache()
        key = canonical_key("demo", x=1.0)
        hit, _ = cache.lookup(key)
        assert not hit
        cache.put(key, (1.0, 2.0, 3.0))
        hit, value = cache.lookup(key)
        assert hit
        assert value == (1.0, 2.0, 3.0)

    def test_cached_none_is_a_hit(self):
        cache = MemoCache()
        key = canonical_key("demo", x=2.0)
        cache.put(key, None)
        hit, value = cache.lookup(key)
        assert hit and value is None
        assert cache.get(key, default="fallback") is None

    def test_stats_reconcile(self):
        cache = MemoCache()
        keys = [canonical_key("demo", x=float(i)) for i in range(4)]
        for key in keys:
            cache.lookup(key)            # 4 misses
        for key in keys[:2]:
            cache.put(key, 0.0)
        for key in keys:
            cache.lookup(key)            # 2 hits, 2 misses
        stats = cache.stats
        assert stats.lookups == 8
        assert stats.hits == 2
        assert stats.misses == 6
        assert stats.hits + stats.misses == stats.lookups
        assert stats.memory_hits + stats.disk_hits == stats.hits
        assert stats.consistent

    def test_hit_rate(self):
        cache = MemoCache()
        assert np.isnan(cache.stats.hit_rate)
        key = canonical_key("demo", x=0.0)
        cache.put(key, 1.0)
        cache.lookup(key)
        assert cache.stats.hit_rate == 1.0

    def test_lru_eviction(self):
        cache = MemoCache(maxsize=2)
        k1, k2, k3 = (canonical_key("demo", x=i) for i in range(3))
        cache.put(k1, 1)
        cache.put(k2, 2)
        cache.get(k1)          # k1 is now most recently used
        cache.put(k3, 3)       # evicts k2, the least recently used
        assert k1 in cache and k3 in cache
        assert k2 not in cache
        assert cache.stats.evictions == 1

    def test_disk_store_survives_a_fresh_cache(self, tmp_path):
        first = MemoCache(cache_dir=tmp_path)
        key = canonical_key("demo", x=3.0)
        first.put(key, {"value": 42.0})

        second = MemoCache(cache_dir=tmp_path)
        hit, value = second.lookup(key)
        assert hit
        assert value == {"value": 42.0}
        assert second.stats.disk_hits == 1
        # Promoted to memory: the next lookup does not touch disk again.
        second.lookup(key)
        assert second.stats.memory_hits == 1

    def test_torn_disk_entry_is_a_miss_not_an_error(self, tmp_path):
        cache = MemoCache(cache_dir=tmp_path)
        key = canonical_key("demo", x=4.0)
        cache.put(key, 1.0)
        path = tmp_path / key[:2] / f"{key}.pkl"
        path.write_bytes(b"\x80 torn")
        fresh = MemoCache(cache_dir=tmp_path)
        hit, _ = fresh.lookup(key)
        assert not hit
        assert fresh.stats.consistent

    def test_clear_drops_memory_but_not_disk(self, tmp_path):
        cache = MemoCache(cache_dir=tmp_path)
        key = canonical_key("demo", x=5.0)
        cache.put(key, 7.0)
        cache.clear()
        assert len(cache) == 0
        hit, value = cache.lookup(key)   # served from disk
        assert hit and value == 7.0

    def test_clear_statistics_resets_counters(self):
        cache = MemoCache()
        cache.lookup(canonical_key("demo", x=0.0))
        cache.clear(statistics=True)
        assert cache.stats == type(cache.stats)()


class TestCacheIntegrity:
    """Checksum framing: damaged disk entries are misses, never crashes."""

    @staticmethod
    def _seed_entry(tmp_path, value=(1.0, 2.0)):
        cache = MemoCache(cache_dir=tmp_path)
        key = canonical_key("demo", x=6.0)
        cache.put(key, value)
        return key, tmp_path / key[:2] / f"{key}.pkl"

    def _assert_quarantined(self, tmp_path, key, path):
        fresh = MemoCache(cache_dir=tmp_path)
        hit, _ = fresh.lookup(key)
        assert not hit
        assert fresh.stats.corruptions == 1
        assert fresh.stats.consistent
        assert not path.exists()
        assert (fresh.quarantine_dir / path.name).exists()
        # Recompute-and-store heals the entry for the next reader.
        fresh.put(key, (1.0, 2.0))
        healed = MemoCache(cache_dir=tmp_path)
        assert healed.get(key) == (1.0, 2.0)
        assert healed.stats.corruptions == 0

    def test_flipped_payload_byte_is_quarantined(self, tmp_path):
        key, path = self._seed_entry(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        self._assert_quarantined(tmp_path, key, path)

    def test_truncated_entry_is_quarantined(self, tmp_path):
        key, path = self._seed_entry(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        self._assert_quarantined(tmp_path, key, path)

    def test_empty_file_is_quarantined(self, tmp_path):
        key, path = self._seed_entry(tmp_path)
        path.write_bytes(b"")
        self._assert_quarantined(tmp_path, key, path)

    def test_unframed_legacy_entry_is_quarantined(self, tmp_path):
        # A bare pickle (the pre-framing format) has no magic/checksum:
        # treated as foreign, not trusted.
        key, path = self._seed_entry(tmp_path)
        path.write_bytes(pickle.dumps((1.0, 2.0)))
        self._assert_quarantined(tmp_path, key, path)

    def test_disk_write_failure_degrades_to_memory_only(self, tmp_path):
        cache = MemoCache(cache_dir=tmp_path)
        key = canonical_key("demo", x=9.0)
        # Block the shard directory with a plain file: the store's mkdir
        # fails with the same OSError a read-only cache_dir raises (a
        # chmod-based setup is a no-op under root).
        (tmp_path / key[:2]).touch()
        with pytest.warns(RuntimeWarning, match="memory-only"):
            cache.put(key, 1.0)
        assert cache.stats.disk_write_failures == 1
        assert cache.get(key) == 1.0  # the memory level still serves
        # Degradation is sticky and warns exactly once.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cache.put(canonical_key("demo", x=10.0), 2.0)
        assert cache.stats.disk_write_failures == 1
        assert cache.stats.consistent
