"""Tests for engine performance attribution (repro.obs.perf wiring)."""

import os

import pytest

from repro.engine import EvaluationEngine, TaskGraph
from repro.obs import PerfRecorder


def _cube(x):
    return x ** 3


def _add(a, b):
    return a + b


def _des_burst(n):
    """A task that runs a DES kernel (ambient perf reaches the worker)."""
    from repro.sim import Simulator

    sim = Simulator()
    state = {"left": int(n)}

    def tick():
        state["left"] -= 1
        if state["left"]:
            sim.schedule(1.0, tick)

    sim.schedule(1.0, tick)
    sim.run()
    return sim.events_processed


def _graph(recorder=None, workers=1):
    engine = EvaluationEngine(workers=workers, perf=recorder)
    graph = TaskGraph()
    graph.add("a", _cube, args=(2.0,))
    graph.add("b", _cube, args=(3.0,))
    graph.add("c", _add, deps=("a", "b"))
    return engine.run_graph(graph, phase="test-graph").values


class TestSerialAttribution:
    def test_map_produces_one_report(self):
        recorder = PerfRecorder()
        engine = EvaluationEngine(perf=recorder)
        batch = engine.map(_cube, [1.0, 2.0, 3.0], phase="unit-map")
        assert list(batch.outputs) == [1.0, 8.0, 27.0]
        (report,) = recorder.batches
        assert report.phase == "unit-map"
        assert report.tasks == 3
        assert report.slots == 1
        assert report.coverage >= 0.95
        # Serial execution happens in this process.
        assert [w.pid for w in report.per_worker] == [os.getpid()]

    def test_outputs_identical_with_and_without_perf(self):
        items = [1.0, 2.0, 3.0, 4.0]
        plain = list(EvaluationEngine().map(_cube, items).outputs)
        profiled = list(EvaluationEngine(perf=PerfRecorder()).map(
            _cube, items
        ).outputs)
        assert profiled == plain

    def test_graph_produces_report(self):
        recorder = PerfRecorder()
        results = _graph(recorder)
        assert results["c"] == pytest.approx(35.0)
        (report,) = recorder.batches
        assert report.phase == "test-graph"
        assert report.tasks == 3
        assert report.coverage >= 0.95

    def test_graph_results_identical_with_and_without_perf(self):
        assert _graph(PerfRecorder()) == _graph(None)

    def test_disabled_engine_records_nothing(self):
        engine = EvaluationEngine()
        engine.map(_cube, [1.0])
        assert engine._perf is None

    def test_task_profiler_ticks(self):
        recorder = PerfRecorder(task_interval=1)
        EvaluationEngine(perf=recorder).map(_cube, [1.0, 2.0], phase="p")
        assert recorder.profiler.task_ticks == 2
        leaves = {stack[-1] for stack in recorder.profiler.samples}
        assert "task:p" in leaves


class TestParallelAttribution:
    def test_workers2_coverage_and_buckets(self):
        recorder = PerfRecorder()
        engine = EvaluationEngine(workers=2, perf=recorder)
        items = list(range(1, 13))
        batch = engine.map(_des_burst, items, phase="parallel-des")
        assert list(batch.outputs) == items
        (report,) = recorder.batches
        assert report.slots >= 2
        assert report.tasks == 12
        assert report.coverage >= 0.95
        # The identity: buckets sum to capacity (slots x elapsed).
        # Tolerance is wall-clock float epsilon (~2e-7 s at the current
        # epoch), not a modelling slack.
        assert report.accounted == pytest.approx(
            report.capacity, abs=1e-5
        )
        assert report.queue_depth_samples  # sampled while waiting

    def test_worker_kernel_accounting_merges_back(self):
        recorder = PerfRecorder()
        engine = EvaluationEngine(workers=2, perf=recorder)
        engine.map(_des_burst, [50, 60], phase="kernels")
        # 110 DES events ran inside pool workers; their accounting came
        # back through the perf record protocol.
        assert recorder.kernel.total_events == 110
        assert recorder.kernel.counts  # event-type names survived

    def test_parallel_outputs_identical_with_perf(self):
        items = [10, 20, 30]
        plain = list(
            EvaluationEngine(workers=2).map(_des_burst, items).outputs
        )
        profiled = list(EvaluationEngine(
            workers=2, perf=PerfRecorder()
        ).map(_des_burst, items).outputs)
        assert profiled == plain == items

    def test_serialization_bytes_counted(self):
        recorder = PerfRecorder()
        engine = EvaluationEngine(workers=2, perf=recorder)
        engine.map(_cube, [1.0, 2.0], phase="ser")
        (report,) = recorder.batches
        assert report.serialized_bytes > 0
        assert report.serialization_measured >= 0.0


class TestCacheAttribution:
    def test_cache_time_lands_in_cache_bucket(self, tmp_path):
        recorder = PerfRecorder()
        items = [1.0, 2.0, 3.0]
        keys = [f"k-{x}" for x in items]
        engine = EvaluationEngine(cache_dir=tmp_path, perf=recorder)
        engine.map(_cube, items, keys=keys)
        warm = EvaluationEngine(cache_dir=tmp_path, perf=recorder)
        warm.map(_cube, items, keys=keys)
        cold, hot = recorder.batches
        assert cold.cache_measured >= 0.0
        assert hot.cache_measured > 0.0  # lookups were timed
