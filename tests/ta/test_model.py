"""Tests for the TravelAgencyModel facade."""

import pytest

from repro.errors import ValidationError
from repro.ta import CLASS_A, CLASS_B, TAParameters, TravelAgencyModel


@pytest.fixture(scope="module")
def ta():
    return TravelAgencyModel()


class TestFacade:
    def test_engine_matches_closed_form_exactly(self, ta):
        for users in (CLASS_A, CLASS_B):
            engine = ta.user_availability(users).availability
            closed = ta.closed_form_user_availability(users)
            assert engine == pytest.approx(closed, abs=1e-14)

    def test_basic_architecture_engine_matches_closed_form(self):
        basic = TravelAgencyModel(architecture="basic")
        for users in (CLASS_A, CLASS_B):
            assert basic.user_availability(users).availability == pytest.approx(
                basic.closed_form_user_availability(users), abs=1e-14
            )

    def test_with_params(self, ta):
        changed = ta.with_params(disk_availability=0.99)
        assert changed.params.disk_availability == 0.99
        assert changed.user_availability(CLASS_A).availability > (
            ta.user_availability(CLASS_A).availability
        )

    def test_unknown_architecture(self):
        with pytest.raises(ValidationError):
            TravelAgencyModel(architecture="planar")

    def test_repr(self, ta):
        assert "redundant" in repr(ta)


class TestAnalyses:
    def test_reservation_sweep_monotone_then_flat(self, ta):
        sweep = ta.reservation_sweep(CLASS_A, [1, 2, 3, 4, 5, 10])
        values = [a for _, a in sweep]
        assert values == sorted(values)
        # Stabilizes: the last step gains almost nothing.
        assert values[-1] - values[-2] < 2e-5
        # The first step is the big one.
        assert values[1] - values[0] > 0.1

    def test_category_breakdown_sums_to_unavailability(self, ta):
        for users in (CLASS_A, CLASS_B):
            breakdown = ta.category_breakdown(users)
            result = ta.user_availability(users)
            assert set(breakdown) == {"SC1", "SC2", "SC3", "SC4"}
            assert sum(breakdown.values()) == pytest.approx(
                result.unavailability, rel=1e-12
            )

    def test_sc4_hurts_class_b_more(self, ta):
        """Fig. 13: the payment category costs class B ~2.7x class A."""
        a = ta.category_breakdown(CLASS_A)["SC4"]
        b = ta.category_breakdown(CLASS_B)["SC4"]
        assert 2.2 < b / a < 3.2

    def test_service_importance_order(self, ta):
        """Section 4.3: net, LAN and web dominate (first-order factors)."""
        importance = ta.service_importance(CLASS_A)
        first_order = {"net", "lan", "web"}
        others = set(importance) - first_order
        weakest_first_order = min(importance[s] for s in first_order)
        strongest_other = max(importance[s] for s in others)
        assert weakest_first_order > strongest_other

    def test_redundant_beats_basic(self):
        basic = TravelAgencyModel(architecture="basic")
        redundant = TravelAgencyModel(architecture="redundant")
        for users in (CLASS_A, CLASS_B):
            assert redundant.user_availability(users).availability > (
                basic.user_availability(users).availability
            )

    def test_function_availabilities_ordering(self, ta):
        functions = ta.function_availabilities()
        assert functions["home"] > functions["browse"] > functions["search"]
        assert functions["book"] == pytest.approx(functions["search"])
