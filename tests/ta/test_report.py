"""Tests for the full availability report."""

import pytest

from repro.ta import CLASS_A, CLASS_B, TravelAgencyModel
from repro.ta.report import availability_report


@pytest.fixture(scope="module")
def report():
    return availability_report(TravelAgencyModel())


class TestReport:
    def test_all_sections_present(self, report):
        for marker in (
            "1. User-perceived availability",
            "2. Where the downtime comes from",
            "3. Function availabilities",
            "4. Services, ranked by influence",
            "5. Business impact",
        ):
            assert marker in report

    def test_headline_numbers_present(self, report):
        assert "0.97882" in report   # class A
        assert "0.96482" in report   # class B
        assert "0.999995587" in report  # A(WS)

    def test_both_classes_reported(self, report):
        assert "class A" in report and "class B" in report

    def test_importance_ranking_order(self, report):
        """net/lan/web must appear before payment in the ranked table."""
        section = report.split("4. Services")[1]
        assert section.index("net") < section.index("payment")
        assert section.index("web") < section.index("payment")

    def test_single_class_report(self):
        text = availability_report(
            TravelAgencyModel(), user_classes=[CLASS_B]
        )
        assert "class B" in text
        assert "class A" not in text

    def test_custom_economics(self):
        text = availability_report(
            TravelAgencyModel(), session_rate=10.0, average_revenue=250.0
        )
        assert "10 sessions/s" in text
        assert "$250 per transaction" in text

    def test_cli_report_flag(self, capsys):
        from repro.cli import main

        assert main(["ta", "--report", "--user-class", "A"]) == 0
        out = capsys.readouterr().out
        assert "USER-PERCEIVED AVAILABILITY REPORT" in out
        assert "5. Business impact" in out
