"""Tests for the TA interaction diagrams (Figs. 3-6)."""

import pytest

from repro.ta import TAParameters
from repro.ta.diagrams import (
    APPLICATION,
    CAR,
    DATABASE,
    FLIGHT,
    HOTEL,
    PAYMENT,
    WEB,
    book_diagram,
    browse_diagram,
    pay_diagram,
    search_diagram,
)


@pytest.fixture
def params():
    return TAParameters()


class TestBrowseDiagram:
    def test_three_scenarios_with_paper_probabilities(self, params):
        usage = browse_diagram(params).service_usage_distribution()
        assert usage[frozenset({WEB})] == pytest.approx(0.2)
        assert usage[frozenset({WEB, APPLICATION})] == pytest.approx(0.32)
        assert usage[frozenset({WEB, APPLICATION, DATABASE})] == (
            pytest.approx(0.48)
        )

    def test_custom_branch_probabilities_flow_through(self):
        params = TAParameters(q_cache=0.5, q_application=0.5,
                              q_app_direct=0.6, q_app_database=0.4)
        usage = browse_diagram(params).service_usage_distribution()
        assert usage[frozenset({WEB})] == pytest.approx(0.5)
        assert usage[frozenset({WEB, APPLICATION})] == pytest.approx(0.3)

    def test_availability_reproduces_table6_term(self, params):
        services = {WEB: 0.99, APPLICATION: 0.98, DATABASE: 0.97}
        value = browse_diagram(params).availability(services)
        expected = 0.99 * (0.2 + 0.98 * (0.32 + 0.48 * 0.97))
        assert value == pytest.approx(expected, rel=1e-12)


class TestBackendDiagrams:
    def test_search_touches_all_reservation_services(self, params):
        services = search_diagram(params).all_services()
        assert {WEB, APPLICATION, DATABASE, FLIGHT, HOTEL, CAR} <= services
        assert PAYMENT not in services

    def test_search_single_scenario(self, params):
        scenarios = search_diagram(params).scenarios()
        assert len(scenarios) == 1
        assert scenarios[0].probability == 1.0

    def test_book_uses_search_service_set(self, params):
        book = book_diagram(params).all_services()
        search = search_diagram(params).all_services()
        assert book == search

    def test_pay_includes_payment_not_reservations(self, params):
        services = pay_diagram(params).all_services()
        assert PAYMENT in services
        assert FLIGHT not in services

    def test_all_diagrams_validate(self, params):
        for build in (browse_diagram, search_diagram, book_diagram,
                      pay_diagram):
            build(params).validate()
