"""Tests for point-in-time user availability."""

import pytest

from repro.ta import CLASS_A, CLASS_B, TAParameters, TravelAgencyModel


@pytest.fixture(scope="module")
def ta():
    # A larger failure rate makes the transient visible on short horizons.
    return TravelAgencyModel(TAParameters(web_failure_rate=1e-2))


class TestUserAvailabilityAt:
    def test_converges_to_steady_state(self, ta):
        steady = ta.user_availability(CLASS_A).availability
        late = ta.user_availability_at(CLASS_A, time=2000.0)
        assert late == pytest.approx(steady, rel=1e-4)

    def test_cold_start_ramp_is_monotone(self, ta):
        values = [
            ta.user_availability_at(CLASS_A, t, initial_servers=1)
            for t in (0.0, 0.5, 1.0, 2.0, 5.0, 50.0)
        ]
        assert values == sorted(values)

    def test_cold_start_hurts_users_initially(self, ta):
        steady = ta.user_availability(CLASS_B).availability
        cold = ta.user_availability_at(CLASS_B, 0.0, initial_servers=1)
        # One server at load 1 drops ~1/11 of requests; users feel it.
        assert cold < steady - 0.05

    def test_full_farm_start_slightly_above_steady(self, ta):
        steady = ta.user_availability(CLASS_A).availability
        fresh = ta.user_availability_at(CLASS_A, 0.0)
        assert fresh >= steady - 1e-12

    def test_class_ordering_preserved_through_transient(self, ta):
        for t in (0.0, 1.0, 10.0):
            a = ta.user_availability_at(CLASS_A, t, initial_servers=2)
            b = ta.user_availability_at(CLASS_B, t, initial_servers=2)
            assert a > b
