"""Golden-number tests against every quantitative claim of the paper.

Where the paper's published numbers cannot be reproduced exactly from its
own printed equations (Table 8's class-B column; see EXPERIMENTS.md), the
tests assert the documented tolerance and the qualitative shape instead.
"""

import pytest

from repro.availability import WebServiceModel
from repro.reporting import availability_from_downtime
from repro.ta import CLASS_A, CLASS_B, TAParameters, TravelAgencyModel


def web_model(servers, failure_rate, arrival_rate, coverage=None):
    return WebServiceModel(
        servers=servers,
        arrival_rate=arrival_rate,
        service_rate=100.0,
        buffer_capacity=10,
        failure_rate=failure_rate,
        repair_rate=1.0,
        coverage=coverage,
        reconfiguration_rate=None if coverage is None else 12.0,
    )


class TestSection51WebService:
    """Claims made about Figs. 11 and 12."""

    def test_quoted_aws_value(self):
        assert web_model(4, 1e-4, 100.0, coverage=0.98).availability() == (
            pytest.approx(0.999995587, abs=5e-10)
        )

    def test_five_minutes_requirement_lambda_1e3(self):
        """With lambda = 1e-3/h and alpha = 50/s, NW = 2 servers reach
        unavailability < 1e-5 (the paper's "5 min/year"); with
        alpha = 100/s it takes NW = 4 (NW = 3 misses by 3.5x, NW = 4 sits
        right at the threshold on the paper's log plot)."""
        target = 1e-5  # the paper's own reading of 5 min/year

        def unavailability(nw, alpha):
            return web_model(nw, 1e-3, alpha, coverage=0.98).unavailability()

        assert unavailability(2, 50.0) < target
        assert unavailability(1, 50.0) > target
        assert unavailability(3, 100.0) > 3 * target
        assert unavailability(4, 100.0) == pytest.approx(target, rel=0.1)
        assert unavailability(5, 100.0) < target

    def test_five_minutes_requirement_lambda_1e2_unreachable(self):
        """With lambda = 1e-2/h the 5 min/year budget cannot be met."""
        target = 1.0 - availability_from_downtime(5.0, unit="minutes")
        best = min(
            web_model(nw, 1e-2, 50.0, coverage=0.98).unavailability()
            for nw in range(1, 11)
        )
        assert best > target

    def test_three_servers_under_one_hour_per_year(self):
        """Section 5.1: three servers keep downtime under 1 h/year for
        lambda in [1e-4, 1e-2] when the load is below one."""
        target = 1.0 - availability_from_downtime(1.0, unit="hours")
        for lam in (1e-4, 1e-3, 1e-2):
            for alpha in (50.0, 90.0):
                ua = web_model(3, lam, alpha, coverage=0.98).unavailability()
                assert ua < target, (lam, alpha)

    def test_imperfect_coverage_u_shape(self):
        """Fig. 12: the unavailability curve turns back up past NW ~ 4."""
        curve = [
            web_model(nw, 1e-3, 100.0, coverage=0.98).unavailability()
            for nw in range(1, 11)
        ]
        best_index = curve.index(min(curve))
        assert 1 <= best_index <= 4  # NW in {2..5}
        assert curve[-1] > curve[best_index]

    def test_perfect_coverage_no_reversal(self):
        """Fig. 11: with perfect coverage more servers never hurt."""
        curve = [
            web_model(nw, 1e-3, 100.0).unavailability() for nw in range(1, 11)
        ]
        assert all(a >= b for a, b in zip(curve, curve[1:]))

    def test_failure_rate_matters_only_under_light_load(self):
        """Section 5.1: at load >= 1 the failure rate barely moves the
        result; under light load it dominates."""
        light_spread = web_model(2, 1e-2, 50.0).unavailability() / web_model(
            2, 1e-4, 50.0
        ).unavailability()
        heavy_spread = web_model(1, 1e-2, 150.0).unavailability() / web_model(
            1, 1e-4, 150.0
        ).unavailability()
        assert light_spread > 50.0
        assert heavy_spread < 1.05


class TestTable8:
    PAPER_A = {1: 0.84235, 2: 0.96509, 3: 0.97867, 4: 0.98004, 5: 0.98018,
               10: 0.98020}
    PAPER_B = {1: 0.76875, 2: 0.95529, 3: 0.97593, 4: 0.97802, 5: 0.97822,
               10: 0.97825}

    @pytest.fixture(scope="class")
    def sweeps(self):
        ta = TravelAgencyModel()
        counts = [1, 2, 3, 4, 5, 10]
        return (
            dict(ta.reservation_sweep(CLASS_A, counts)),
            dict(ta.reservation_sweep(CLASS_B, counts)),
        )

    def test_class_a_within_published_rounding(self, sweeps):
        ours, _ = sweeps
        for n, paper in self.PAPER_A.items():
            assert ours[n] == pytest.approx(paper, abs=2.5e-3), n

    def test_class_b_within_documented_tolerance(self, sweeps):
        _, ours = sweeps
        for n, paper in self.PAPER_B.items():
            assert ours[n] == pytest.approx(paper, abs=1.5e-2), n

    def test_shape_rise_then_saturate(self, sweeps):
        for ours in sweeps:
            values = [ours[n] for n in (1, 2, 3, 4, 5, 10)]
            assert values == sorted(values)
            assert values[1] - values[0] > 0.1       # big jump 1 -> 2
            assert values[5] - values[4] < 1e-4      # flat 5 -> 10

    def test_class_b_below_class_a(self, sweeps):
        ours_a, ours_b = sweeps
        for n in (1, 2, 3, 4, 5, 10):
            assert ours_b[n] < ours_a[n]

    def test_steady_downtime_magnitude(self, sweeps):
        """~173 h/year (class A) and ~190 h/year (class B) at N >= 5.

        Our eq.-(10) evaluation gives the same order: within ~25% of the
        quoted hours (the residual is the published-rounding mismatch
        documented in EXPERIMENTS.md)."""
        ours_a, ours_b = sweeps
        hours_a = (1 - ours_a[5]) * 8760.0
        hours_b = (1 - ours_b[5]) * 8760.0
        assert hours_a == pytest.approx(173.0, rel=0.25)
        assert hours_b == pytest.approx(190.0, rel=0.75)
        assert hours_b > hours_a
