"""Tests for the paper's closed-form equations (Tables 3-6, eq. 10)."""

import pytest

from repro.errors import ValidationError
from repro.ta import TAParameters
from repro.ta import equations as eq


class TestTable3External:
    def test_one_of_n(self):
        assert eq.external_service_availability(0.9, 1) == pytest.approx(0.9)
        assert eq.external_service_availability(0.9, 3) == pytest.approx(0.999)

    def test_saturation(self):
        assert eq.external_service_availability(0.9, 10) == pytest.approx(
            1.0, abs=1e-9
        )


class TestTable4Internal:
    def test_application_basic(self):
        assert eq.application_service_availability(0.996, redundant=False) == 0.996

    def test_application_redundant(self):
        assert eq.application_service_availability(0.996, redundant=True) == (
            pytest.approx(1 - 0.004**2)
        )

    def test_database_basic(self):
        assert eq.database_service_availability(0.996, 0.9, redundant=False) == (
            pytest.approx(0.996 * 0.9)
        )

    def test_database_redundant(self):
        expected = (1 - 0.004**2) * (1 - 0.1**2)
        assert eq.database_service_availability(0.996, 0.9, redundant=True) == (
            pytest.approx(expected)
        )


class TestServiceAvailabilities:
    def test_all_services_present(self, paper_params):
        services = eq.service_availabilities(paper_params)
        assert set(services) == {
            "net", "lan", "web", "application", "database",
            "flight", "hotel", "car", "payment",
        }

    def test_web_matches_table7_quote(self, paper_params):
        services = eq.service_availabilities(paper_params)
        assert services["web"] == pytest.approx(0.999995587, abs=5e-10)

    def test_basic_architecture_weaker(self, paper_params):
        redundant = eq.service_availabilities(paper_params, "redundant")
        basic = eq.service_availabilities(paper_params, "basic")
        assert basic["application"] < redundant["application"]
        assert basic["database"] < redundant["database"]
        assert basic["web"] < redundant["web"]


class TestTable6Functions:
    def test_home_equation(self, paper_params):
        services = eq.service_availabilities(paper_params)
        functions = eq.function_availabilities(paper_params, services)
        expected = 0.9966 * 0.9966 * services["web"]
        assert functions["home"] == pytest.approx(expected, rel=1e-12)

    def test_book_equals_search(self, paper_params):
        services = eq.service_availabilities(paper_params)
        functions = eq.function_availabilities(paper_params, services)
        assert functions["book"] == functions["search"]

    def test_browse_between_home_and_search(self, paper_params):
        services = eq.service_availabilities(paper_params)
        functions = eq.function_availabilities(paper_params, services)
        assert functions["search"] < functions["browse"] < functions["home"]

    def test_pay_includes_payment_system(self, paper_params):
        services = eq.service_availabilities(paper_params)
        functions = eq.function_availabilities(paper_params, services)
        common = services["net"] * services["lan"]
        expected = (
            common
            * services["web"]
            * services["application"]
            * services["database"]
            * services["payment"]
        )
        assert functions["pay"] == pytest.approx(expected, rel=1e-12)


class TestEquation10:
    def test_requires_all_twelve_scenarios(self, paper_params):
        with pytest.raises(ValidationError, match="missing scenario"):
            eq.user_availability(paper_params, {1: 1.0})

    def test_reduces_to_home_function_when_only_scenario_1(self, paper_params):
        pi = {i: 0.0 for i in range(1, 13)}
        pi[1] = 1.0
        services = eq.service_availabilities(paper_params)
        functions = eq.function_availabilities(paper_params, services)
        assert eq.user_availability(paper_params, pi) == pytest.approx(
            functions["home"], rel=1e-12
        )

    def test_pay_scenarios_weighted_by_payment_availability(self, paper_params):
        pi_book = {i: 0.0 for i in range(1, 13)}
        pi_book[7] = 1.0
        pi_pay = {i: 0.0 for i in range(1, 13)}
        pi_pay[10] = 1.0
        a_book = eq.user_availability(paper_params, pi_book)
        a_pay = eq.user_availability(paper_params, pi_pay)
        assert a_pay == pytest.approx(
            a_book * paper_params.payment_availability, rel=1e-12
        )
