"""Tests for the revenue-loss analysis."""

import pytest

from repro.errors import ValidationError
from repro.ta import CLASS_A, CLASS_B, RevenueModel, TravelAgencyModel
from repro.ta.economics import SECONDS_PER_YEAR


@pytest.fixture(scope="module")
def ta():
    return TravelAgencyModel()


class TestRevenueModel:
    def test_sessions_per_year(self):
        model = RevenueModel(session_rate=100.0, average_revenue=100.0)
        assert model.sessions_per_year() == pytest.approx(100.0 * SECONDS_PER_YEAR)

    def test_estimate_structure(self, ta):
        model = RevenueModel(100.0, 100.0)
        estimate = model.estimate(ta.user_availability(CLASS_A))
        assert estimate.user_class == "class A"
        assert estimate.payment_scenario_share == pytest.approx(0.075)
        assert estimate.lost_revenue_per_year == pytest.approx(
            estimate.lost_payment_sessions_per_year * 100.0
        )

    def test_loss_matches_sc4_contribution(self, ta):
        """The lost-session probability is exactly the SC4 contribution."""
        model = RevenueModel(100.0, 100.0)
        result = ta.user_availability(CLASS_B)
        estimate = model.estimate(result)
        sc4 = ta.category_breakdown(CLASS_B)["SC4"]
        assert estimate.lost_payment_sessions_per_year == pytest.approx(
            model.sessions_per_year() * sc4, rel=1e-12
        )

    def test_class_b_loses_more(self, ta):
        """Section 5.2: class B's buying profile amplifies revenue loss."""
        model = RevenueModel(100.0, 100.0)
        loss_a = model.estimate(ta.user_availability(CLASS_A))
        loss_b = model.estimate(ta.user_availability(CLASS_B))
        ratio = (
            loss_b.lost_payment_sessions_per_year
            / loss_a.lost_payment_sessions_per_year
        )
        assert 2.2 < ratio < 3.2

    def test_zero_revenue_allowed(self, ta):
        model = RevenueModel(100.0, 0.0)
        estimate = model.estimate(ta.user_availability(CLASS_A))
        assert estimate.lost_revenue_per_year == 0.0

    def test_rejects_bad_rates(self):
        with pytest.raises(ValidationError):
            RevenueModel(0.0, 100.0)
        with pytest.raises(ValidationError):
            RevenueModel(100.0, -1.0)
