"""Tests for the Table 1 user classes and scenario structure."""

import pytest

from repro.ta import (
    CLASS_A,
    CLASS_B,
    FUNCTIONS,
    PAPER_SCENARIO_LABELS,
    SCENARIO_FUNCTION_SETS,
    scenario_category,
)
from repro.ta.userclasses import BOOK, BROWSE, HOME, PAY, SEARCH


class TestScenarioStructure:
    def test_twelve_scenarios(self):
        assert len(SCENARIO_FUNCTION_SETS) == 12
        assert len(PAPER_SCENARIO_LABELS) == 12

    def test_scenarios_are_consistent_with_graph_constraints(self):
        for functions in SCENARIO_FUNCTION_SETS.values():
            if PAY in functions:
                assert BOOK in functions
            if BOOK in functions:
                assert SEARCH in functions
            assert HOME in functions or BROWSE in functions

    def test_function_order(self):
        assert FUNCTIONS == (HOME, BROWSE, SEARCH, BOOK, PAY)

    def test_labels_reference_functions(self):
        assert PAPER_SCENARIO_LABELS[1] == "St-Ho-Ex"
        assert "Pa" in PAPER_SCENARIO_LABELS[12]


class TestUserClasses:
    def test_probabilities_sum_to_one(self):
        for users in (CLASS_A, CLASS_B):
            assert sum(s.probability for s in users.scenarios) == pytest.approx(
                1.0, abs=1e-12
            )

    def test_table1_spot_values(self):
        assert CLASS_A.distribution.probability_of(
            SCENARIO_FUNCTION_SETS[2]
        ) == pytest.approx(0.267)
        assert CLASS_B.distribution.probability_of(
            SCENARIO_FUNCTION_SETS[5]
        ) == pytest.approx(0.204)

    def test_class_b_reaches_backend_more(self):
        """Section 3.1: 80% of class B sessions invoke Search/Book/Pay,
        about 50% for class A."""
        def backend_share(users):
            return sum(
                s.probability
                for s in users.scenarios
                if SEARCH in s.functions
            )

        assert backend_share(CLASS_A) == pytest.approx(0.52, abs=1e-9)
        assert backend_share(CLASS_B) == pytest.approx(0.792, abs=1e-9)

    def test_names(self):
        assert CLASS_A.name == "class A"
        assert CLASS_B.name == "class B"


class TestCategories:
    def test_category_assignment(self):
        expectations = {
            1: "SC1", 2: "SC1", 3: "SC1",
            4: "SC2", 5: "SC2", 6: "SC2",
            7: "SC3", 8: "SC3", 9: "SC3",
            10: "SC4", 11: "SC4", 12: "SC4",
        }
        for scenario in CLASS_A.scenarios:
            matching = [
                i
                for i, fs in SCENARIO_FUNCTION_SETS.items()
                if fs == scenario.functions
            ]
            assert len(matching) == 1
            assert scenario_category(scenario) == expectations[matching[0]]

    def test_category_masses(self):
        groups_b = CLASS_B.distribution.group_by(scenario_category)
        assert groups_b["SC1"] == pytest.approx(0.208)
        assert groups_b["SC2"] == pytest.approx(0.440)
        assert groups_b["SC3"] == pytest.approx(0.149)
        assert groups_b["SC4"] == pytest.approx(0.203)
