"""Tests for TAParameters."""

import pytest

from repro.errors import ValidationError
from repro.ta import TAParameters


class TestDefaults:
    def test_table7_values(self):
        p = TAParameters()
        assert p.internet_availability == 0.9966
        assert p.lan_availability == 0.9966
        assert p.application_host_availability == 0.996
        assert p.database_host_availability == 0.996
        assert p.disk_availability == 0.9
        assert p.payment_availability == 0.9
        assert p.reservation_availability == 0.9
        assert (p.q_cache, p.q_application) == (0.2, 0.8)
        assert (p.q_app_direct, p.q_app_database) == (0.4, 0.6)

    def test_section52_web_configuration(self):
        p = TAParameters()
        assert p.web_servers == 4
        assert p.web_coverage == 0.98
        assert p.arrival_rate == 100.0
        assert p.service_rate == 100.0
        assert p.buffer_size == 10
        assert p.web_failure_rate == 1e-4
        assert p.web_repair_rate == 1.0
        assert p.web_reconfiguration_rate == 12.0

    def test_offered_load(self):
        assert TAParameters().offered_load == 1.0


class TestValidation:
    def test_branch_probabilities_must_be_complementary(self):
        with pytest.raises(ValidationError, match="q_cache"):
            TAParameters(q_cache=0.3, q_application=0.8)
        with pytest.raises(ValidationError, match="q_app_direct"):
            TAParameters(q_app_direct=0.5, q_app_database=0.6)

    def test_probability_bounds(self):
        with pytest.raises(ValidationError):
            TAParameters(disk_availability=1.1)

    def test_positive_counts(self):
        with pytest.raises(ValidationError):
            TAParameters(n_flight=0)

    def test_positive_rates(self):
        with pytest.raises(ValidationError):
            TAParameters(arrival_rate=0.0)


class TestHelpers:
    def test_replace_revalidates(self):
        p = TAParameters()
        q = p.replace(disk_availability=0.95)
        assert q.disk_availability == 0.95
        assert p.disk_availability == 0.9  # original untouched
        with pytest.raises(ValidationError):
            p.replace(disk_availability=2.0)

    def test_with_reservation_systems(self):
        p = TAParameters().with_reservation_systems(3)
        assert (p.n_flight, p.n_hotel, p.n_car) == (3, 3, 3)
