"""Tests for the TA architecture assembly."""

import pytest

from repro.errors import ValidationError
from repro.ta import TAParameters, build_travel_agency
from repro.ta import equations as eq
from repro.ta.architecture import web_service_model


class TestBuild:
    def test_functions_and_services_present(self):
        model = build_travel_agency()
        assert set(model.functions) == {"home", "browse", "search", "book", "pay"}
        assert set(model.services) == {
            "net", "lan", "web", "application", "database",
            "flight", "hotel", "car", "payment",
        }

    def test_common_services(self):
        model = build_travel_agency()
        assert set(model.common_services) == {"net", "lan"}

    def test_reservation_resources_scale_with_counts(self):
        params = TAParameters(n_flight=2, n_hotel=3, n_car=1)
        model = build_travel_agency(params)
        flights = [r for r in model.resources if r.startswith("flight-system")]
        hotels = [r for r in model.resources if r.startswith("hotel-system")]
        cars = [r for r in model.resources if r.startswith("car-system")]
        assert (len(flights), len(hotels), len(cars)) == (2, 3, 1)

    def test_unknown_architecture(self):
        with pytest.raises(ValidationError, match="architecture"):
            build_travel_agency(architecture="triple-modular")


class TestServiceAvailabilitiesMatchClosedForms:
    @pytest.mark.parametrize("architecture", ["basic", "redundant"])
    def test_engine_matches_equations(self, paper_params, architecture):
        model = build_travel_agency(paper_params, architecture)
        engine = model.service_availabilities()
        closed = eq.service_availabilities(paper_params, architecture)
        for name, expected in closed.items():
            assert engine[name] == pytest.approx(expected, rel=1e-12), name

    def test_function_availabilities_match_table6(self, paper_params):
        model = build_travel_agency(paper_params)
        services = eq.service_availabilities(paper_params)
        closed = eq.function_availabilities(paper_params, services)
        for name, expected in closed.items():
            assert model.function_availability(name) == pytest.approx(
                expected, rel=1e-12
            ), name

    def test_table2_mapping(self, paper_params):
        """The function -> service mapping of Table 2."""
        model = build_travel_agency(paper_params)
        mapping = model.function_service_mapping()
        common = {"net", "lan"}
        assert mapping["home"] == common | {"web"}
        assert mapping["browse"] == common | {"web", "application", "database"}
        assert mapping["search"] == common | {
            "web", "application", "database", "flight", "hotel", "car",
        }
        assert mapping["book"] == mapping["search"]
        assert mapping["pay"] == common | {
            "web", "application", "database", "payment",
        }


class TestWebServiceModel:
    def test_basic_is_single_server(self, paper_params):
        model = web_service_model(paper_params, "basic")
        assert model.servers == 1
        assert model.has_perfect_coverage

    def test_redundant_uses_configured_coverage(self, paper_params):
        model = web_service_model(paper_params, "redundant")
        assert model.servers == 4
        assert model.coverage == 0.98

    def test_unknown_architecture(self, paper_params):
        with pytest.raises(ValidationError):
            web_service_model(paper_params, "hexagonal")
