"""Tests for the streaming SLO monitor: windows, alerts, budgets, CIs."""

import numpy as np
import pytest

from repro.errors import ObservabilityError, ValidationError
from repro.obs.slo import (
    BurnRateWindow,
    PoissonSessionSampler,
    SLOMonitor,
    format_slo_report,
)
from repro.resilience import ScheduledOutage, run_campaign
from repro.ta import CLASS_A, CLASS_B, TravelAgencyModel


class TestBurnRateWindow:
    def test_empty_window_is_fully_available(self):
        window = BurnRateWindow(10.0)
        assert window.availability() == 1.0
        assert window.burn_rate(0.99) == 0.0

    def test_availability_is_evidence_ratio(self):
        window = BurnRateWindow(10.0)
        window.add(1.0, good=0.5, total=1.0)
        window.add(2.0, good=1.0, total=1.0)
        assert window.availability() == pytest.approx(0.75)

    def test_eviction_slides_the_window(self):
        window = BurnRateWindow(10.0)
        window.add(0.0, good=0.0, total=5.0)  # old outage evidence
        window.add(20.0, good=1.0, total=1.0)  # slid far past it
        assert window.availability() == 1.0

    def test_burn_rate_measures_budget_spend(self):
        window = BurnRateWindow(10.0)
        window.add(1.0, good=0.95, total=1.0)  # 5% down, 1% budget
        assert window.burn_rate(0.99) == pytest.approx(5.0)

    def test_zero_budget_objective(self):
        window = BurnRateWindow(10.0)
        window.add(1.0, good=1.0, total=1.0)
        assert window.burn_rate(1.0) == 0.0
        window.add(2.0, good=0.0, total=1.0)
        assert window.burn_rate(1.0) == float("inf")

    def test_rejects_non_positive_length(self):
        with pytest.raises(ValidationError):
            BurnRateWindow(0.0)


class TestSLOMonitorValidation:
    def test_rejects_objective_outside_unit_interval(self):
        for objective in (0.0, 1.0, -0.5, 1.5):
            with pytest.raises(ObservabilityError, match="objective"):
                SLOMonitor(objective=objective)

    def test_rejects_empty_windows(self):
        with pytest.raises(ObservabilityError, match="window"):
            SLOMonitor(objective=0.99, windows=())

    def test_rejects_bad_session_batch(self):
        monitor = SLOMonitor(objective=0.99)
        with pytest.raises(ObservabilityError, match="successes"):
            monitor.sessions_at(1.0, successes=3, trials=2)

    def test_windows_sorted_ascending(self):
        monitor = SLOMonitor(objective=0.99, windows=(500.0, 50.0))
        assert [w.length for w in monitor.windows] == [50.0, 500.0]


class TestSLOMonitorAccounting:
    def test_cumulative_availability_is_exact_despite_coalescing(self):
        # Many tiny intervals, far below the evaluation resolution: the
        # coalesced monitor must still report the exact time average.
        monitor = SLOMonitor(objective=0.99, windows=(10.0, 100.0))
        for i in range(1000):
            monitor.interval(i * 0.01, (i + 1) * 0.01, 0.9)
        assert monitor.elapsed == pytest.approx(10.0)
        assert monitor.availability() == pytest.approx(0.9)

    def test_budget_consumed_pro_rated(self):
        monitor = SLOMonitor(objective=0.99, windows=(10.0,))
        monitor.interval(0.0, 100.0, 0.98)  # burning 2x the 1% budget
        assert monitor.budget_consumed() == pytest.approx(2.0)

    def test_session_only_monitor_uses_success_fraction(self):
        monitor = SLOMonitor(objective=0.9, windows=(10.0,))
        for t in range(10):
            monitor.session(float(t), t >= 2)  # 8 of 10 served
        assert monitor.availability() == pytest.approx(0.8)
        assert monitor.sessions == 10
        assert monitor.served == 8

    def test_no_evidence_is_nan_and_zero_budget(self):
        monitor = SLOMonitor(objective=0.99)
        assert monitor.availability() != monitor.availability()
        assert monitor.budget_consumed() == 0.0
        assert monitor.confidence_interval() is None

    def test_confidence_interval_matches_estimator(self):
        from repro.measurement.estimators import (
            availability_confidence_interval,
        )

        monitor = SLOMonitor(objective=0.99)
        monitor.sessions_at(1.0, successes=90, trials=100)
        assert monitor.confidence_interval() == (
            availability_confidence_interval(90, 100, 0.95)
        )

    def test_summary_collects_everything(self):
        monitor = SLOMonitor(objective=0.9, name="test")
        monitor.interval(0.0, 10.0, 1.0)
        monitor.sessions_at(10.0, successes=9, trials=10)
        summary = monitor.summary()
        assert summary.name == "test"
        assert summary.objective == 0.9
        assert summary.elapsed == 10.0
        assert summary.sessions == 10
        assert summary.served == 9
        assert summary.alerts_fired == 0
        assert not summary.alert_active


class TestAlerting:
    def outage_monitor(self):
        monitor = SLOMonitor(
            objective=0.99, windows=(10.0, 100.0), burn_threshold=5.0
        )
        for t in range(200):
            monitor.interval(float(t), float(t + 1), 1.0)
        return monitor

    def test_fire_needs_every_window(self):
        monitor = self.outage_monitor()
        # A 2-unit blip: the short window burns hot, the long one never
        # reaches the threshold, so no alert fires.
        monitor.interval(200.0, 202.0, 0.0)
        monitor.interval(202.0, 250.0, 1.0)
        assert monitor.alerts == []

    def test_sustained_outage_fires_then_clears(self):
        monitor = self.outage_monitor()
        for t in range(200, 240):
            monitor.interval(float(t), float(t + 1), 0.0)
        kinds = [a.kind for a in monitor.alerts]
        assert kinds == ["fire"]
        assert monitor.alert_active
        for t in range(240, 300):
            monitor.interval(float(t), float(t + 1), 1.0)
        kinds = [a.kind for a in monitor.alerts]
        assert kinds == ["fire", "clear"]
        assert not monitor.alert_active

    def test_alert_records_rates_and_threshold(self):
        monitor = self.outage_monitor()
        for t in range(200, 240):
            monitor.interval(float(t), float(t + 1), 0.0)
        (alert,) = monitor.alerts
        assert alert.kind == "fire"
        assert alert.threshold == 5.0
        assert len(alert.burn_rates) == 2
        assert all(rate >= 5.0 for rate in alert.burn_rates)


class TestPoissonSessionSampler:
    def test_sessions_follow_interval_availability(self):
        monitor = SLOMonitor(objective=0.99, windows=(100.0,))
        sampler = PoissonSessionSampler(
            monitor, rate=5.0, rng=np.random.default_rng(0)
        )
        sampler.interval(0.0, 1000.0, 0.9)
        assert monitor.sessions > 0
        assert monitor.served / monitor.sessions == pytest.approx(
            0.9, abs=0.02
        )

    def test_degenerate_availabilities_skip_binomial(self):
        monitor = SLOMonitor(objective=0.99, windows=(100.0,))
        sampler = PoissonSessionSampler(
            monitor, rate=5.0, rng=np.random.default_rng(0)
        )
        sampler.interval(0.0, 100.0, 0.0)
        assert monitor.served == 0
        down_trials = monitor.sessions
        sampler.interval(100.0, 200.0, 1.0)
        assert monitor.served == monitor.sessions - down_trials

    def test_rejects_non_positive_rate(self):
        monitor = SLOMonitor(objective=0.99)
        with pytest.raises(ValidationError):
            PoissonSessionSampler(monitor, rate=0.0, rng=np.random.default_rng(0))


class TestFormatSLOReport:
    def test_renders_summary_and_alert_log(self):
        monitor = SLOMonitor(
            objective=0.99, windows=(10.0, 100.0), burn_threshold=5.0,
            name="class A",
        )
        for t in range(200):
            monitor.interval(float(t), float(t + 1), 1.0)
        for t in range(200, 240):
            monitor.interval(float(t), float(t + 1), 0.0)
        text = format_slo_report(
            [monitor.summary()],
            alerts=[(monitor.name, a) for a in monitor.alerts],
        )
        assert "class A" in text
        assert "FIRE" in text
        assert "0.990000" in text

    def test_report_without_sessions_shows_na(self):
        monitor = SLOMonitor(objective=0.99, name="x")
        monitor.interval(0.0, 10.0, 1.0)
        text = format_slo_report([monitor.summary()])
        assert "n/a" in text


class TestCampaignIntegration:
    """The ISSUE acceptance scenario, end to end."""

    def test_monitored_campaign_agrees_with_eq10_within_ci(self):
        model = TravelAgencyModel().hierarchical_model
        for user_class in (CLASS_A, CLASS_B):
            analytic = model.user_availability(user_class).availability
            monitor = SLOMonitor(objective=analytic, name=user_class.name)
            sampler = PoissonSessionSampler(
                monitor, rate=2.0, rng=np.random.default_rng(42)
            )
            run_campaign(
                model, user_class, horizon=3000.0, replications=4,
                seed=11, observer=sampler,
            )
            low, high = monitor.confidence_interval()
            assert low <= analytic <= high, (
                f"{user_class.name}: eq.-(10) value {analytic} outside "
                f"the monitor's 95% CI [{low}, {high}]"
            )

    def test_alert_fires_during_injected_outage_and_clears_after(self):
        model = TravelAgencyModel().hierarchical_model
        analytic = model.user_availability(CLASS_A).availability
        monitor = SLOMonitor(
            objective=analytic, windows=(50.0, 500.0), burn_threshold=5.0,
            name=CLASS_A.name,
        )
        outage = ScheduledOutage(
            frozenset({"internet-link"}), start=1000.0, duration=60.0
        )
        run_campaign(
            model, CLASS_A, outage, horizon=2500.0, replications=1,
            seed=3, observer=monitor,
        )
        fires = [a for a in monitor.alerts if a.kind == "fire"]
        clears = [a for a in monitor.alerts if a.kind == "clear"]
        assert fires, "no alert fired during the injected outage"
        # Fired while the outage was in force...
        assert any(1000.0 <= a.time <= 1120.0 for a in fires)
        # ...and cleared again after restore.
        assert clears and clears[-1].time > fires[0].time
        assert not monitor.alert_active

    def test_campaign_timeline_spans_replications(self):
        model = TravelAgencyModel().hierarchical_model
        analytic = model.user_availability(CLASS_A).availability
        monitor = SLOMonitor(objective=analytic)
        run_campaign(
            model, CLASS_A, horizon=400.0, replications=3, seed=5,
            observer=monitor,
        )
        assert monitor.elapsed == pytest.approx(1200.0)

    def test_observer_with_workers_rejected(self):
        model = TravelAgencyModel().hierarchical_model
        monitor = SLOMonitor(objective=0.9)
        with pytest.raises(ValidationError, match="workers"):
            run_campaign(
                model, CLASS_A, horizon=100.0, replications=2, seed=1,
                workers=2, observer=monitor,
            )

    def test_observer_does_not_change_results(self):
        model = TravelAgencyModel().hierarchical_model
        monitor = SLOMonitor(objective=0.9)
        watched = run_campaign(
            model, CLASS_A, horizon=500.0, replications=2, seed=9,
            observer=monitor,
        )
        plain = run_campaign(
            model, CLASS_A, horizon=500.0, replications=2, seed=9,
        )
        assert [r.average_user_availability for r in watched.replications] \
            == [r.average_user_availability for r in plain.replications]


class TestSessionHooks:
    def test_monte_carlo_sessions_stream_into_monitor(self):
        model = TravelAgencyModel().hierarchical_model
        from repro.sim import estimate_user_availability

        monitor = SLOMonitor(objective=0.9)
        estimate = estimate_user_availability(
            model, CLASS_A, 400, np.random.default_rng(1),
            on_session=monitor.session,
        )
        assert monitor.sessions == 400
        assert monitor.availability() == pytest.approx(estimate)

    def test_retry_simulation_reports_final_outcomes(self):
        from repro.resilience import RetryPolicy
        from repro.sim import estimate_user_availability_with_retries

        model = TravelAgencyModel().hierarchical_model
        monitor = SLOMonitor(objective=0.9)
        result = estimate_user_availability_with_retries(
            model, CLASS_A, RetryPolicy(max_retries=2, persistence=0.8),
            sessions=300, rng=np.random.default_rng(2),
            on_session=monitor.session,
        )
        assert monitor.sessions == 300
        assert monitor.served == round(result.served_fraction * 300)
