"""Integration: instrumentation threaded through kernel, solvers, engine,
campaigns, journal, and the CLI.

The overarching contract under test: observability is **additive**.
Every output — sweep stdout, engine results, campaign values — must be
bit-identical with and without ``--metrics``/``--trace``; the registry
and trace are a pure side channel.
"""

from math import sqrt

import numpy as np
import pytest

from repro.cli import main
from repro.engine import EvaluationEngine
from repro.markov.solvers import steady_state
from repro.obs import (
    MetricsRegistry,
    Tracer,
    active_metrics,
    active_tracer,
    instrumented,
    read_trace,
)
from repro.sim import Simulator


class TestAmbientContext:
    def test_default_is_noop(self):
        assert active_metrics() is None
        assert active_tracer() is None

    def test_instrumented_scope_restores_previous(self):
        registry = MetricsRegistry()
        with instrumented(metrics=registry):
            assert active_metrics() is registry
            inner = MetricsRegistry()
            with instrumented(metrics=inner):
                assert active_metrics() is inner
            assert active_metrics() is registry
        assert active_metrics() is None


class TestSimulatorInstrumentation:
    def _drive(self, registry):
        sim = Simulator(metrics=registry)
        for delay in (1.0, 2.0, 3.0):
            sim.schedule(delay, lambda: None)
        sim.run()
        return sim

    def test_event_and_depth_metrics(self):
        registry = MetricsRegistry()
        self._drive(registry)
        assert registry.value("sim_events") == 3
        assert registry.value("sim_queue_depth_max") == 3
        assert registry.get("sim_queue_depth").count == 3

    def test_per_event_type_histograms(self):
        registry = MetricsRegistry()
        self._drive(registry)
        histograms = [
            m for m in registry if m.name == "sim_event_seconds"
        ]
        assert sum(h.count for h in histograms) == 3

    def test_ambient_fallback(self):
        registry = MetricsRegistry()
        with instrumented(metrics=registry):
            sim = Simulator()
            sim.schedule(1.0, lambda: None)
            sim.run()
        assert registry.value("sim_events") == 1

    def test_uninstrumented_simulator_unchanged(self):
        sim = Simulator()
        hits = []
        sim.schedule(2.0, lambda: hits.append(sim.now))
        sim.schedule(1.0, lambda: hits.append(sim.now))
        sim.run()
        assert hits == [1.0, 2.0]
        assert sim.events_processed == 2


class TestSolverInstrumentation:
    Q = np.array([[-1.0, 1.0], [2.0, -2.0]])

    def test_solve_metrics(self):
        registry = MetricsRegistry()
        with instrumented(metrics=registry):
            pi = steady_state(self.Q)
        assert pi == pytest.approx([2 / 3, 1 / 3])
        assert registry.value("ctmc_solves", strategy="GTH elimination") == 1
        assert registry.get("ctmc_steady_state_seconds").count == 1

    def test_solver_outputs_unchanged_by_instrumentation(self):
        bare = steady_state(self.Q)
        with instrumented(metrics=MetricsRegistry()):
            instrumented_pi = steady_state(self.Q)
        assert instrumented_pi.tolist() == bare.tolist()

    def test_escalation_attempt_counters(self):
        from repro.runtime import solve_steady_state_with_escalation

        registry = MetricsRegistry()
        with instrumented(metrics=registry):
            _, attempts = solve_steady_state_with_escalation(self.Q)
        accepted = sum(1 for a in attempts if a.outcome == "accepted")
        assert registry.value(
            "solver_escalation_attempts",
            strategy=attempts[-1].strategy,
            outcome="accepted",
        ) == accepted


class TestEngineInstrumentation:
    def test_serial_task_accounting(self):
        registry = MetricsRegistry()
        engine = EvaluationEngine(metrics=registry)
        result = engine.map(sqrt, [1.0, 4.0, 9.0], phase="demo")
        assert result.outputs == (1.0, 2.0, 3.0)
        assert registry.value("engine_tasks", phase="demo") == 3
        assert registry.value("engine_tasks_executed", phase="demo") == 3
        assert registry.get("engine_task_seconds", phase="demo").count == 3

    def test_cache_counters_reconcile_with_result_stats(self):
        from repro.engine import canonical_key

        registry = MetricsRegistry()
        engine = EvaluationEngine(metrics=registry)
        keys = [canonical_key("sqrt", x=x) for x in (1.0, 4.0)]
        first = engine.map(sqrt, [1.0, 4.0], keys=keys)
        second = engine.map(sqrt, [1.0, 4.0], keys=keys)
        stats = [first.cache_stats, second.cache_stats]
        assert registry.value("engine_cache_lookups") == sum(
            s.lookups for s in stats
        )
        assert registry.value("engine_cache_hits") == sum(
            s.hits for s in stats
        )
        assert registry.value("engine_cache_misses") == sum(
            s.misses for s in stats
        )
        cached = len(second.outputs) - second.executed - second.restored
        assert registry.value("engine_tasks_cached", phase="batch") == cached == 2
        # hits + misses must account for every lookup.
        assert registry.value("engine_cache_hits") + registry.value(
            "engine_cache_misses"
        ) == registry.value("engine_cache_lookups")

    def test_parallel_outputs_bit_identical_and_metrics_merged(self):
        bare = EvaluationEngine(workers=2).map(sqrt, [1.0, 4.0, 9.0, 16.0])
        registry = MetricsRegistry()
        tracer = Tracer()
        engine = EvaluationEngine(workers=2, metrics=registry, tracer=tracer)
        result = engine.map(sqrt, [1.0, 4.0, 9.0, 16.0], phase="par")
        assert result.outputs == bare.outputs
        assert registry.value("engine_tasks", phase="par") == 4
        # Worker-side histograms merged back by name.
        assert registry.get("engine_task_seconds", phase="par").count == 4

    def test_parallel_worker_spans_parent_under_submits(self):
        registry = MetricsRegistry()
        tracer = Tracer()
        engine = EvaluationEngine(workers=2, metrics=registry, tracer=tracer)
        engine.map(sqrt, [1.0, 4.0, 9.0], phase="par")
        by_id = {e["args"]["span_id"]: e for e in tracer.events}
        tasks = [e for e in tracer.events if e["name"] == "engine task"]
        assert len(tasks) == 3
        for event in tasks:
            submit = by_id[event["args"]["parent_id"]]
            assert submit["name"] == "engine submit"
            batch = by_id[submit["args"]["parent_id"]]
            assert batch["name"] == "map par"

    def test_run_graph_metrics(self):
        from repro.engine import TaskGraph

        graph = TaskGraph()
        graph.add("a", sqrt, (16.0,))
        graph.add("b", sqrt, deps=("a",))
        registry = MetricsRegistry()
        engine = EvaluationEngine(metrics=registry)
        result = engine.run_graph(graph, phase="g")
        assert result["b"] == 2.0
        assert registry.value("engine_tasks", phase="g") == 2
        assert registry.value("engine_tasks_executed", phase="g") == 2


class TestCampaignAndJournalInstrumentation:
    def test_campaign_counters(self):
        from repro.resilience import run_campaign
        from repro.ta import CLASS_A, TravelAgencyModel

        model = TravelAgencyModel()
        registry = MetricsRegistry()
        with instrumented(metrics=registry):
            result = run_campaign(
                model.hierarchical_model, CLASS_A,
                horizon=300.0, replications=2, seed=3,
            )
        labels = {"scenario": "null", "user_class": "class A"}
        assert registry.value("campaign_replications", **labels) == 2
        assert registry.value(
            "campaign_resource_transitions", scenario="null"
        ) == sum(r.resource_transitions for r in result.replications)
        assert registry.value(
            "campaign_fault_events", scenario="null"
        ) == sum(r.fault_events_applied for r in result.replications)

    def test_journal_counters(self, tmp_path):
        from repro.runtime import Journal

        registry = MetricsRegistry()
        with instrumented(metrics=registry):
            with Journal(tmp_path / "j.jsonl") as journal:
                journal.append("a", x=1)
                journal.append("b", y=2)
        assert registry.value("journal_records") == 2
        assert registry.value("journal_fsyncs") == 2
        assert registry.value("journal_bytes") > 0

    def test_journal_fsync_disabled_not_counted(self, tmp_path):
        from repro.runtime import Journal

        registry = MetricsRegistry()
        with instrumented(metrics=registry):
            with Journal(tmp_path / "j.jsonl", fsync=False) as journal:
                journal.append("a")
        assert registry.value("journal_records") == 1
        assert registry.value("journal_fsyncs") == 0


class TestCliAcceptance:
    """The ISSUE acceptance run: sweep with --metrics/--trace."""

    CELLS = 3 * 4  # three failure-rate curves x --servers-max 4

    def _sweep(self, capsys, extra=()):
        code = main([
            "sweep", "--figure", "11", "--workers", "2",
            "--servers-max", "4", *extra,
        ])
        captured = capsys.readouterr()
        assert code == 0
        return captured.out

    def test_stdout_byte_identical_and_artifacts_valid(
        self, tmp_path, capsys
    ):
        metrics_path = tmp_path / "m.json"
        trace_path = tmp_path / "t.jsonl"
        plain = self._sweep(capsys)
        observed = self._sweep(capsys, (
            "--metrics", str(metrics_path), "--trace", str(trace_path),
        ))
        assert observed == plain  # byte-identical stdout

        registry = MetricsRegistry.load(metrics_path)
        phase = "grid failure rate x NW"
        assert registry.value("engine_tasks", phase=phase) == self.CELLS
        # Cache stats reconcile: every task was looked up, none hit.
        assert registry.value("engine_cache_lookups") == self.CELLS
        assert registry.value("engine_cache_hits") + registry.value(
            "engine_cache_misses"
        ) == registry.value("engine_cache_lookups")

        events = read_trace(trace_path)  # schema-validates every line
        by_id = {e["args"]["span_id"]: e for e in events}
        tasks = [e for e in events if e["name"] == "engine task"]
        assert len(tasks) == self.CELLS
        for event in tasks:
            assert by_id[event["args"]["parent_id"]]["name"] == (
                "engine submit"
            )

    def test_metrics_written_even_on_deadline_abort(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.json"
        code = main([
            "inject", "--user-class", "A", "--horizon", "4000",
            "--replications", "50", "--deadline", "0.3",
            "--metrics", str(metrics_path),
        ])
        capsys.readouterr()
        assert code == 2  # deadline exceeded
        assert metrics_path.exists()  # partial metrics still landed
        MetricsRegistry.load(metrics_path)  # and they parse

    def test_cli_leaves_no_ambient_instrumentation(self, tmp_path, capsys):
        self._sweep(capsys, ("--metrics", str(tmp_path / "m.json")))
        assert active_metrics() is None
        assert active_tracer() is None
