"""Tests for the shared bench statistic and baseline comparison."""

import pytest

from repro.errors import ObservabilityError
from repro.obs.regression import (
    compare_bench_records,
    format_bench_comparison,
    paired_ratio_overhead,
    time_variants,
)


class TestPairedRatioOverhead:
    def test_minimum_per_round_ratio(self):
        # Rounds: ratios 1.05, 1.5, 1.05 -> min is 5% overhead.
        assert paired_ratio_overhead(
            [1.0, 1.0, 2.0], [1.05, 1.5, 2.1]
        ) == pytest.approx(0.05)

    def test_single_noisy_round_cannot_fail_the_guard(self):
        # One slow variant round (3x) amid honest rounds: the statistic
        # stays at the honest 1%.
        overhead = paired_ratio_overhead(
            [1.0, 1.0, 1.0], [1.01, 3.0, 1.01]
        )
        assert overhead == pytest.approx(0.01)

    def test_lucky_baseline_round_can_go_negative(self):
        assert paired_ratio_overhead([1.0, 2.0], [1.1, 1.9]) < 0.0

    def test_rejects_mismatched_or_empty_rounds(self):
        with pytest.raises(ObservabilityError, match="rounds"):
            paired_ratio_overhead([1.0], [1.0, 2.0])
        with pytest.raises(ObservabilityError, match="rounds"):
            paired_ratio_overhead([], [])

    def test_rejects_non_positive_baseline(self):
        with pytest.raises(ObservabilityError, match="positive"):
            paired_ratio_overhead([0.0], [1.0])


class TestTimeVariants:
    def test_interleaves_and_computes_overheads(self):
        calls = []
        clock = iter(
            # round 1: base 1.0, fast 1.0, slow 2.0; round 2 same
            [1.0, 1.0, 2.0, 1.0, 1.0, 2.0]
        )

        def run(name):
            def runner():
                calls.append(name)
                return next(clock)
            return runner

        timing = time_variants(
            [("base", run("base")), ("fast", run("fast")),
             ("slow", run("slow"))],
            repeats=2,
        )
        # Interleaved: every variant once per round, in order.
        assert calls == ["base", "fast", "slow"] * 2
        assert timing.overhead["fast"] == pytest.approx(0.0)
        assert timing.overhead["slow"] == pytest.approx(1.0)
        assert timing.best["base"] == 1.0
        assert timing.overhead_of_best("slow", "base") == pytest.approx(1.0)

    def test_rejects_too_few_variants_and_duplicate_names(self):
        with pytest.raises(ObservabilityError, match="baseline"):
            time_variants([("only", lambda: 1.0)], repeats=2)
        with pytest.raises(ObservabilityError, match="unique"):
            time_variants(
                [("a", lambda: 1.0), ("a", lambda: 1.0)], repeats=2
            )


def record(**overrides):
    base = {
        "benchmark": "bench-x",
        "events": 1000,
        "seconds": {"bare": 1.0, "disabled": 1.01},
        "disabled_overhead": 0.01,
        "enabled_overhead": 0.50,
        "guard_threshold": 0.03,
        "guarded": ["disabled_overhead"],
        "guard_enforced": False,
    }
    base.update(overrides)
    return base


class TestCompareBenchRecords:
    def test_ok_within_guard(self):
        comparison = compare_bench_records(record(), record())
        assert comparison.ok
        assert comparison.benchmark == "bench-x"
        keys = [f.key for f in comparison.fields]
        assert "seconds.bare" in keys  # nested numerics flattened

    def test_guarded_field_breach_is_a_regression(self):
        comparison = compare_bench_records(
            record(), record(disabled_overhead=0.08)
        )
        assert not comparison.ok
        (finding,) = comparison.regressions
        assert "disabled_overhead" in finding

    def test_unguarded_fields_never_regress(self):
        # enabled_overhead is above the threshold in both records but
        # not in the guarded list: reported, never judged.
        comparison = compare_bench_records(
            record(), record(enabled_overhead=2.0)
        )
        assert comparison.ok

    def test_suffix_fallback_for_old_records(self):
        old = record()
        del old["guarded"]
        new = record(disabled_overhead=0.08)
        del new["guarded"]
        comparison = compare_bench_records(old, new)
        assert not comparison.ok

    def test_explicit_threshold_override(self):
        comparison = compare_bench_records(
            record(), record(disabled_overhead=0.08), threshold=0.10
        )
        assert comparison.ok

    def test_rejects_different_benchmarks(self):
        with pytest.raises(ObservabilityError, match="disagree"):
            compare_bench_records(record(), record(benchmark="bench-y"))

    def test_rejects_non_bench_records(self):
        with pytest.raises(ObservabilityError, match="benchmark"):
            compare_bench_records({"schema": "repro.obs.metrics/1"}, record())

    def test_requires_some_threshold(self):
        old, new = record(), record()
        del old["guard_threshold"], new["guard_threshold"]
        with pytest.raises(ObservabilityError, match="guard_threshold"):
            compare_bench_records(old, new)

    def test_format_names_verdict_and_regressions(self):
        comparison = compare_bench_records(
            record(), record(disabled_overhead=0.08)
        )
        text = format_bench_comparison(comparison)
        assert "1 regression(s)" in text
        assert "disabled_overhead" in text
        ok_text = format_bench_comparison(
            compare_bench_records(record(), record())
        )
        assert "ok" in ok_text

    def test_committed_baselines_parse(self):
        import json
        from pathlib import Path

        benchmarks = Path(__file__).resolve().parents[2] / "benchmarks"
        for name in ("BENCH_obs.json", "BENCH_slo.json"):
            doc = json.loads((benchmarks / name).read_text())
            comparison = compare_bench_records(doc, doc)
            assert comparison.ok  # a record never regresses against itself
            assert any(f.guarded for f in comparison.fields)
