"""Tests for the metrics registry: instruments, snapshots, exposition."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    DEFAULT_DEPTH_BOUNDS,
    MetricsRegistry,
    merge_registries,
)


class TestCounter:
    def test_counts_and_defaults_to_one(self):
        registry = MetricsRegistry()
        registry.counter("events").inc()
        registry.counter("events").inc(2.5)
        assert registry.value("events") == 3.5

    def test_rejects_negative_increment(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError, match="cannot decrease"):
            registry.counter("events").inc(-1)

    def test_labelled_series_are_independent(self):
        registry = MetricsRegistry()
        registry.counter("solves", strategy="gth").inc()
        registry.counter("solves", strategy="power").inc(4)
        assert registry.value("solves", strategy="gth") == 1
        assert registry.value("solves", strategy="power") == 4


class TestGauge:
    def test_set_and_high_water(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set_max(5)
        gauge.set_max(3)
        assert gauge.value == 5.0
        gauge.set(1)
        assert gauge.value == 1.0


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency", bounds=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.counts == [1, 1, 1, 1]
        assert hist.count == 4
        assert hist.sum == pytest.approx(55.55)
        assert hist.mean == pytest.approx(55.55 / 4)

    def test_rejects_non_increasing_bounds(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError, match="strictly"):
            registry.histogram("bad", bounds=(1.0, 1.0, 2.0))

    def test_default_bounds_accepted(self):
        registry = MetricsRegistry()
        registry.histogram("t").observe(0.01)
        registry.histogram("d", bounds=DEFAULT_DEPTH_BOUNDS).observe(3)
        assert registry.get("t").count == 1

    def test_bounds_must_match_across_label_sets(self):
        registry = MetricsRegistry()
        registry.histogram("t", bounds=(1.0, 2.0), phase="a")
        with pytest.raises(ObservabilityError, match="bounds"):
            registry.histogram("t", bounds=(1.0, 3.0), phase="b")


class TestRegistryContract:
    def test_name_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ObservabilityError, match="counter"):
            registry.gauge("x")

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            registry.counter("bad name")
        with pytest.raises(ObservabilityError):
            registry.counter("ok", **{"0label": 1})

    def test_iteration_is_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zeta")
        registry.counter("alpha")
        registry.counter("mid", b="2")
        registry.counter("mid", a="1")
        names = [(m.name, m.labels) for m in registry]
        assert names == sorted(names)

    def test_histogram_value_read_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("t").observe(1.0)
        with pytest.raises(ObservabilityError, match="histogram"):
            registry.value("t")


class TestSnapshots:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("events", help="n").inc(7)
        registry.gauge("depth").set_max(9)
        hist = registry.histogram("t", bounds=(0.5, 1.5), phase="x")
        hist.observe(1.0)
        hist.observe(2.0)
        return registry

    def test_save_load_round_trip(self, tmp_path):
        registry = self._populated()
        path = tmp_path / "m.json"
        registry.save(path)
        loaded = MetricsRegistry.load(path)
        assert loaded.render_openmetrics() == registry.render_openmetrics()

    def test_snapshot_is_json(self, tmp_path):
        path = tmp_path / "m.json"
        self._populated().save(path)
        snapshot = json.loads(path.read_text())
        assert snapshot["schema"] == "repro.obs.metrics/1"
        assert len(snapshot["metrics"]) == 3

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text("not json")
        with pytest.raises(ObservabilityError, match="not valid JSON"):
            MetricsRegistry.load(path)

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({"schema": "other/9", "metrics": []}))
        with pytest.raises(ObservabilityError, match="schema"):
            MetricsRegistry.load(path)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ObservabilityError, match="cannot read"):
            MetricsRegistry.load(tmp_path / "ghost.json")


class TestMerge:
    def test_counters_sum_gauges_max_histograms_add(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("n").inc(2)
        b.counter("n").inc(3)
        a.gauge("g").set_max(5)
        b.gauge("g").set_max(9)
        a.histogram("t", bounds=(1.0,)).observe(0.5)
        b.histogram("t", bounds=(1.0,)).observe(2.0)
        a.merge(b)
        assert a.value("n") == 5
        assert a.value("g") == 9
        assert a.get("t").counts == [1, 1]

    def test_merge_rejects_mismatched_bounds(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.histogram("t", bounds=(1.0,)).observe(0.5)
        b.histogram("t", bounds=(2.0,)).observe(0.5)
        with pytest.raises(ObservabilityError, match="bounds"):
            a.merge(b)

    def test_merge_registries_rejects_empty_input(self):
        with pytest.raises(ObservabilityError, match="at least one"):
            merge_registries([])
        with pytest.raises(ObservabilityError, match="at least one"):
            merge_registries(iter(()))  # generators drain to empty too

    def test_merge_registries_mismatched_bounds_names_family(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.histogram("queue_wait", bounds=(1.0,)).observe(0.5)
        b.histogram("queue_wait", bounds=(2.0,)).observe(0.5)
        with pytest.raises(ObservabilityError, match="queue_wait"):
            merge_registries([a, b])

    def test_merge_registries_disjoint_names_union(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("only_a").inc()
        b.counter("only_b").inc(2)
        merged = merge_registries([a, b])
        assert merged.value("only_a") == 1
        assert merged.value("only_b") == 2


class TestOpenMetrics:
    def test_exposition_shape(self):
        registry = MetricsRegistry()
        registry.counter("events", help="things done").inc(3)
        registry.histogram("t", bounds=(1.0, 10.0)).observe(0.5)
        text = registry.render_openmetrics()
        lines = text.splitlines()
        assert "# HELP events things done" in lines
        assert "# TYPE events counter" in lines
        assert "events_total 3" in lines
        assert 't_bucket{le="1"} 1' in lines
        assert 't_bucket{le="+Inf"} 1' in lines
        assert "t_count 1" in lines
        assert "t_sum 0.5" in lines
        assert lines[-1] == "# EOF"

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", what='say "hi"\n').inc()
        text = registry.render_openmetrics()
        assert 'c_total{what="say \\"hi\\"\\n"} 1' in text


class TestExpositionFastPath:
    """Satellite: the snapshot-hash render cache for hot /metrics."""

    def test_consecutive_expositions_are_byte_identical(self):
        registry = MetricsRegistry()
        registry.counter("events", help="e").inc(3)
        registry.histogram("t", bounds=(1.0,)).observe(0.5)
        registry.gauge("depth").set(2.0)
        first = registry.render_openmetrics()
        second = registry.render_openmetrics()
        assert first == second
        # The fast path returns the identical string object, not a
        # re-render that happens to compare equal.
        assert first is second

    def test_any_update_invalidates_the_cache(self):
        registry = MetricsRegistry()
        counter = registry.counter("events")
        counter.inc()
        first = registry.render_openmetrics()
        counter.inc()
        second = registry.render_openmetrics()
        assert second is not first
        assert "events_total 2" in second
        registry.gauge("depth").set(1.0)
        third = registry.render_openmetrics()
        assert "depth 1" in third
        registry.histogram("t", bounds=(1.0,)).observe(0.2)
        fourth = registry.render_openmetrics()
        assert "t_count 1" in fourth
        assert len({id(first), id(second), id(third), id(fourth)}) == 4

    def test_equal_state_registries_render_the_same_bytes(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        for registry in (a, b):
            registry.counter("events", help="e", kind="x").inc(2)
            registry.histogram("t", bounds=(1.0, 2.0)).observe(1.5)
        assert a.render_openmetrics() == b.render_openmetrics()

    def test_histogram_observation_of_zero_value_invalidates(self):
        # sum stays 0.0 but counts change: the fingerprint must see it.
        registry = MetricsRegistry()
        histogram = registry.histogram("t", bounds=(1.0,))
        first = registry.render_openmetrics()
        histogram.observe(0.0)
        second = registry.render_openmetrics()
        assert second is not first
        assert "t_count 1" in second
