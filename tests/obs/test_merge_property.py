"""Merge associativity: any merge order renders identical OpenMetrics.

The same harness style as the parallel-campaign bit-identity tests: the
assertion is string equality over the rendered exposition, not
approximate equality — merging worker registries in any permutation must
be byte-for-byte indistinguishable.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import MetricsRegistry, merge_registries

BOUNDS = (0.001, 0.1, 1.0, 10.0)


def _registry(spec):
    """Build one worker registry from a drawn spec."""
    registry = MetricsRegistry()
    for amount in spec["counts"]:
        registry.counter("events", phase="x").inc(amount)
    for value in spec["gauges"]:
        registry.gauge("depth").set_max(value)
    for value in spec["observations"]:
        registry.histogram("latency", bounds=BOUNDS, phase="x").observe(value)
    return registry


registry_specs = st.fixed_dictionaries({
    "counts": st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        max_size=5,
    ),
    "gauges": st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        max_size=3,
    ),
    "observations": st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        max_size=5,
    ),
})


class TestMergePermutationInvariance:
    @given(
        specs=st.lists(registry_specs, min_size=2, max_size=5),
        permutation_seed=st.randoms(use_true_random=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_any_merge_order_is_bit_identical(self, specs, permutation_seed):
        registries = [_registry(spec) for spec in specs]
        shuffled = list(registries)
        permutation_seed.shuffle(shuffled)
        reference = merge_registries(registries).render_openmetrics()
        permuted = merge_registries(shuffled).render_openmetrics()
        assert permuted == reference

    @given(specs=st.lists(registry_specs, min_size=1, max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_merge_reversal_is_bit_identical(self, specs):
        registries = [_registry(spec) for spec in specs]
        forward = merge_registries(registries).render_openmetrics()
        backward = merge_registries(reversed(registries)).render_openmetrics()
        assert backward == forward

    def test_integer_data_pairwise_merge_matches(self):
        # For integer-valued counters pairwise merge() is exact too.
        a = MetricsRegistry()
        b = MetricsRegistry()
        c = MetricsRegistry()
        for registry, n in ((a, 1), (b, 2), (c, 4)):
            registry.counter("n").inc(n)
        left = MetricsRegistry().merge(a).merge(b).merge(c)
        right = MetricsRegistry().merge(c).merge(b).merge(a)
        assert left.render_openmetrics() == right.render_openmetrics()
        assert left.value("n") == 7
