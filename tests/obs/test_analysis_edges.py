"""Edge cases for trace analytics: degenerate traces and bad files.

Complements ``test_analysis.py`` (the happy-path span-tree tests) with
the shapes real engine runs produce at the margins — empty exports,
serial single-pid traces, zero-duration spans, worker spans whose
``engine submit`` parent never made it into the export — plus the
:func:`~repro.obs.tracing.read_trace` hardening contract: every
malformed file is one :class:`~repro.errors.ObservabilityError` naming
the file (and line, where there is one), surfaced by ``repro
trace-report`` as a one-line ``error:`` with exit code 2.
"""

import json

import pytest

from repro.cli import main
from repro.errors import ObservabilityError
from repro.obs import Tracer
from repro.obs.analysis import TraceAnalysis, format_trace_report
from repro.obs.tracing import read_trace


def event(name, ts, dur, span_id, parent_id=None, pid=1, cat="test"):
    args = {"span_id": span_id}
    if parent_id is not None:
        args["parent_id"] = parent_id
    return {
        "name": name, "cat": cat, "ph": "X", "ts": ts, "dur": dur,
        "pid": pid, "tid": 1, "args": args,
    }


def write_trace(path, lines):
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return str(path)


class TestDegenerateTraces:
    def test_empty_trace_attribution_is_all_zero(self):
        analysis = TraceAnalysis.from_events([])
        assert analysis.wall_span == (0.0, 0.0)
        attribution = analysis.wall_attribution()
        assert attribution["capacity"] == 0.0
        assert attribution["busy_fraction"] == 0.0
        assert attribution["categories"] == {}

    def test_empty_trace_report_has_no_attribution_section(self):
        text = format_trace_report(TraceAnalysis.from_events([]))
        assert "0 span(s)" in text
        assert "attribution" not in text

    def test_single_pid_trace(self):
        analysis = TraceAnalysis.from_events([
            event("batch", 0.0, 100.0, "a", pid=7),
            event("task", 10.0, 80.0, "b", parent_id="a", pid=7),
        ])
        (worker,) = analysis.worker_utilization()
        assert worker.pid == 7
        assert worker.spans == 2
        # Only the top-level span counts toward busy time.
        assert worker.busy == pytest.approx(100.0)
        assert worker.utilization == pytest.approx(1.0)
        attribution = analysis.wall_attribution()
        assert attribution["pids"] == 1
        assert attribution["capacity"] == pytest.approx(100.0)
        assert attribution["idle"] == pytest.approx(0.0)

    def test_zero_duration_spans(self):
        # Identical start and end timestamps: wall span collapses to
        # zero, so every ratio must degrade to 0.0 rather than divide.
        analysis = TraceAnalysis.from_events([
            event("instant-a", 50.0, 0.0, "a", pid=1),
            event("instant-b", 50.0, 0.0, "b", pid=2),
        ])
        assert analysis.wall_span == (50.0, 50.0)
        for worker in analysis.worker_utilization():
            assert worker.busy == 0.0
            assert worker.utilization == 0.0
        attribution = analysis.wall_attribution()
        assert attribution["wall"] == 0.0
        assert attribution["capacity"] == 0.0
        assert attribution["busy_fraction"] == 0.0
        # And the report must still render without an attribution
        # section (capacity is zero) or a ZeroDivisionError.
        text = format_trace_report(analysis)
        assert "2 span(s)" in text

    def test_zero_duration_child_keeps_parent_self_time_nonnegative(self):
        analysis = TraceAnalysis.from_events([
            event("parent", 0.0, 0.0, "a"),
            event("child", 0.0, 0.0, "b", parent_id="a"),
        ])
        by_name = {node.name: node for node in analysis.spans}
        assert by_name["parent"].self_time == 0.0
        assert by_name["child"].self_time == 0.0
        assert [n.name for n in analysis.critical_path()] == [
            "parent", "child"
        ]

    def test_worker_span_with_missing_submit_parent(self):
        # A worker exported its span but the parent "engine submit"
        # span never made it into the file (e.g. the parent process
        # crashed before export).  The orphan must become a root and
        # count as top-level busy time for its own pid.
        analysis = TraceAnalysis.from_events([
            event("engine batch", 0.0, 100.0, "root", pid=1),
            event(
                "engine task", 10.0, 40.0, "w",
                parent_id="submit-never-exported", pid=2,
            ),
        ])
        assert sorted(n.name for n in analysis.roots) == [
            "engine batch", "engine task"
        ]
        by_pid = {u.pid: u for u in analysis.worker_utilization()}
        assert by_pid[2].busy == pytest.approx(40.0)
        attribution = analysis.wall_attribution()
        assert attribution["pids"] == 2
        assert attribution["busy"] == pytest.approx(140.0)

    def test_cross_pid_parent_still_counts_as_top_level(self):
        # A worker span correctly parented under an "engine submit"
        # span of *another process*: the tree nests it, but for
        # utilization it is top-level within its own pid.
        analysis = TraceAnalysis.from_events([
            event("engine submit", 0.0, 100.0, "s", pid=1),
            event("engine task", 20.0, 50.0, "t", parent_id="s", pid=2),
        ])
        (root,) = analysis.roots
        assert [c.name for c in root.children] == ["engine task"]
        by_pid = {u.pid: u for u in analysis.worker_utilization()}
        assert by_pid[2].busy == pytest.approx(50.0)


class TestReadTraceHardening:
    def test_binary_file_names_the_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_bytes(b"\x93\xff\x00binary")
        with pytest.raises(ObservabilityError, match="not UTF-8") as exc:
            read_trace(path)
        assert "trace.jsonl" in str(exc.value)

    def test_truncated_json_names_file_and_line(self, tmp_path):
        path = tmp_path / "cut.jsonl"
        good = json.dumps(event("ok", 0.0, 1.0, "a"))
        write_trace(path, [good, good[: len(good) // 2]])
        with pytest.raises(
            ObservabilityError, match="line 2 is not valid JSON"
        ) as exc:
            read_trace(path)
        assert "cut.jsonl" in str(exc.value)

    def test_non_object_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(path, ["[1, 2, 3]"])
        with pytest.raises(
            ObservabilityError, match="line 1 is not a JSON object"
        ):
            read_trace(path)

    def test_missing_keys_named(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(path, [json.dumps({"name": "incomplete", "ph": "X"})])
        with pytest.raises(
            ObservabilityError, match="missing trace-event keys"
        ) as exc:
            read_trace(path)
        assert "line 1" in str(exc.value)

    def test_wrong_phase_rejected(self, tmp_path):
        bad = event("b", 0.0, 1.0, "a")
        bad["ph"] = "B"
        path = tmp_path / "t.jsonl"
        write_trace(path, [json.dumps(bad)])
        with pytest.raises(ObservabilityError, match="phase 'B'"):
            read_trace(path)

    @pytest.mark.parametrize("key,value", [
        ("ts", "yesterday"), ("dur", None), ("ts", True),
    ])
    def test_non_numeric_timestamps(self, tmp_path, key, value):
        bad = event("b", 0.0, 1.0, "a")
        bad[key] = value
        path = tmp_path / "t.jsonl"
        write_trace(path, [json.dumps(bad)])
        with pytest.raises(
            ObservabilityError, match=f"non-numeric {key!r}"
        ):
            read_trace(path)

    @pytest.mark.parametrize("key,value", [
        ("pid", 1.5), ("tid", "main"), ("pid", False),
    ])
    def test_non_integer_process_ids(self, tmp_path, key, value):
        bad = event("b", 0.0, 1.0, "a")
        bad[key] = value
        path = tmp_path / "t.jsonl"
        write_trace(path, [json.dumps(bad)])
        with pytest.raises(
            ObservabilityError, match=f"non-integer {key!r}"
        ):
            read_trace(path)

    def test_non_object_args(self, tmp_path):
        bad = event("b", 0.0, 1.0, "a")
        bad["args"] = ["span_id", "a"]
        path = tmp_path / "t.jsonl"
        write_trace(path, [json.dumps(bad)])
        with pytest.raises(ObservabilityError, match="non-object 'args'"):
            read_trace(path)

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(path, [
            "", json.dumps(event("ok", 0.0, 1.0, "a")), "   ",
        ])
        assert len(read_trace(path)) == 1


class TestTraceReportCli:
    def test_malformed_trace_is_a_one_line_error(self, tmp_path, capsys):
        path = tmp_path / "broken.jsonl"
        write_trace(path, ['{"name": "truncated'])
        assert main(["trace-report", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "broken.jsonl" in err
        assert "line 1" in err
        assert "Traceback" not in err

    def test_missing_file_is_a_one_line_error(self, tmp_path, capsys):
        assert main(["trace-report", str(tmp_path / "ghost.jsonl")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "cannot read trace file" in err
        assert "Traceback" not in err

    def test_binary_file_is_a_one_line_error(self, tmp_path, capsys):
        path = tmp_path / "blob.jsonl"
        path.write_bytes(b"\x89PNG\r\n\x1a\n\x00\x00")
        assert main(["trace-report", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "not UTF-8" in err

    def test_real_export_renders_attribution_section(
        self, tmp_path, capsys
    ):
        tracer = Tracer()
        with tracer.span("outer", category="engine"):
            with tracer.span("inner", category="solver"):
                pass
        path = tmp_path / "trace.jsonl"
        tracer.export(path)
        assert main(["trace-report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "attribution" in out
        assert "capacity" in out
        assert "busy self-time by category" in out
