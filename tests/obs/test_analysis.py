"""Tests for trace analytics and metrics diffing."""

import pytest

from repro.errors import ObservabilityError
from repro.obs import MetricsRegistry, Tracer
from repro.obs.analysis import (
    TraceAnalysis,
    diff_registries,
    format_diff_table,
    format_trace_report,
)


def event(name, ts, dur, span_id, parent_id=None, pid=1, cat="test", **args):
    payload = {"span_id": span_id}
    if parent_id is not None:
        payload["parent_id"] = parent_id
    payload.update(args)
    return {
        "name": name, "cat": cat, "ph": "X", "ts": ts, "dur": dur,
        "pid": pid, "tid": 1, "args": payload,
    }


class TestTraceAnalysis:
    def tree(self):
        return TraceAnalysis.from_events([
            event("root", 0.0, 100.0, "a"),
            event("child-long", 10.0, 60.0, "b", parent_id="a"),
            event("child-short", 80.0, 10.0, "c", parent_id="a"),
            event("leaf", 20.0, 30.0, "d", parent_id="b"),
        ])

    def test_tree_reconstruction_and_self_time(self):
        analysis = self.tree()
        (root,) = analysis.roots
        assert root.name == "root"
        assert sorted(c.name for c in root.children) == [
            "child-long", "child-short"
        ]
        assert root.self_time == pytest.approx(30.0)  # 100 - 60 - 10
        assert analysis.spans[1].self_time == pytest.approx(30.0)

    def test_critical_path_descends_longest_children(self):
        names = [node.name for node in self.tree().critical_path()]
        assert names == ["root", "child-long", "leaf"]

    def test_top_spans_sorted_by_duration(self):
        top = self.tree().top_spans(2)
        assert [s.name for s in top] == ["root", "child-long"]

    def test_category_self_times_sum_to_wall_time(self):
        totals = self.tree().category_self_times()
        assert sum(totals.values()) == pytest.approx(100.0)

    def test_worker_utilization_merges_overlaps(self):
        analysis = TraceAnalysis.from_events([
            event("w1", 0.0, 50.0, "a", pid=1),
            event("w1-again", 25.0, 50.0, "b", pid=1),  # overlaps w1
            event("w2", 0.0, 25.0, "c", pid=2),
        ])
        by_pid = {u.pid: u for u in analysis.worker_utilization()}
        assert by_pid[1].busy == pytest.approx(75.0)  # union, not sum
        assert by_pid[2].busy == pytest.approx(25.0)
        assert by_pid[1].utilization == pytest.approx(1.0)

    def test_orphan_parent_becomes_root(self):
        analysis = TraceAnalysis.from_events([
            event("stray", 0.0, 10.0, "x", parent_id="never-exported"),
        ])
        assert len(analysis.roots) == 1

    def test_malformed_event_rejected(self):
        with pytest.raises(ObservabilityError):
            TraceAnalysis.from_events([{"name": "incomplete"}])

    def test_empty_trace(self):
        analysis = TraceAnalysis.from_events([])
        assert len(analysis) == 0
        assert analysis.critical_path() == []
        assert analysis.worker_utilization() == []

    def test_from_real_tracer_export(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", category="engine"):
            with tracer.span("inner", category="solver"):
                pass
        path = tmp_path / "trace.jsonl"
        tracer.export(path)
        analysis = TraceAnalysis.from_file(path)
        assert len(analysis) == 2
        assert [n.name for n in analysis.critical_path()] == [
            "outer", "inner"
        ]

    def test_report_renders_all_sections(self):
        text = format_trace_report(self.tree())
        assert "critical path" in text
        assert "self time by category" in text
        assert "top" in text
        assert "per-worker utilization" in text

    def test_report_on_empty_trace(self):
        text = format_trace_report(TraceAnalysis.from_events([]))
        assert "0 span(s)" in text


class TestDiffRegistries:
    def test_counter_delta_and_ratio(self):
        old, new = MetricsRegistry(), MetricsRegistry()
        old.counter("solves").inc(2)
        new.counter("solves").inc(5)
        (entry,) = diff_registries(old, new).entries
        assert entry.status == "changed"
        assert entry.delta == pytest.approx(3.0)
        assert entry.ratio == pytest.approx(2.5)

    def test_added_and_removed_series(self):
        old, new = MetricsRegistry(), MetricsRegistry()
        old.counter("gone").inc()
        new.counter("fresh").inc()
        diff = diff_registries(old, new)
        assert [e.name for e in diff.added] == ["fresh"]
        assert [e.name for e in diff.removed] == ["gone"]

    def test_labelled_series_align_by_labels(self):
        old, new = MetricsRegistry(), MetricsRegistry()
        old.counter("n", kind="a").inc(1)
        old.counter("n", kind="b").inc(1)
        new.counter("n", kind="a").inc(1)
        new.counter("n", kind="b").inc(9)
        diff = diff_registries(old, new)
        changed = {dict(e.labels)["kind"] for e in diff.changed}
        assert changed == {"b"}

    def test_histogram_compares_count_and_mean(self):
        old, new = MetricsRegistry(), MetricsRegistry()
        old.histogram("t", bounds=(1.0, 2.0)).observe(0.5)
        new.histogram("t", bounds=(1.0, 2.0)).observe(0.5)
        new.histogram("t", bounds=(1.0, 2.0)).observe(1.5)
        (entry,) = diff_registries(old, new).entries
        assert entry.kind == "histogram"
        assert entry.status == "changed"
        assert entry.old_count == 1 and entry.new_count == 2

    def test_unchanged_series(self):
        old, new = MetricsRegistry(), MetricsRegistry()
        old.gauge("depth").set(4)
        new.gauge("depth").set(4)
        (entry,) = diff_registries(old, new).entries
        assert entry.status == "unchanged"

    def test_mismatched_histogram_bounds_named(self):
        old, new = MetricsRegistry(), MetricsRegistry()
        old.histogram("queue_wait", bounds=(1.0,)).observe(0.5)
        new.histogram("queue_wait", bounds=(2.0,)).observe(0.5)
        with pytest.raises(ObservabilityError, match="queue_wait"):
            diff_registries(old, new)

    def test_kind_mismatch_named(self):
        old, new = MetricsRegistry(), MetricsRegistry()
        old.counter("x").inc()
        new.gauge("x").set(1)
        with pytest.raises(ObservabilityError, match="'x'"):
            diff_registries(old, new)

    def test_format_hides_unchanged_by_default(self):
        old, new = MetricsRegistry(), MetricsRegistry()
        old.counter("same").inc()
        new.counter("same").inc()
        old.counter("moved").inc(1)
        new.counter("moved").inc(2)
        diff = diff_registries(old, new)
        assert "same" not in format_diff_table(diff)
        assert "same" in format_diff_table(diff, include_unchanged=True)
