"""Tests for span tracing: nesting, propagation, Chrome trace export."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    SpanContext,
    Tracer,
    chrome_trace_document,
    read_trace,
    write_chrome_trace,
)


class TestSpans:
    def test_complete_event_shape(self):
        tracer = Tracer()
        with tracer.span("solve", category="ctmc", states=12) as span:
            span.set(iterations=3)
        (event,) = tracer.events
        assert event["name"] == "solve"
        assert event["cat"] == "ctmc"
        assert event["ph"] == "X"
        assert event["dur"] >= 0.0
        assert event["args"]["states"] == 12
        assert event["args"]["iterations"] == 3

    def test_nesting_parents_inner_under_outer(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.events  # inner closes first
        assert inner["name"] == "inner"
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]
        assert outer["args"].get("parent_id") is None

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b, root = tracer.events
        root_id = root["args"]["span_id"]
        assert a["args"]["parent_id"] == root_id
        assert b["args"]["parent_id"] == root_id

    def test_span_ids_unique(self):
        tracer = Tracer()
        for _ in range(5):
            with tracer.span("s"):
                pass
        ids = [e["args"]["span_id"] for e in tracer.events]
        assert len(set(ids)) == 5

    def test_timestamps_monotone_within_nesting(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.events
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-3


class TestPropagation:
    def test_context_requires_open_span(self):
        tracer = Tracer()
        with pytest.raises(ObservabilityError, match="open span"):
            tracer.context()

    def test_context_round_trips_as_dict(self):
        tracer = Tracer()
        with tracer.span("submit"):
            ctx = tracer.context()
        rebuilt = SpanContext.from_dict(ctx.as_dict())
        assert rebuilt == ctx

    def test_worker_roots_parent_under_context(self):
        parent = Tracer()
        with parent.span("submit"):
            ctx = parent.context()
        worker = Tracer(context=ctx)
        with worker.span("task"):
            pass
        (event,) = worker.events
        assert event["args"]["parent_id"] == ctx.parent_id

    def test_absorb_rebases_onto_parent_timeline(self):
        parent = Tracer()
        with parent.span("submit"):
            ctx = parent.context()
        worker = Tracer(context=ctx)
        # Simulate a worker whose monotonic epoch is unrelated but whose
        # wall anchor is 2s after the parent's.
        worker.wall_anchor = parent.wall_anchor + 2.0
        with worker.span("task"):
            pass
        parent.absorb(worker.payload())
        absorbed = parent.events[-1]
        assert absorbed["name"] == "task"
        assert absorbed["ts"] >= 2.0 * 1e6  # shifted by the anchor delta

    def test_absorb_rejects_malformed_payload(self):
        tracer = Tracer()
        with pytest.raises(ObservabilityError, match="malformed"):
            tracer.absorb({"events": []})


class TestExport:
    def _trace(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", category="test"):
            with tracer.span("inner"):
                pass
        path = tmp_path / "trace.jsonl"
        tracer.export(path)
        return path

    def test_export_is_schema_valid_jsonl(self, tmp_path):
        path = self._trace(tmp_path)
        events = read_trace(path)
        assert len(events) == 2
        for line in path.read_text().splitlines():
            event = json.loads(line)
            for key in ("name", "cat", "ph", "ts", "dur", "pid", "tid",
                        "args"):
                assert key in event

    def test_export_sorted_by_timestamp(self, tmp_path):
        events = read_trace(self._trace(tmp_path))
        stamps = [e["ts"] for e in events]
        assert stamps == sorted(stamps)

    def test_read_trace_rejects_missing_keys(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"name": "x", "ph": "X"}) + "\n")
        with pytest.raises(ObservabilityError, match="missing"):
            read_trace(path)

    def test_read_trace_rejects_non_complete_phase(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        event = {"name": "x", "cat": "c", "ph": "B", "ts": 0, "dur": 0,
                 "pid": 1, "tid": 1, "args": {}}
        path.write_text(json.dumps(event) + "\n")
        with pytest.raises(ObservabilityError, match="phase"):
            read_trace(path)

    def test_read_trace_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{broken\n")
        with pytest.raises(ObservabilityError, match="not valid JSON"):
            read_trace(path)

    def test_chrome_trace_document_wrapper(self, tmp_path):
        jsonl = self._trace(tmp_path)
        out = tmp_path / "trace.json"
        count = write_chrome_trace(jsonl, out)
        assert count == 2
        document = json.loads(out.read_text())
        assert set(document) == {"traceEvents", "displayTimeUnit"}
        assert len(document["traceEvents"]) == 2
        assert chrome_trace_document([])["traceEvents"] == []

    def test_export_of_empty_tracer_writes_readable_empty_file(
        self, tmp_path
    ):
        path = tmp_path / "empty.jsonl"
        Tracer().export(path)
        assert path.exists()
        assert path.read_text() == ""
        assert read_trace(path) == []

    def test_span_unclosed_at_export_is_omitted_until_closed(
        self, tmp_path
    ):
        tracer = Tracer()
        path = tmp_path / "trace.jsonl"
        with tracer.span("closed"):
            pass
        with tracer.span("still-open"):
            tracer.export(path)  # mid-span: only the closed span lands
            assert [e["name"] for e in read_trace(path)] == ["closed"]
        tracer.export(path)
        assert sorted(e["name"] for e in read_trace(path)) == [
            "closed", "still-open"
        ]


class TestContextAfterParentEnded:
    def test_reattachment_links_to_the_ended_span(self):
        parent = Tracer()
        with parent.span("submit"):
            ctx = parent.context()
        # The parent span has ended by the time the worker starts — the
        # shipped context must still parent the worker's roots under it.
        worker = Tracer(context=SpanContext.from_dict(ctx.as_dict()))
        with worker.span("late-task"):
            pass
        (event,) = worker.events
        assert event["args"]["parent_id"] == ctx.parent_id
        parent.absorb(worker.payload())
        by_name = {e["name"]: e for e in parent.events}
        assert (
            by_name["late-task"]["args"]["parent_id"]
            == by_name["submit"]["args"]["span_id"]
        )
