"""Tests for repro.obs.perf: kernel accounting, profiler, recorder."""

import json

import pytest

from repro.obs import (
    CounterProfiler,
    KernelAccounting,
    PerfRecorder,
    active_perf,
    format_attribution,
    format_kernel_accounting,
    instrumented,
    speedscope_document,
)
from repro.sim import Simulator


class TickA:
    def __init__(self, sim, remaining):
        self.sim = sim
        self.remaining = remaining

    def __call__(self):
        self.remaining -= 1
        if self.remaining:
            self.sim.schedule(1.0, self)


class TickB(TickA):
    pass


def _run_mixed(sim, a=30, b=20):
    sim.schedule(1.0, TickA(sim, a))
    sim.schedule(1.0, TickB(sim, b))
    sim.run()


class TestKernelAccounting:
    def test_simulator_accounts_per_event_type(self):
        recorder = PerfRecorder()
        sim = Simulator(perf=recorder)
        _run_mixed(sim, a=30, b=20)
        assert recorder.kernel.counts == {"TickA": 30, "TickB": 20}
        assert recorder.kernel.total_events == 50
        assert recorder.kernel.total_seconds > 0.0
        assert all(
            seconds >= 0.0 for seconds in recorder.kernel.seconds.values()
        )

    def test_function_events_use_qualname(self):
        recorder = PerfRecorder()
        sim = Simulator(perf=recorder)
        sim.schedule(1.0, lambda: None)
        sim.run()
        (name,) = recorder.kernel.counts
        assert "lambda" in name

    def test_snapshot_merge_round_trip(self):
        left = KernelAccounting()
        left.record("X", 0.5)
        left.record("Y", 0.25)
        right = KernelAccounting()
        right.record("X", 1.0)
        right.merge(left.snapshot())
        assert right.counts == {"X": 2, "Y": 1}
        assert right.seconds["X"] == pytest.approx(1.5)

    def test_to_dict_is_sorted_and_json_safe(self):
        accounting = KernelAccounting()
        accounting.record("b", 0.1)
        accounting.record("a", 0.2)
        document = accounting.to_dict()
        assert list(document["events"]) == ["a", "b"]
        json.dumps(document)


class TestZeroOverheadBinding:
    def test_disabled_simulator_binds_fast_step(self):
        sim = Simulator()
        assert sim._step.__func__ is Simulator._step_fast

    def test_perf_simulator_binds_profiled_step(self):
        sim = Simulator(perf=PerfRecorder())
        assert sim._step.__func__ is Simulator._step_profiled

    def test_ambient_recorder_is_picked_up(self):
        recorder = PerfRecorder()
        with instrumented(perf=recorder):
            assert active_perf() is recorder
            sim = Simulator()
            _run_mixed(sim, a=5, b=5)
        assert active_perf() is None
        assert recorder.kernel.total_events == 10

    def test_results_identical_with_and_without_perf(self):
        def _drain(sim):
            hits = []
            sim.schedule(2.0, lambda: hits.append(sim.now))
            sim.schedule(1.0, lambda: hits.append(sim.now))
            sim.run()
            return hits

        assert _drain(Simulator()) == _drain(Simulator(perf=PerfRecorder()))


class TestCounterProfiler:
    def test_intervals_must_be_positive(self):
        with pytest.raises(ValueError):
            CounterProfiler(kernel_interval=0)
        with pytest.raises(ValueError):
            CounterProfiler(task_interval=0)

    def test_kernel_sampling_interval(self):
        profiler = CounterProfiler(kernel_interval=10)
        for _ in range(25):
            profiler.tick_kernel(leaf="event:T")
        assert profiler.kernel_ticks == 25
        assert profiler.sample_count == 2  # ticks 10 and 20

    def test_synthetic_leaf_frame(self):
        profiler = CounterProfiler(task_interval=1)
        profiler.tick_task(leaf="task:phase-x")
        (stack,) = profiler.samples
        assert stack[-1] == "task:phase-x"
        # The captured frames name real modules/functions below the leaf.
        assert any(":" in frame for frame in stack[:-1])

    def test_two_identical_runs_are_byte_identical(self):
        def _profile():
            recorder = PerfRecorder(kernel_interval=7)
            sim = Simulator(perf=recorder)
            _run_mixed(sim, a=40, b=25)
            return recorder.profiler

        first, second = _profile(), _profile()
        assert first.collapsed() == second.collapsed()
        assert json.dumps(first.speedscope()) == json.dumps(
            second.speedscope()
        )

    def test_folded_merge_round_trip(self):
        profiler = CounterProfiler(task_interval=1)
        profiler.tick_task(leaf="task:a")
        profiler.tick_task(leaf="task:a")
        other = CounterProfiler()
        other.merge_folded(profiler.folded())
        assert other.samples == profiler.samples
        assert other.sample_count == 2

    def test_speedscope_document_structure(self):
        document = speedscope_document({("a", "b"): 3, ("a", "c"): 1})
        (profile,) = document["profiles"]
        assert profile["type"] == "sampled"
        assert profile["endValue"] == 4
        assert len(profile["samples"]) == len(profile["weights"]) == 2
        names = [frame["name"] for frame in document["shared"]["frames"]]
        assert set(names) == {"a", "b", "c"}

    def test_collapsed_format(self):
        profiler = CounterProfiler()
        profiler.samples = {("a", "b"): 2}
        assert profiler.collapsed() == "a;b 2\n"
        assert CounterProfiler().collapsed() == ""


class TestPerfRecorder:
    def test_merge_worker_record(self):
        worker = PerfRecorder()
        worker.kernel.record("T", 0.5)
        worker.profiler.tick_task(leaf="task:t")
        from repro.obs.perf import worker_perf_record

        record = worker_perf_record(worker)
        parent = PerfRecorder()
        parent.merge_worker(record)
        parent.merge_worker(None)  # tolerated
        assert parent.kernel.counts == {"T": 1}
        assert parent.profiler.sample_count == 1
        assert record["pid"] > 0

    def test_write_artifacts(self, tmp_path):
        recorder = PerfRecorder(kernel_interval=5)
        sim = Simulator(perf=recorder)
        _run_mixed(sim, a=20, b=15)
        written = recorder.write_artifacts(tmp_path / "out")
        names = sorted(path.name for path in written)
        assert names == [
            "attribution.json",
            "attribution.txt",
            "profile.collapsed",
            "profile.speedscope.json",
        ]
        document = json.loads((tmp_path / "out" / "attribution.json").read_text())
        assert document["kernel"]["total_events"] == 35
        text = (tmp_path / "out" / "attribution.txt").read_text()
        assert "kernel event accounting" in text

    def test_format_attribution_empty(self):
        assert "no engine batches" in format_attribution([])

    def test_format_kernel_accounting_ranks_by_self_time(self):
        accounting = KernelAccounting()
        accounting.record("cheap", 0.001)
        accounting.record("costly", 1.0)
        text = format_kernel_accounting(accounting)
        assert text.index("costly") < text.index("cheap")
        assert "2 event type(s)" in text
        empty = format_kernel_accounting(KernelAccounting())
        assert "no events recorded" in empty
