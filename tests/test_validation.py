"""Tests for the shared validation helpers."""

import math

import numpy as np
import pytest

from repro._validation import (
    check_distribution,
    check_finite,
    check_finite_array,
    check_in_range,
    check_non_negative,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_probability,
    check_rate,
)
from repro.errors import ValidationError


class TestScalarChecks:
    def test_probability_bounds(self):
        assert check_probability(0.0) == 0.0
        assert check_probability(1.0) == 1.0
        for bad in (-0.1, 1.1, float("nan"), float("inf")):
            with pytest.raises(ValidationError):
                check_probability(bad)

    def test_positive(self):
        assert check_positive(0.5) == 0.5
        for bad in (0.0, -1.0, float("nan")):
            with pytest.raises(ValidationError):
                check_positive(bad)

    def test_non_negative(self):
        assert check_non_negative(0.0) == 0.0
        with pytest.raises(ValidationError):
            check_non_negative(-1e-9)

    def test_rate_alias(self):
        assert check_rate(2.5) == 2.5
        with pytest.raises(ValidationError):
            check_rate(0.0)

    def test_in_range(self):
        assert check_in_range(5, 0, 10) == 5.0
        with pytest.raises(ValidationError):
            check_in_range(11, 0, 10)

    def test_non_numeric_rejected(self):
        with pytest.raises(ValidationError):
            check_positive("two")

    def test_error_message_names_argument(self):
        with pytest.raises(ValidationError, match="my_rate"):
            check_rate(-1.0, "my_rate")

    def test_nan_gets_a_dedicated_message(self):
        # NaN must never reach a comparison-based check: every NaN
        # comparison is False, so a generic bound check would let it
        # through silently.  The message says NaN, not just "a number".
        with pytest.raises(ValidationError, match="NaN"):
            check_positive(float("nan"), "rate")

    def test_infinity_still_reported_as_non_finite(self):
        with pytest.raises(ValidationError, match="finite"):
            check_positive(float("inf"), "rate")


class TestFiniteChecks:
    def test_finite_passes_through(self):
        assert check_finite(2.5) == 2.5
        assert check_finite(-3) == -3.0
        assert check_finite(0.0) == 0.0

    def test_nan_and_inf_rejected(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValidationError):
                check_finite(bad)

    def test_nan_message_is_explicit(self):
        with pytest.raises(ValidationError, match="NaN"):
            check_finite(float("nan"), "death_rate")

    def test_array_passes_when_all_finite(self):
        arr = check_finite_array([[1.0, -2.0], [0.0, 3.5]], "q")
        assert isinstance(arr, np.ndarray)

    def test_array_rejects_nan_naming_position(self):
        with pytest.raises(ValidationError, match="q"):
            check_finite_array([1.0, float("nan"), 3.0], "q")

    def test_array_rejects_inf(self):
        with pytest.raises(ValidationError):
            check_finite_array(np.array([1.0, np.inf]), "q")


class TestIntChecks:
    def test_positive_int(self):
        assert check_positive_int(3) == 3
        assert check_positive_int(3.0) == 3
        for bad in (0, -1, 1.5, True, "3"):
            with pytest.raises(ValidationError):
                check_positive_int(bad)

    def test_non_negative_int(self):
        assert check_non_negative_int(0) == 0
        with pytest.raises(ValidationError):
            check_non_negative_int(-1)


class TestDistribution:
    def test_valid_distribution(self):
        arr = check_distribution([0.25, 0.75])
        assert isinstance(arr, np.ndarray)
        assert arr.sum() == 1.0

    def test_unnormalized_rejected(self):
        with pytest.raises(ValidationError):
            check_distribution([0.5, 0.4])

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            check_distribution([1.1, -0.1])

    def test_nan_rejected(self):
        with pytest.raises(ValidationError):
            check_distribution([float("nan"), 1.0])

    def test_returns_copy(self):
        source = np.array([0.5, 0.5])
        arr = check_distribution(source)
        arr[0] = 0.0
        assert source[0] == 0.5

    def test_tiny_negative_clipped(self):
        arr = check_distribution([1.0, -1e-15], tol=1e-9)
        assert arr[1] == 0.0
