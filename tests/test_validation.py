"""Tests for the shared validation helpers."""

import math

import numpy as np
import pytest

from repro._validation import (
    check_distribution,
    check_in_range,
    check_non_negative,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_probability,
    check_rate,
)
from repro.errors import ValidationError


class TestScalarChecks:
    def test_probability_bounds(self):
        assert check_probability(0.0) == 0.0
        assert check_probability(1.0) == 1.0
        for bad in (-0.1, 1.1, float("nan"), float("inf")):
            with pytest.raises(ValidationError):
                check_probability(bad)

    def test_positive(self):
        assert check_positive(0.5) == 0.5
        for bad in (0.0, -1.0, float("nan")):
            with pytest.raises(ValidationError):
                check_positive(bad)

    def test_non_negative(self):
        assert check_non_negative(0.0) == 0.0
        with pytest.raises(ValidationError):
            check_non_negative(-1e-9)

    def test_rate_alias(self):
        assert check_rate(2.5) == 2.5
        with pytest.raises(ValidationError):
            check_rate(0.0)

    def test_in_range(self):
        assert check_in_range(5, 0, 10) == 5.0
        with pytest.raises(ValidationError):
            check_in_range(11, 0, 10)

    def test_non_numeric_rejected(self):
        with pytest.raises(ValidationError):
            check_positive("two")

    def test_error_message_names_argument(self):
        with pytest.raises(ValidationError, match="my_rate"):
            check_rate(-1.0, "my_rate")


class TestIntChecks:
    def test_positive_int(self):
        assert check_positive_int(3) == 3
        assert check_positive_int(3.0) == 3
        for bad in (0, -1, 1.5, True, "3"):
            with pytest.raises(ValidationError):
                check_positive_int(bad)

    def test_non_negative_int(self):
        assert check_non_negative_int(0) == 0
        with pytest.raises(ValidationError):
            check_non_negative_int(-1)


class TestDistribution:
    def test_valid_distribution(self):
        arr = check_distribution([0.25, 0.75])
        assert isinstance(arr, np.ndarray)
        assert arr.sum() == 1.0

    def test_unnormalized_rejected(self):
        with pytest.raises(ValidationError):
            check_distribution([0.5, 0.4])

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            check_distribution([1.1, -0.1])

    def test_nan_rejected(self):
        with pytest.raises(ValidationError):
            check_distribution([float("nan"), 1.0])

    def test_returns_copy(self):
        source = np.array([0.5, 0.5])
        arr = check_distribution(source)
        arr[0] = 0.0
        assert source[0] == 0.5

    def test_tiny_negative_clipped(self):
        arr = check_distribution([1.0, -1e-15], tol=1e-9)
        assert arr[1] == 0.0
