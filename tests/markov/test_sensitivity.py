"""Tests for repro.markov.sensitivity."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.markov import CTMC, steady_state_derivative
from repro.markov.sensitivity import reward_derivative


def two_state(lam, mu):
    return np.array([[-lam, lam], [mu, -mu]])


class TestSteadyStateDerivative:
    def test_matches_closed_form_two_state(self):
        lam, mu = 0.2, 1.0
        q = two_state(lam, mu)
        pi = np.array([mu, lam]) / (lam + mu)
        dq_dlam = np.array([[-1.0, 1.0], [0.0, 0.0]])
        d_pi = steady_state_derivative(q, dq_dlam, pi)
        # d/dlam [mu/(lam+mu)] = -mu/(lam+mu)^2
        assert d_pi[0] == pytest.approx(-mu / (lam + mu) ** 2, abs=1e-12)
        assert d_pi.sum() == pytest.approx(0.0, abs=1e-12)

    def test_matches_finite_difference_random_chain(self):
        rng = np.random.default_rng(9)
        n = 6
        base = rng.uniform(0.2, 1.5, size=(n, n))
        np.fill_diagonal(base, 0.0)

        def generator(theta):
            q = base.copy()
            q[0, 1] = theta
            np.fill_diagonal(q, 0.0)
            np.fill_diagonal(q, -q.sum(axis=1))
            return q

        from repro.markov.solvers import steady_state_gth

        theta = 0.7
        q = generator(theta)
        pi = steady_state_gth(q)
        dq = np.zeros((n, n))
        dq[0, 1] = 1.0
        dq[0, 0] = -1.0
        analytic = steady_state_derivative(q, dq, pi)
        h = 1e-6
        numeric = (
            steady_state_gth(generator(theta + h))
            - steady_state_gth(generator(theta - h))
        ) / (2 * h)
        assert analytic == pytest.approx(numeric, abs=1e-6)

    def test_rejects_shape_mismatch(self):
        q = two_state(0.1, 1.0)
        with pytest.raises(ValidationError, match="shape"):
            steady_state_derivative(q, np.zeros((3, 3)), np.array([0.9, 0.1]))

    def test_rejects_nonzero_row_sums_in_derivative(self):
        q = two_state(0.1, 1.0)
        bad = np.array([[1.0, 1.0], [0.0, 0.0]])
        with pytest.raises(ValidationError, match="sum to zero"):
            steady_state_derivative(q, bad, np.array([0.9, 0.1]))


class TestRewardDerivative:
    def test_availability_sensitivity_to_repair_rate(self):
        lam, mu = 1e-3, 0.5
        chain = CTMC(["up", "down"], two_state(lam, mu))
        dq_dmu = np.array([[0.0, 0.0], [1.0, -1.0]])
        derivative = reward_derivative(chain, {"up": 1.0}, dq_dmu)
        # d/dmu [mu/(lam+mu)] = lam/(lam+mu)^2
        assert derivative == pytest.approx(lam / (lam + mu) ** 2, abs=1e-10)

    def test_zero_derivative_for_constant_reward(self):
        chain = CTMC(["up", "down"], two_state(0.3, 0.7))
        dq = np.array([[-1.0, 1.0], [0.0, 0.0]])
        derivative = reward_derivative(chain, {"up": 1.0, "down": 1.0}, dq)
        assert derivative == pytest.approx(0.0, abs=1e-12)
