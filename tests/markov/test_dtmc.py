"""Tests for repro.markov.dtmc."""

import numpy as np
import pytest

from repro.errors import ModelStructureError, ValidationError
from repro.markov import DTMC


@pytest.fixture
def weather():
    return DTMC(["sunny", "rainy"], [[0.9, 0.1], [0.5, 0.5]])


@pytest.fixture
def gambler():
    """Gambler's ruin on {0..3} with p = 0.5; 0 and 3 absorbing."""
    return DTMC(
        [0, 1, 2, 3],
        [
            [1.0, 0.0, 0.0, 0.0],
            [0.5, 0.0, 0.5, 0.0],
            [0.0, 0.5, 0.0, 0.5],
            [0.0, 0.0, 0.0, 1.0],
        ],
    )


class TestConstruction:
    def test_rejects_duplicate_states(self):
        with pytest.raises(ValidationError, match="distinct"):
            DTMC(["a", "a"], [[0.5, 0.5], [0.5, 0.5]])

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            DTMC([], np.zeros((0, 0)))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValidationError, match="shape"):
            DTMC(["a", "b"], [[1.0]])

    def test_rejects_non_stochastic_rows(self):
        with pytest.raises(ValidationError):
            DTMC(["a", "b"], [[0.9, 0.2], [0.5, 0.5]])

    def test_from_edges_infers_states_and_absorbing(self):
        chain = DTMC.from_edges({("a", "b"): 1.0})
        assert chain.states == ("a", "b")
        assert chain.probability("b", "b") == 1.0  # b made absorbing

    def test_from_edges_rejects_dangling_without_absorbing(self):
        with pytest.raises(ModelStructureError):
            DTMC.from_edges({("a", "b"): 1.0}, allow_absorbing=False)

    def test_from_edges_accumulates_parallel_edges(self):
        chain = DTMC.from_edges({("a", "b"): 0.5, ("a", "a"): 0.5})
        assert chain.probability("a", "b") == 0.5

    def test_from_edges_unknown_state_in_explicit_list(self):
        with pytest.raises(ValidationError, match="unknown state"):
            DTMC.from_edges({("a", "b"): 1.0}, states=["a"])


class TestAccessors:
    def test_probability_and_successors(self, weather):
        assert weather.probability("sunny", "rainy") == pytest.approx(0.1)
        assert weather.successors("rainy") == {"sunny": 0.5, "rainy": 0.5}

    def test_unknown_state(self, weather):
        with pytest.raises(ValidationError, match="unknown state"):
            weather.probability("foggy", "sunny")

    def test_len_and_repr(self, weather):
        assert len(weather) == 2
        assert "2" in repr(weather)

    def test_transition_matrix_is_copy(self, weather):
        m = weather.transition_matrix
        m[0, 0] = 0.0
        assert weather.probability("sunny", "sunny") == pytest.approx(0.9)


class TestStationary:
    def test_weather_closed_form(self, weather):
        pi = weather.stationary_distribution()
        assert pi["sunny"] == pytest.approx(5.0 / 6.0, abs=1e-12)

    def test_power_matches_direct(self, weather):
        direct = weather.stationary_distribution("direct")
        power = weather.stationary_distribution("power")
        for state in weather.states:
            assert power[state] == pytest.approx(direct[state], abs=1e-9)

    def test_unknown_method(self, weather):
        with pytest.raises(ValidationError):
            weather.stationary_distribution("magic")

    def test_transient_distribution_converges_to_stationary(self, weather):
        dist = weather.transient_distribution({"sunny": 1.0}, 200)
        pi = weather.stationary_distribution()
        assert dist["sunny"] == pytest.approx(pi["sunny"], abs=1e-10)

    def test_transient_zero_steps_is_initial(self, weather):
        dist = weather.transient_distribution({"rainy": 1.0}, 0)
        assert dist["rainy"] == 1.0

    def test_transient_rejects_negative_steps(self, weather):
        with pytest.raises(ValidationError):
            weather.transient_distribution({"rainy": 1.0}, -1)


class TestAbsorption:
    def test_absorbing_states_detected(self, gambler):
        assert gambler.absorbing_states() == (0, 3)

    def test_gamblers_ruin_probabilities(self, gambler):
        analysis = gambler.absorption_analysis()
        # From fortune 1, ruin probability is 2/3 in the fair game on {0..3}.
        assert analysis.absorption_probability(1, 0) == pytest.approx(2.0 / 3.0)
        assert analysis.absorption_probability(1, 3) == pytest.approx(1.0 / 3.0)

    def test_expected_steps(self, gambler):
        analysis = gambler.absorption_analysis()
        # E[steps] from state 1 is 1*(3-1) = 2 for the fair gambler's ruin.
        index = analysis.transient_states.index(1)
        assert analysis.expected_steps[index] == pytest.approx(2.0)

    def test_expected_visits(self, gambler):
        analysis = gambler.absorption_analysis()
        assert analysis.expected_visits(1, 1) == pytest.approx(4.0 / 3.0)

    def test_no_absorbing_state_raises(self, weather):
        with pytest.raises(ModelStructureError, match="no absorbing"):
            weather.absorption_analysis()

    def test_unreachable_absorption_raises(self):
        chain = DTMC(
            ["a", "b", "sink"],
            [[0.0, 1.0, 0.0], [1.0, 0.0, 0.0], [0.0, 0.0, 1.0]],
        )
        with pytest.raises(ModelStructureError, match="cannot reach"):
            chain.absorption_analysis()

    def test_hitting_probability(self, gambler):
        assert gambler.hitting_probability(1, [3]) == pytest.approx(1.0 / 3.0)
        assert gambler.hitting_probability(2, [2]) == 1.0


class TestSampling:
    def test_sample_path_terminates_at_absorbing(self, gambler, rng):
        path = gambler.sample_path(1, rng)
        assert path[-1] in (0, 3)
        assert path[0] == 1

    def test_sample_path_respects_stop_states(self, weather, rng):
        path = weather.sample_path("sunny", rng, stop_states=["rainy"])
        assert path[-1] == "rainy"

    def test_sample_path_caps_steps(self, weather, rng):
        with pytest.raises(ModelStructureError, match="exceeded"):
            weather.sample_path("sunny", rng, max_steps=3)

    def test_empirical_absorption_matches_analysis(self, gambler, rng):
        wins = sum(
            gambler.sample_path(1, rng)[-1] == 3 for _ in range(3000)
        )
        assert wins / 3000 == pytest.approx(1.0 / 3.0, abs=0.03)
