"""Tests for repro.markov.solvers."""

import warnings

import numpy as np
import pytest

from repro.errors import NotIrreducibleError, SolverError, ValidationError
from repro.markov.solvers import (
    check_generator,
    steady_state,
    steady_state_gth,
    steady_state_linear,
    steady_state_power,
    strongly_connected_components,
)


def two_state_generator(lam=0.2, mu=1.0):
    return np.array([[-lam, lam], [mu, -mu]])


class TestCheckGenerator:
    def test_accepts_valid_generator(self):
        q = check_generator(two_state_generator())
        assert q.shape == (2, 2)

    def test_rejects_non_square(self):
        with pytest.raises(ValidationError, match="square"):
            check_generator(np.zeros((2, 3)))

    def test_rejects_negative_off_diagonal(self):
        with pytest.raises(ValidationError, match="negative off-diagonal"):
            check_generator(np.array([[0.5, -0.5], [1.0, -1.0]]))

    def test_rejects_nonzero_row_sums(self):
        with pytest.raises(ValidationError, match="sum to zero"):
            check_generator(np.array([[-1.0, 2.0], [1.0, -1.0]]))

    def test_accepts_all_absorbing(self):
        q = check_generator(np.zeros((3, 3)))
        assert np.all(q == 0.0)

    def test_rejects_nan_explicitly(self):
        # A NaN entry passes the sign and row-sum comparisons (every NaN
        # comparison is False), so without a dedicated finiteness check
        # it would only surface as a confusing solver failure later.
        q = np.array([[-1.0, 1.0], [np.nan, -1.0]])
        with pytest.raises(ValidationError, match="NaN"):
            check_generator(q)

    def test_rejects_inf_explicitly(self):
        q = np.array([[-np.inf, np.inf], [1.0, -1.0]])
        with pytest.raises(ValidationError, match="finite"):
            check_generator(q)


class TestGTH:
    def test_two_state_closed_form(self):
        lam, mu = 0.2, 1.0
        pi = steady_state_gth(two_state_generator(lam, mu))
        assert pi[0] == pytest.approx(mu / (lam + mu), abs=1e-14)
        assert pi[1] == pytest.approx(lam / (lam + mu), abs=1e-14)

    def test_single_state(self):
        pi = steady_state_gth(np.zeros((1, 1)))
        assert pi.tolist() == [1.0]

    def test_balance_and_normalization(self):
        rng = np.random.default_rng(3)
        n = 8
        q = rng.uniform(0.1, 2.0, size=(n, n))
        np.fill_diagonal(q, 0.0)
        np.fill_diagonal(q, -q.sum(axis=1))
        pi = steady_state_gth(q)
        assert pi.sum() == pytest.approx(1.0, abs=1e-12)
        assert np.abs(pi @ q).max() < 1e-12
        assert np.all(pi >= 0)

    def test_stiff_generator_stays_positive(self):
        # Rates spanning nine orders of magnitude: the regime where naive
        # elimination loses positivity.
        q = np.array(
            [
                [-1e-9, 1e-9, 0.0],
                [1.0, -1.0 - 1e-9, 1e-9],
                [0.0, 1.0, -1.0],
            ]
        )
        pi = steady_state_gth(q)
        assert np.all(pi > 0)
        assert np.abs(pi @ q).max() < 1e-18

    def test_reducible_chain_rejected(self):
        q = np.array([[-1.0, 1.0], [0.0, 0.0]])  # absorbing second state
        with pytest.raises(NotIrreducibleError):
            steady_state_gth(q)

    def test_disconnected_chain_rejected(self):
        q = np.zeros((4, 4))
        q[0, 1] = q[1, 0] = 1.0
        q[2, 3] = q[3, 2] = 1.0
        np.fill_diagonal(q, -q.sum(axis=1))
        with pytest.raises(NotIrreducibleError):
            steady_state_gth(q)


class TestLinear:
    def test_matches_gth(self):
        rng = np.random.default_rng(11)
        n = 10
        q = rng.uniform(0.0, 1.0, size=(n, n))
        np.fill_diagonal(q, 0.0)
        np.fill_diagonal(q, -q.sum(axis=1))
        assert steady_state_linear(q) == pytest.approx(
            steady_state_gth(q), abs=1e-10
        )

    def test_sparse_path_matches_dense(self):
        q = two_state_generator()
        assert steady_state_linear(q, sparse=True) == pytest.approx(
            steady_state_linear(q, sparse=False), abs=1e-12
        )

    def test_reducible_chain_rejected(self):
        q = np.array([[-1.0, 1.0], [0.0, 0.0]])
        with pytest.raises(NotIrreducibleError):
            steady_state_linear(q)


class TestPower:
    def test_matches_direct_on_random_chain(self):
        rng = np.random.default_rng(5)
        p = rng.uniform(0.05, 1.0, size=(6, 6))
        p /= p.sum(axis=1, keepdims=True)
        pi, iterations = steady_state_power(p)
        assert iterations > 0
        direct = steady_state_gth(p - np.eye(6))
        assert pi == pytest.approx(direct, abs=1e-9)

    def test_periodic_chain_converges(self):
        # A two-cycle: plain power iteration oscillates; ours averages.
        p = np.array([[0.0, 1.0], [1.0, 0.0]])
        pi, _ = steady_state_power(p)
        assert pi == pytest.approx([0.5, 0.5], abs=1e-9)

    def test_iteration_cap(self):
        p = np.array([[0.5, 0.5], [0.5, 0.5]])
        with pytest.raises(SolverError):
            steady_state_power(p, tol=0.0, max_iterations=3)

    def test_rejects_non_square(self):
        with pytest.raises(ValidationError):
            steady_state_power(np.zeros((2, 3)))


class TestSteadyStateFallback:
    def test_healthy_generator_solves_silently(self):
        q = two_state_generator()
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any fallback warning fails
            pi = steady_state(q)
        assert pi == pytest.approx(steady_state_gth(q), abs=1e-12)

    def test_falls_back_to_linear_with_warning(self, monkeypatch):
        q = two_state_generator()

        def broken_gth(generator):
            raise SolverError("synthetic GTH failure")

        monkeypatch.setattr(
            "repro.markov.solvers.steady_state_gth", broken_gth
        )
        with pytest.warns(UserWarning, match="falling back to linear"):
            pi = steady_state(q)
        assert pi == pytest.approx([1.0 / 1.2, 0.2 / 1.2], abs=1e-12)

    def test_falls_back_to_power_iteration(self, monkeypatch):
        q = two_state_generator()

        def broken_linear(generator, sparse=None):
            raise SolverError("synthetic failure")

        def broken_gth(generator):
            raise SolverError("synthetic failure")

        monkeypatch.setattr(
            "repro.markov.solvers.steady_state_linear", broken_linear
        )
        monkeypatch.setattr(
            "repro.markov.solvers.steady_state_gth", broken_gth
        )
        with pytest.warns(UserWarning, match="falling back to power iteration"):
            pi = steady_state(q)
        assert pi == pytest.approx([1.0 / 1.2, 0.2 / 1.2], abs=1e-8)

    def test_rejects_inaccurate_solution(self, monkeypatch):
        q = two_state_generator()
        expected = np.array([1.0 / 1.2, 0.2 / 1.2])

        def sloppy_gth(generator):
            return np.array([0.9, 0.1])  # wrong: fails the residual check

        monkeypatch.setattr(
            "repro.markov.solvers.steady_state_gth", sloppy_gth
        )
        with pytest.warns(UserWarning, match="residual"):
            pi = steady_state(q)
        assert pi == pytest.approx(expected, abs=1e-12)

    def test_all_strategies_failing_raises_solver_error(self, monkeypatch):
        q = two_state_generator()

        def broken(generator, sparse=None):
            raise SolverError("synthetic failure")

        def broken_power(p, tol=1e-12, max_iterations=200_000):
            raise SolverError("synthetic power failure")

        monkeypatch.setattr(
            "repro.markov.solvers.steady_state_linear", broken
        )
        monkeypatch.setattr("repro.markov.solvers.steady_state_gth", broken)
        monkeypatch.setattr(
            "repro.markov.solvers.steady_state_power", broken_power
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with pytest.raises(
                SolverError, match="all steady-state strategies failed"
            ):
                steady_state(q)

    def test_reducible_chain_raises_immediately(self):
        q = np.array([[-1.0, 1.0], [0.0, 0.0]])
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no fallback warnings expected
            with pytest.raises(NotIrreducibleError):
                steady_state(q)

    def test_stiff_availability_generator(self):
        # The paper's regime: per-hour repairs against 1e-4/h failures
        # across several orders of magnitude.
        q = np.array(
            [
                [-1e-9, 1e-9, 0.0],
                [1.0, -1.0 - 1e-9, 1e-9],
                [0.0, 1.0, -1.0],
            ]
        )
        pi = steady_state(q)
        assert np.all(pi > 0)
        assert np.abs(pi @ q).max() / np.abs(q).max() < 1e-9

    def test_ctmc_auto_method_routes_through_robust_solver(self):
        from repro.markov import CTMC

        chain = CTMC.from_rates({("up", "down"): 0.2, ("down", "up"): 1.0})
        auto = chain.steady_state()
        gth = chain.steady_state(method="gth")
        assert auto["up"] == pytest.approx(gth["up"], abs=1e-12)


class TestSCC:
    def test_identifies_components_in_topological_order(self):
        # 0 <-> 1 form a transient class draining into absorbing 2.
        adjacency = np.array(
            [[0, 1, 0], [1, 0, 1], [0, 0, 0]], dtype=float
        )
        components = strongly_connected_components(adjacency)
        assert sorted(components[0]) == [0, 1]
        assert components[-1] == [2]

    def test_single_component(self):
        adjacency = np.array([[0, 1], [1, 0]], dtype=float)
        assert len(strongly_connected_components(adjacency)) == 1
