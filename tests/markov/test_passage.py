"""Tests for first-passage analysis."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.markov import (
    CTMC,
    DTMC,
    first_passage_probability_by,
    mean_first_passage_steps,
    mean_first_passage_time,
)


@pytest.fixture
def component():
    return CTMC(["up", "down"], [[-0.25, 0.25], [1.0, -1.0]])


class TestCTMCPassage:
    def test_two_state_mttf(self, component):
        assert mean_first_passage_time(component, "up", ["down"]) == (
            pytest.approx(4.0)
        )

    def test_two_state_mttr(self, component):
        assert mean_first_passage_time(component, "down", ["up"]) == (
            pytest.approx(1.0)
        )

    def test_start_in_targets(self, component):
        assert mean_first_passage_time(component, "up", ["up"]) == 0.0

    def test_multiple_targets(self):
        chain = CTMC.from_rates({
            ("a", "b"): 1.0, ("a", "c"): 1.0,
            ("b", "a"): 1.0, ("c", "a"): 1.0,
        })
        # From a, exit rate to {b, c} is 2 => expected 0.5.
        assert mean_first_passage_time(chain, "a", ["b", "c"]) == (
            pytest.approx(0.5)
        )

    def test_passage_through_intermediate(self):
        # a -> b -> c chain with no shortcuts: E = 1/r1 + 1/r2.
        chain = CTMC.from_rates({("a", "b"): 2.0, ("b", "c"): 4.0},
                                states=["a", "b", "c"])
        assert mean_first_passage_time(chain, "a", ["c"]) == (
            pytest.approx(0.5 + 0.25)
        )

    def test_empty_targets(self, component):
        with pytest.raises(ValidationError):
            mean_first_passage_time(component, "up", [])

    def test_matches_simulation(self, component, rng):
        times = []
        for _ in range(3000):
            clock, state = 0.0, "up"
            while state != "down":
                dwell, state = component.sample_sojourn(state, rng)
                clock += dwell
            times.append(clock)
        assert np.mean(times) == pytest.approx(4.0, rel=0.1)


class TestDTMCPassage:
    def test_geometric_hitting(self):
        chain = DTMC(["a", "b"], [[0.5, 0.5], [1.0, 0.0]])
        assert mean_first_passage_steps(chain, "a", ["b"]) == pytest.approx(2.0)

    def test_start_in_targets(self):
        chain = DTMC(["a", "b"], [[0.5, 0.5], [0.5, 0.5]])
        assert mean_first_passage_steps(chain, "b", ["b"]) == 0.0

    def test_kemeny_style_consistency(self):
        """For an irreducible DTMC, E_pi[steps to hit j] relates to the
        stationary distribution via the return-time identity
        m_jj = 1 / pi_j (expected return time)."""
        rng = np.random.default_rng(4)
        p = rng.uniform(0.1, 1.0, size=(4, 4))
        p /= p.sum(axis=1, keepdims=True)
        chain = DTMC(list("abcd"), p)
        pi = chain.stationary_distribution()
        for j, target in enumerate("abcd"):
            # Return time: 1 + sum_k P[j,k] * m_k,target.
            expected_return = 1.0 + sum(
                p[j, k] * mean_first_passage_steps(chain, source, [target])
                for k, source in enumerate("abcd")
            )
            assert expected_return == pytest.approx(
                1.0 / pi[target], rel=1e-9
            )


class TestPassageProbability:
    def test_cdf_limits(self, component):
        assert first_passage_probability_by(component, "up", ["down"], 0.0) == (
            pytest.approx(0.0)
        )
        assert first_passage_probability_by(
            component, "up", ["down"], 1e4
        ) == pytest.approx(1.0, abs=1e-9)

    def test_exponential_first_passage(self, component):
        # up -> down is a single exponential stage: CDF = 1 - e^{-0.25 t}.
        import math

        t = 3.0
        assert first_passage_probability_by(
            component, "up", ["down"], t
        ) == pytest.approx(1.0 - math.exp(-0.25 * t), abs=1e-10)

    def test_start_in_targets(self, component):
        assert first_passage_probability_by(
            component, "down", ["down"], 0.0
        ) == 1.0

    def test_monotone_in_time(self, component):
        values = [
            first_passage_probability_by(component, "up", ["down"], t)
            for t in (0.5, 1.0, 2.0, 5.0)
        ]
        assert values == sorted(values)


class TestFarmMissionMetrics:
    def test_perfect_farm_exhaustion_time(self):
        from repro.availability import PerfectCoverageFarm

        farm = PerfectCoverageFarm(servers=2, failure_rate=0.1,
                                   repair_rate=1.0)
        # Hand solve: E2 = 1/(2l) + E1; E1 = 1/(l+m) + m/(l+m) E2
        # with l = 0.1, m = 1.0: E2 = 5 + E1, E1 = (1 + E2 m) / (l + m)
        lam, mu = 0.1, 1.0
        e2 = (1.0 / (2 * lam)) * (1 + (lam + mu) / lam) - 0.0
        # Solve properly: E1 = (1 + mu * E2)/(lam + mu); E2 = 1/(2 lam) + E1.
        # => E1 = (1 + mu (1/(2 lam) + E1))/(lam+mu)
        # => E1 (lam + mu - mu) = 1 + mu/(2 lam) => E1 = (1 + mu/(2 lam))/lam
        e1 = (1 + mu / (2 * lam)) / lam
        e2 = 1 / (2 * lam) + e1
        assert farm.mean_time_to_exhaustion() == pytest.approx(e2, rel=1e-10)

    def test_redundancy_extends_exhaustion_time(self):
        from repro.availability import PerfectCoverageFarm

        times = [
            PerfectCoverageFarm(servers=n, failure_rate=0.01,
                                repair_rate=1.0).mean_time_to_exhaustion()
            for n in (1, 2, 3)
        ]
        assert times[0] < times[1] < times[2]
        assert times[1] / times[0] > 10  # repair races make it superlinear

    def test_exhaustion_probability_cdf(self):
        from repro.availability import PerfectCoverageFarm

        farm = PerfectCoverageFarm(servers=2, failure_rate=0.1,
                                   repair_rate=1.0)
        p_short = farm.exhaustion_probability_by(1.0)
        p_long = farm.exhaustion_probability_by(1000.0)
        assert 0.0 < p_short < p_long <= 1.0

    def test_imperfect_service_loss_much_sooner(self):
        from repro.availability import ImperfectCoverageFarm, PerfectCoverageFarm

        imperfect = ImperfectCoverageFarm(
            servers=4, failure_rate=1e-3, repair_rate=1.0,
            coverage=0.98, reconfiguration_rate=12.0,
        )
        perfect = PerfectCoverageFarm(servers=4, failure_rate=1e-3,
                                      repair_rate=1.0)
        # A single uncovered failure downs the service, so the loss time
        # is near 1 / (NW (1-c) lambda), vastly below full exhaustion.
        loss = imperfect.mean_time_to_service_loss()
        exhaustion = perfect.mean_time_to_exhaustion()
        assert loss < exhaustion / 1e3
        approx_uncovered = 1.0 / (4 * 0.02 * 1e-3)
        assert loss == pytest.approx(approx_uncovered, rel=0.2)
