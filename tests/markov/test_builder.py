"""Tests for repro.markov.builder."""

import pytest

from repro.errors import ModelStructureError, ValidationError
from repro.markov import CTMCBuilder, birth_death_chain


class TestCTMCBuilder:
    def test_builds_two_state_chain(self):
        chain = (
            CTMCBuilder()
            .add_transition("up", "down", 1e-3)
            .add_transition("down", "up", 0.5)
            .build()
        )
        assert chain.states == ("up", "down")
        assert chain.rate("up", "down") == pytest.approx(1e-3)

    def test_rates_accumulate(self):
        builder = CTMCBuilder()
        builder.add_transition("a", "b", 1.0)
        builder.add_transition("a", "b", 0.5)
        assert builder.build().rate("a", "b") == pytest.approx(1.5)

    def test_state_registration_order_preserved(self):
        builder = CTMCBuilder()
        builder.add_state("z")
        builder.add_transition("a", "z", 1.0)
        builder.add_transition("z", "a", 1.0)
        assert builder.build().states == ("z", "a")

    def test_add_state_idempotent(self):
        builder = CTMCBuilder()
        builder.add_state("a").add_state("a")
        assert builder.states == ("a",)

    def test_rejects_self_transition(self):
        with pytest.raises(ValidationError, match="self-transition"):
            CTMCBuilder().add_transition("a", "a", 1.0)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValidationError):
            CTMCBuilder().add_transition("a", "b", 0.0)

    def test_empty_builder_rejected(self):
        with pytest.raises(ModelStructureError):
            CTMCBuilder().build()


class TestBirthDeathChain:
    def test_builds_expected_rates(self):
        chain = birth_death_chain([2.0, 2.0], [3.0, 6.0])
        assert chain.states == (0, 1, 2)
        assert chain.rate(0, 1) == 2.0
        assert chain.rate(2, 1) == 6.0

    def test_steady_state_product_form(self):
        chain = birth_death_chain([1.0, 1.0], [2.0, 2.0])
        pi = chain.steady_state()
        total = 1 + 0.5 + 0.25
        assert pi[0] == pytest.approx(1 / total)
        assert pi[2] == pytest.approx(0.25 / total)

    def test_custom_labels(self):
        chain = birth_death_chain([1.0], [1.0], states=["empty", "full"])
        assert chain.states == ("empty", "full")

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="equal length"):
            birth_death_chain([1.0, 1.0], [1.0])

    def test_label_count_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="state labels"):
            birth_death_chain([1.0], [1.0], states=["only-one"])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            birth_death_chain([], [])
