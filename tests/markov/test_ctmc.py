"""Tests for repro.markov.ctmc."""

import numpy as np
import pytest

from repro.errors import ModelStructureError, ValidationError
from repro.markov import CTMC


@pytest.fixture
def component():
    lam, mu = 1e-3, 0.5
    return CTMC(["up", "down"], [[-lam, lam], [mu, -mu]])


@pytest.fixture
def mm1_truncated():
    """An M/M/1/2 queue as a CTMC (states 0, 1, 2)."""
    lam, mu = 1.0, 2.0
    return CTMC.from_rates(
        {(0, 1): lam, (1, 2): lam, (1, 0): mu, (2, 1): mu}
    )


class TestConstruction:
    def test_from_rates_builds_diagonal(self, mm1_truncated):
        q = mm1_truncated.generator
        assert np.allclose(q.sum(axis=1), 0.0)
        assert mm1_truncated.rate(0, 1) == 1.0

    def test_from_rates_rejects_self_loop(self):
        with pytest.raises(ValidationError, match="self-transition"):
            CTMC.from_rates({("a", "a"): 1.0})

    def test_from_rates_accumulates(self):
        chain = CTMC.from_rates({("a", "b"): 1.0})
        other = CTMC.from_rates({("a", "b"): 0.4, ("b", "a"): 1.0})
        assert other.rate("a", "b") == pytest.approx(0.4)
        assert chain.states == ("a", "b")

    def test_explicit_states_allow_absorbing(self):
        chain = CTMC.from_rates({("a", "b"): 1.0}, states=["a", "b", "c"])
        assert chain.absorbing_states() == ("b", "c")

    def test_rejects_bad_generator(self):
        with pytest.raises(ValidationError):
            CTMC(["a", "b"], [[-1.0, 2.0], [1.0, -1.0]])

    def test_rejects_duplicate_states(self):
        with pytest.raises(ValidationError, match="distinct"):
            CTMC(["a", "a"], np.zeros((2, 2)))


class TestAccessors:
    def test_exit_rate_and_holding_time(self, component):
        assert component.exit_rate("up") == pytest.approx(1e-3)
        assert component.holding_time("up") == pytest.approx(1000.0)

    def test_holding_time_absorbing_is_inf(self):
        chain = CTMC.from_rates({("a", "b"): 1.0}, states=["a", "b"])
        assert chain.holding_time("b") == float("inf")

    def test_rate_diagonal_rejected(self, component):
        with pytest.raises(ValidationError):
            component.rate("up", "up")

    def test_unknown_state(self, component):
        with pytest.raises(ValidationError, match="unknown state"):
            component.exit_rate("sideways")


class TestDerivedChains:
    def test_embedded_dtmc_of_component(self, component):
        jump = component.embedded_dtmc()
        assert jump.probability("up", "down") == 1.0
        assert jump.probability("down", "up") == 1.0

    def test_embedded_dtmc_absorbing(self):
        chain = CTMC.from_rates({("a", "b"): 2.0}, states=["a", "b"])
        jump = chain.embedded_dtmc()
        assert jump.probability("b", "b") == 1.0

    def test_uniformized_dtmc_default_rate(self, mm1_truncated):
        dtmc, rate = mm1_truncated.uniformized_dtmc()
        assert rate >= 3.0  # max exit rate is lam + mu = 3
        pi_c = mm1_truncated.steady_state()
        pi_d = dtmc.stationary_distribution()
        for state in mm1_truncated.states:
            assert pi_d[state] == pytest.approx(pi_c[state], abs=1e-10)

    def test_uniformized_rate_below_max_rejected(self, mm1_truncated):
        with pytest.raises(ValidationError, match="below the maximum"):
            mm1_truncated.uniformized_dtmc(rate=0.5)


class TestSteadyState:
    def test_component_availability(self, component):
        pi = component.steady_state()
        assert pi["up"] == pytest.approx(0.5 / 0.501, abs=1e-12)

    def test_methods_agree(self, mm1_truncated):
        gth = mm1_truncated.steady_state("gth")
        linear = mm1_truncated.steady_state("linear")
        for state in mm1_truncated.states:
            assert gth[state] == pytest.approx(linear[state], abs=1e-12)

    def test_mm1_2_closed_form(self, mm1_truncated):
        # rho = 1/2: pi_n proportional to rho^n.
        pi = mm1_truncated.steady_state()
        total = 1 + 0.5 + 0.25
        assert pi[0] == pytest.approx(1 / total)
        assert pi[2] == pytest.approx(0.25 / total)

    def test_unknown_method(self, component):
        with pytest.raises(ValidationError):
            component.steady_state("bogus")


class TestTransient:
    def test_transient_matches_closed_form(self, component):
        # Two-state availability: A(t) = A + (1 - A) exp(-(lam+mu) t).
        lam, mu = 1e-3, 0.5
        t = 3.7
        dist = component.transient_distribution({"up": 1.0}, t)
        steady = mu / (lam + mu)
        expected = steady + (1 - steady) * np.exp(-(lam + mu) * t)
        assert dist["up"] == pytest.approx(expected, abs=1e-10)

    def test_transient_at_zero(self, component):
        dist = component.transient_distribution({"down": 1.0}, 0.0)
        assert dist["down"] == 1.0

    def test_probability_in(self, component):
        dist = component.transient_distribution({"up": 1.0}, 1.0)
        total = component.probability_in(["up", "down"], dist)
        assert total == pytest.approx(1.0, abs=1e-12)


class TestAbsorption:
    def test_mean_time_to_absorption_exponential(self):
        chain = CTMC.from_rates({("up", "down"): 0.25}, states=["up", "down"])
        assert chain.mean_time_to_absorption("up") == pytest.approx(4.0)

    def test_mtta_series_of_stages(self):
        # Erlang-3: three sequential exponential stages of rate 1.
        chain = CTMC.from_rates(
            {("a", "b"): 1.0, ("b", "c"): 1.0, ("c", "done"): 1.0},
            states=["a", "b", "c", "done"],
        )
        assert chain.mean_time_to_absorption("a") == pytest.approx(3.0)

    def test_mtta_from_absorbing_state_is_zero(self):
        chain = CTMC.from_rates({("a", "b"): 1.0}, states=["a", "b"])
        assert chain.mean_time_to_absorption("b") == 0.0

    def test_mtta_without_absorbing_state(self, component):
        with pytest.raises(ModelStructureError):
            component.mean_time_to_absorption("up")


class TestSampling:
    def test_sample_sojourn_mean(self, component, rng):
        samples = [component.sample_sojourn("down", rng)[0] for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(2.0, rel=0.1)

    def test_sample_sojourn_absorbing(self, rng):
        chain = CTMC.from_rates({("a", "b"): 1.0}, states=["a", "b"])
        dwell, nxt = chain.sample_sojourn("b", rng)
        assert dwell == float("inf")
        assert nxt is None
