"""Tests for repro.markov.transient (uniformization)."""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.errors import ValidationError
from repro.markov.transient import transient_distribution, uniformization


def random_generator(n, seed):
    rng = np.random.default_rng(seed)
    q = rng.uniform(0.0, 2.0, size=(n, n))
    np.fill_diagonal(q, 0.0)
    np.fill_diagonal(q, -q.sum(axis=1))
    return q


class TestUniformization:
    def test_matches_matrix_exponential(self):
        q = random_generator(6, seed=1)
        p0 = np.zeros(6)
        p0[0] = 1.0
        for t in (0.1, 1.0, 7.5):
            expected = p0 @ expm(q * t)
            result = uniformization(q, p0, t)
            assert result == pytest.approx(expected, abs=1e-10)

    def test_time_zero_returns_initial(self):
        q = random_generator(4, seed=2)
        p0 = np.array([0.25, 0.25, 0.25, 0.25])
        assert uniformization(q, p0, 0.0).tolist() == p0.tolist()

    def test_large_time_reaches_steady_state(self):
        from repro.markov.solvers import steady_state_gth

        q = random_generator(5, seed=3)
        p0 = np.zeros(5)
        p0[2] = 1.0
        result = uniformization(q, p0, 500.0)
        assert result == pytest.approx(steady_state_gth(q), abs=1e-8)

    def test_large_poisson_rate_underflow_handled(self):
        # Lambda * t around 2000: naive exp(-Lambda t) underflows to zero.
        q = np.array([[-100.0, 100.0], [100.0, -100.0]])
        p0 = np.array([1.0, 0.0])
        result = uniformization(q, p0, 10.0)
        assert result == pytest.approx([0.5, 0.5], abs=1e-9)

    def test_all_absorbing_generator(self):
        q = np.zeros((3, 3))
        p0 = np.array([0.2, 0.3, 0.5])
        assert uniformization(q, p0, 42.0).tolist() == p0.tolist()

    def test_rejects_negative_time(self):
        q = random_generator(3, seed=4)
        with pytest.raises(ValidationError):
            uniformization(q, np.array([1.0, 0.0, 0.0]), -1.0)

    def test_distribution_stays_normalized(self):
        q = random_generator(7, seed=5)
        p0 = np.full(7, 1.0 / 7.0)
        result = uniformization(q, p0, 3.0)
        assert result.sum() == pytest.approx(1.0, abs=1e-12)
        assert np.all(result >= 0)


class TestVectorized:
    def test_multiple_times(self):
        q = random_generator(4, seed=6)
        p0 = np.array([1.0, 0.0, 0.0, 0.0])
        times = [0.0, 0.5, 2.0]
        result = transient_distribution(q, p0, np.array(times))
        assert result.shape == (3, 4)
        for row, t in zip(result, times):
            assert row == pytest.approx(uniformization(q, p0, t), abs=1e-12)
