"""Tests for repro.markov.rewards."""

import pytest

from repro.errors import ValidationError
from repro.markov import CTMC, MarkovRewardModel


@pytest.fixture
def component():
    return CTMC(["up", "down"], [[-1e-3, 1e-3], [0.5, -0.5]])


class TestConstruction:
    def test_mapping_rewards_default_zero(self, component):
        model = MarkovRewardModel(component, {"up": 1.0})
        assert model.reward_of("down") == 0.0

    def test_callable_rewards(self, component):
        model = MarkovRewardModel(component, lambda s: 1.0 if s == "up" else 0.0)
        assert model.reward_of("up") == 1.0

    def test_unknown_state_in_mapping_rejected(self, component):
        with pytest.raises(ValidationError, match="unknown states"):
            MarkovRewardModel(component, {"sideways": 1.0})

    def test_bad_rewards_type_rejected(self, component):
        with pytest.raises(ValidationError):
            MarkovRewardModel(component, "not rewards")

    def test_reward_of_unknown_state(self, component):
        model = MarkovRewardModel(component, {"up": 1.0})
        with pytest.raises(ValidationError):
            model.reward_of("sideways")


class TestSteadyStateReward:
    def test_binary_reward_is_availability(self, component):
        model = MarkovRewardModel(component, {"up": 1.0})
        assert model.steady_state_reward() == pytest.approx(0.5 / 0.501)

    def test_general_rewards(self, component):
        model = MarkovRewardModel(component, {"up": 2.0, "down": -1.0})
        pi = component.steady_state()
        expected = 2.0 * pi["up"] - 1.0 * pi["down"]
        assert model.steady_state_reward() == pytest.approx(expected)

    def test_web_service_reward_model_matches_closed_form(self):
        from repro.availability import WebServiceModel

        model = WebServiceModel(
            servers=3,
            arrival_rate=100.0,
            service_rate=100.0,
            buffer_capacity=10,
            failure_rate=1e-3,
            repair_rate=1.0,
            coverage=0.95,
            reconfiguration_rate=12.0,
        )
        assert model.reward_model().steady_state_reward() == pytest.approx(
            model.availability(), abs=1e-14
        )


class TestTransientReward:
    def test_expected_reward_at_time_zero(self, component):
        model = MarkovRewardModel(component, {"up": 1.0})
        assert model.expected_reward_at({"up": 1.0}, 0.0) == pytest.approx(1.0)

    def test_accumulated_reward_short_horizon(self, component):
        model = MarkovRewardModel(component, {"up": 1.0})
        # Over a horizon much shorter than 1/lambda the system stays up.
        accumulated = model.accumulated_reward({"up": 1.0}, 0.1, steps=20)
        assert accumulated == pytest.approx(0.1, rel=1e-3)

    def test_accumulated_reward_zero_horizon(self, component):
        model = MarkovRewardModel(component, {"up": 1.0})
        assert model.accumulated_reward({"up": 1.0}, 0.0) == 0.0

    def test_interval_availability_converges_to_steady(self, component):
        model = MarkovRewardModel(component, {"up": 1.0})
        interval = model.interval_availability({"up": 1.0}, 5000.0, steps=400)
        assert interval == pytest.approx(0.5 / 0.501, rel=1e-3)

    def test_interval_availability_rejects_zero_horizon(self, component):
        model = MarkovRewardModel(component, {"up": 1.0})
        with pytest.raises(ValidationError):
            model.interval_availability({"up": 1.0}, 0.0)

    def test_negative_horizon_rejected(self, component):
        model = MarkovRewardModel(component, {"up": 1.0})
        with pytest.raises(ValidationError):
            model.accumulated_reward({"up": 1.0}, -1.0)
