"""Tests for SPN reachability and steady-state analysis."""

import pytest

from repro.errors import ModelStructureError
from repro.spn import SPNAnalysis, StochasticPetriNet


def two_state_net(lam=1.0, mu=3.0):
    net = StochasticPetriNet("component")
    net.add_place("up", tokens=1)
    net.add_place("down")
    net.add_timed_transition("fail", rate=lam)
    net.add_timed_transition("repair", rate=mu)
    net.add_input_arc("up", "fail")
    net.add_output_arc("fail", "down")
    net.add_input_arc("down", "repair")
    net.add_output_arc("repair", "up")
    return net


class TestTwoStateNet:
    def test_availability(self):
        analysis = SPNAnalysis(two_state_net())
        assert analysis.probability(lambda m: m["up"] == 1) == pytest.approx(0.75)

    def test_expected_tokens(self):
        analysis = SPNAnalysis(two_state_net())
        assert analysis.expected_tokens("up") == pytest.approx(0.75)
        assert analysis.expected_tokens("down") == pytest.approx(0.25)

    def test_throughput_balance(self):
        analysis = SPNAnalysis(two_state_net())
        # In steady state, failures and repairs happen at the same rate.
        assert analysis.throughput("fail") == pytest.approx(
            analysis.throughput("repair")
        )

    def test_tangible_count(self):
        assert SPNAnalysis(two_state_net()).tangible_count == 2


class TestQueueAsNet:
    def test_mm1k_blocking_matches_queueing(self):
        from repro.queueing import mm1k_blocking_probability

        alpha, nu, k = 0.8, 1.0, 5
        net = StochasticPetriNet("mm1k")
        net.add_place("queue", tokens=0, capacity=k)
        net.add_timed_transition("arrive", rate=alpha)
        net.add_timed_transition("serve", rate=nu)
        net.add_output_arc("arrive", "queue")
        net.add_input_arc("queue", "serve")
        analysis = SPNAnalysis(net)
        blocking = analysis.probability(lambda m: m["queue"] == k)
        assert blocking == pytest.approx(mm1k_blocking_probability(alpha, k))


class TestImmediateTransitions:
    def test_coverage_branching(self):
        """A failure immediately branches covered/uncovered by weight."""
        net = StochasticPetriNet("coverage")
        net.add_place("up", tokens=1)
        net.add_place("deciding")
        net.add_place("auto")
        net.add_place("manual")
        net.add_timed_transition("fail", rate=1.0)
        net.add_input_arc("up", "fail")
        net.add_output_arc("fail", "deciding")
        net.add_immediate_transition("covered", weight=0.98)
        net.add_immediate_transition("uncovered", weight=0.02)
        net.add_input_arc("deciding", "covered")
        net.add_input_arc("deciding", "uncovered")
        net.add_output_arc("covered", "auto")
        net.add_output_arc("uncovered", "manual")
        net.add_timed_transition("restart-auto", rate=100.0)
        net.add_timed_transition("restart-manual", rate=1.0)
        net.add_input_arc("auto", "restart-auto")
        net.add_output_arc("restart-auto", "up")
        net.add_input_arc("manual", "restart-manual")
        net.add_output_arc("restart-manual", "up")

        analysis = SPNAnalysis(net)
        # Vanishing marking (deciding) is eliminated.
        assert all(
            net.marking_dict(m)["deciding"] == 0
            for m in analysis.reachability.tangible
        )
        # Flow into manual is 2% of failures.
        fail_rate = analysis.throughput("fail")
        manual_rate = analysis.throughput("restart-manual")
        assert manual_rate == pytest.approx(0.02 * fail_rate, rel=1e-9)

    def test_vanishing_initial_marking(self):
        net = StochasticPetriNet("vanishing-start")
        net.add_place("start", tokens=1)
        net.add_place("left")
        net.add_place("right")
        net.add_immediate_transition("go-left", weight=3.0)
        net.add_immediate_transition("go-right", weight=1.0)
        net.add_input_arc("start", "go-left")
        net.add_input_arc("start", "go-right")
        net.add_output_arc("go-left", "left")
        net.add_output_arc("go-right", "right")
        # Make the tangible part ergodic.
        net.add_timed_transition("swap-l", rate=1.0)
        net.add_timed_transition("swap-r", rate=1.0)
        net.add_input_arc("left", "swap-l")
        net.add_output_arc("swap-l", "right")
        net.add_input_arc("right", "swap-r")
        net.add_output_arc("swap-r", "left")
        analysis = SPNAnalysis(net)
        initial = analysis.reachability.initial_distribution
        assert sum(initial.values()) == pytest.approx(1.0)
        left_mass = sum(
            p for m, p in initial.items() if net.marking_dict(m)["left"] == 1
        )
        assert left_mass == pytest.approx(0.75)


class TestStructuralErrors:
    def test_unbounded_net_detected(self):
        net = StochasticPetriNet("unbounded")
        net.add_place("p")
        net.add_timed_transition("spawn", rate=1.0)
        net.add_output_arc("spawn", "p")
        with pytest.raises(ModelStructureError, match="unbounded|markings"):
            SPNAnalysis(net, max_markings=50)

    def test_immediate_trap_detected(self):
        net = StochasticPetriNet("trap")
        net.add_place("a", tokens=1)
        net.add_place("b")
        net.add_immediate_transition("ab")
        net.add_immediate_transition("ba")
        net.add_input_arc("a", "ab")
        net.add_output_arc("ab", "b")
        net.add_input_arc("b", "ba")
        net.add_output_arc("ba", "a")
        with pytest.raises(ModelStructureError, match="tangible|trap"):
            SPNAnalysis(net)

    def test_throughput_of_immediate_rejected(self):
        net = two_state_net()
        analysis = SPNAnalysis(net)
        from repro.errors import ValidationError

        with pytest.raises(ValidationError, match="unknown transition"):
            analysis.throughput("nope")


class TestFarmEquivalence:
    def test_imperfect_coverage_farm_as_net(self):
        """The Fig. 10 model rebuilt as a GSPN matches the closed forms."""
        from repro.availability import ImperfectCoverageFarm

        nw, lam, mu, beta, c = 3, 1e-3, 1.0, 12.0, 0.95
        net = StochasticPetriNet("farm")
        net.add_place("up", tokens=nw)
        net.add_place("failed")
        net.add_place("manual")
        net.add_timed_transition("covered", rate_function=lambda m: m["up"] * c * lam)
        net.add_input_arc("up", "covered")
        net.add_output_arc("covered", "failed")
        net.add_timed_transition(
            "uncovered", rate_function=lambda m: m["up"] * (1 - c) * lam
        )
        net.add_input_arc("up", "uncovered")
        net.add_output_arc("uncovered", "manual")
        net.add_timed_transition("reconfigure", rate=beta)
        net.add_input_arc("manual", "reconfigure")
        net.add_output_arc("reconfigure", "failed")
        net.add_timed_transition("repair", rate=mu)
        net.add_input_arc("failed", "repair")
        net.add_output_arc("repair", "up")
        # In the paper's model nothing else happens during a manual
        # reconfiguration (states y_i have only the beta transition out).
        net.add_inhibitor_arc("manual", "repair")
        net.add_inhibitor_arc("manual", "covered")
        net.add_inhibitor_arc("manual", "uncovered")

        analysis = SPNAnalysis(net)
        farm = ImperfectCoverageFarm(
            servers=nw,
            failure_rate=lam,
            repair_rate=mu,
            coverage=c,
            reconfiguration_rate=beta,
        )
        spn_down = analysis.probability(
            lambda m: m["manual"] > 0 or m["up"] == 0
        )
        assert spn_down == pytest.approx(farm.down_state_probability(), rel=1e-9)
        operational, _ = farm.state_probabilities()
        for i in range(nw + 1):
            spn_prob = analysis.probability(
                lambda m, i=i: m["up"] == i and m["manual"] == 0
            )
            assert spn_prob == pytest.approx(operational[i], rel=1e-9, abs=1e-15)
