"""Tests for SPN definition and firing semantics."""

import pytest

from repro.errors import ModelStructureError, ValidationError
from repro.spn import StochasticPetriNet


@pytest.fixture
def component_net():
    net = StochasticPetriNet("component")
    net.add_place("up", tokens=1)
    net.add_place("down")
    net.add_timed_transition("fail", rate=1.0)
    net.add_timed_transition("repair", rate=3.0)
    net.add_input_arc("up", "fail")
    net.add_output_arc("fail", "down")
    net.add_input_arc("down", "repair")
    net.add_output_arc("repair", "up")
    return net


class TestConstruction:
    def test_duplicate_place_rejected(self, component_net):
        with pytest.raises(ValidationError):
            component_net.add_place("up")

    def test_duplicate_transition_rejected(self, component_net):
        with pytest.raises(ValidationError):
            component_net.add_timed_transition("fail", rate=1.0)

    def test_timed_transition_needs_rate(self):
        net = StochasticPetriNet()
        with pytest.raises(ValidationError, match="rate"):
            net.add_timed_transition("t")

    def test_arc_to_unknown_place(self, component_net):
        with pytest.raises(ValidationError, match="unknown place"):
            component_net.add_input_arc("nowhere", "fail")

    def test_initial_tokens_respect_capacity(self):
        net = StochasticPetriNet()
        with pytest.raises(ValidationError, match="capacity"):
            net.add_place("p", tokens=3, capacity=2)

    def test_initial_marking(self, component_net):
        assert component_net.initial_marking() == (1, 0)
        assert component_net.marking_dict((1, 0)) == {"up": 1, "down": 0}


class TestEnablingAndFiring:
    def test_enabled_when_tokens_present(self, component_net):
        assert component_net.is_enabled("fail", (1, 0))
        assert not component_net.is_enabled("fail", (0, 1))

    def test_fire_moves_tokens(self, component_net):
        assert component_net.fire("fail", (1, 0)) == (0, 1)
        assert component_net.fire("repair", (0, 1)) == (1, 0)

    def test_fire_disabled_raises(self, component_net):
        with pytest.raises(ModelStructureError, match="not enabled"):
            component_net.fire("fail", (0, 1))

    def test_capacity_disables_transition(self):
        net = StochasticPetriNet()
        net.add_place("src", tokens=2)
        net.add_place("dst", tokens=1, capacity=1)
        net.add_timed_transition("move", rate=1.0)
        net.add_input_arc("src", "move")
        net.add_output_arc("move", "dst")
        assert not net.is_enabled("move", (2, 1))
        assert net.is_enabled("move", (2, 0))

    def test_inhibitor_arc(self):
        net = StochasticPetriNet()
        net.add_place("work", tokens=1)
        net.add_place("blocker", tokens=1)
        net.add_timed_transition("go", rate=1.0)
        net.add_input_arc("work", "go")
        net.add_inhibitor_arc("blocker", "go")
        assert not net.is_enabled("go", (1, 1))
        assert net.is_enabled("go", (1, 0))

    def test_multiplicity(self):
        net = StochasticPetriNet()
        net.add_place("pool", tokens=3)
        net.add_place("pair")
        net.add_timed_transition("take-two", rate=1.0)
        net.add_input_arc("pool", "take-two", multiplicity=2)
        net.add_output_arc("take-two", "pair")
        assert net.fire("take-two", (3, 0)) == (1, 1)
        assert not net.is_enabled("take-two", (1, 1))

    def test_immediate_preempts_timed(self):
        net = StochasticPetriNet()
        net.add_place("p", tokens=1)
        net.add_place("q")
        net.add_timed_transition("slow", rate=1.0)
        net.add_immediate_transition("instant")
        net.add_input_arc("p", "slow")
        net.add_input_arc("p", "instant")
        net.add_output_arc("slow", "q")
        net.add_output_arc("instant", "q")
        enabled = net.enabled_transitions((1, 0))
        assert [t.name for t in enabled] == ["instant"]

    def test_immediate_priority_classes(self):
        net = StochasticPetriNet()
        net.add_place("p", tokens=1)
        net.add_place("q")
        net.add_immediate_transition("low", priority=1)
        net.add_immediate_transition("high", priority=2)
        net.add_input_arc("p", "low")
        net.add_input_arc("p", "high")
        net.add_output_arc("low", "q")
        net.add_output_arc("high", "q")
        enabled = net.enabled_transitions((1, 0))
        assert [t.name for t in enabled] == ["high"]

    def test_marking_dependent_rate(self):
        net = StochasticPetriNet()
        net.add_place("up", tokens=3)
        net.add_place("down")
        net.add_timed_transition("fail", rate_function=lambda m: m["up"] * 0.5)
        net.add_input_arc("up", "fail")
        net.add_output_arc("fail", "down")
        transition = net.transitions[0]
        assert transition.firing_rate({"up": 3, "down": 0}) == pytest.approx(1.5)
