"""Tests for uncertainty propagation."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.measurement import propagate_uncertainty


class TestPropagation:
    def test_deterministic_samplers_give_point_mass(self, rng):
        result = propagate_uncertainty(
            lambda p: p["x"] * 2.0,
            {"x": lambda g: 0.5},
            rng,
            draws=50,
        )
        assert result.mean == 1.0
        assert result.std == 0.0
        assert result.interval == (1.0, 1.0)
        assert result.half_width == 0.0

    def test_series_system_mean(self, rng):
        result = propagate_uncertainty(
            lambda p: p["a"] * p["b"],
            {"a": lambda g: g.beta(90, 10), "b": lambda g: g.beta(90, 10)},
            rng,
            draws=4000,
        )
        assert result.mean == pytest.approx(0.81, abs=0.01)
        low, high = result.interval
        assert low < 0.81 < high

    def test_interval_level(self, rng):
        result = propagate_uncertainty(
            lambda p: p["x"],
            {"x": lambda g: g.normal(0.0, 1.0)},
            rng,
            draws=20_000,
            confidence=0.95,
        )
        assert result.interval[0] == pytest.approx(-1.96, abs=0.1)
        assert result.interval[1] == pytest.approx(1.96, abs=0.1)

    def test_samples_exposed(self, rng):
        result = propagate_uncertainty(
            lambda p: p["x"], {"x": lambda g: g.random()}, rng, draws=10
        )
        assert result.samples.shape == (10,)

    def test_validation(self, rng):
        with pytest.raises(ValidationError):
            propagate_uncertainty(lambda p: 0.0, {}, rng)
        with pytest.raises(ValidationError):
            propagate_uncertainty(
                lambda p: 0.0, {"x": lambda g: 0.0}, rng, draws=0
            )

    def test_user_availability_with_measured_suppliers(self, rng):
        """End to end: measured reservation-system availability with
        uncertainty propagated to the user-perceived availability."""
        from repro.ta import CLASS_A, TAParameters, TravelAgencyModel

        def model(params):
            ta = TravelAgencyModel(TAParameters(
                reservation_availability=params["reservation"],
                payment_availability=params["payment"],
            ))
            return ta.user_availability(CLASS_A).availability

        result = propagate_uncertainty(
            model,
            {
                # Posterior-style samplers around the paper's 0.9 values.
                "reservation": lambda g: g.beta(900, 100),
                "payment": lambda g: g.beta(900, 100),
            },
            rng,
            draws=200,
        )
        nominal = model({"reservation": 0.9, "payment": 0.9})
        low, high = result.interval
        assert low < nominal < high
        assert result.half_width < 0.01  # tight posteriors, tight answer
