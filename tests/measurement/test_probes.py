"""Tests for probe logs."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.measurement import ProbeLog


class TestConstruction:
    def test_rejects_misaligned_inputs(self):
        with pytest.raises(ValidationError):
            ProbeLog([0, 1, 2], [True, False])

    def test_rejects_non_increasing_times(self):
        with pytest.raises(ValidationError):
            ProbeLog([0, 2, 1], [True, True, True])

    def test_rejects_single_probe(self):
        with pytest.raises(ValidationError):
            ProbeLog([0], [True])

    def test_non_monotonic_error_names_offending_index(self):
        # Regression: the error must point at the first out-of-order
        # probe, not just say "not increasing".
        with pytest.raises(ValidationError, match=r"timestamps\[2\]"):
            ProbeLog([0, 2, 1, 3], [True, True, True, True])

    def test_duplicate_timestamp_reports_both_values(self):
        with pytest.raises(ValidationError) as excinfo:
            ProbeLog([0, 1, 1, 2], [True, False, True, False])
        message = str(excinfo.value)
        assert "timestamps[2]" in message and "timestamps[1]" in message

    def test_non_finite_error_names_offending_index(self):
        with pytest.raises(ValidationError, match=r"timestamps\[1\]"):
            ProbeLog([0, float("nan"), 2], [True, True, True])

    def test_validation_error_is_a_value_error(self):
        # Callers written against stdlib conventions must keep working.
        with pytest.raises(ValueError):
            ProbeLog([0, 2, 1], [True, True, True])


class TestSummaries:
    def test_observed_availability(self):
        log = ProbeLog([0, 1, 2, 3], [True, True, False, True])
        assert log.observed_availability() == 0.75

    def test_span(self):
        log = ProbeLog([10.0, 12.0, 20.0], [True, True, True])
        assert log.span == 10.0

    def test_availability_interval_brackets_estimate(self):
        states = [True] * 95 + [False] * 5
        log = ProbeLog(list(range(100)), states)
        low, high = log.availability_interval()
        assert low < 0.95 < high


class TestEpisodes:
    def test_episode_extraction(self):
        log = ProbeLog(
            [0, 1, 2, 3, 4, 5],
            [True, True, False, False, True, True],
        )
        assert log.episodes() == [(True, 2.0), (False, 2.0), (True, 1.0)]

    def test_constant_log_single_episode(self):
        log = ProbeLog([0, 5, 10], [True, True, True])
        assert log.episodes() == [(True, 10.0)]

    def test_fit_requires_complete_episodes(self):
        log = ProbeLog([0, 5, 10], [True, True, True])
        with pytest.raises(ValidationError, match="complete"):
            log.fit()

    def test_fit_from_synthetic_process(self, rng):
        """Generate a long alternating-renewal path, probe it densely,
        and recover the generating rates."""
        # Probe interval (0.5) well below the mean down time (5.0), so
        # probe-resolution aliasing (missed short episodes) is mild.
        true_lam, true_mu = 0.05, 0.2
        clock, state = 0.0, True
        change_points = []
        while clock < 40_000.0:
            rate = true_lam if state else true_mu
            clock += rng.exponential(1.0 / rate)
            change_points.append((clock, state))
            state = not state
        probe_times = np.arange(0.0, 40_000.0, 0.5)
        states = []
        idx = 0
        current = True
        for t in probe_times:
            while idx < len(change_points) and change_points[idx][0] <= t:
                current = not change_points[idx][1]
                idx += 1
            states.append(current)
        log = ProbeLog(probe_times, states)
        fit = log.fit()
        assert fit.model.failure_rate == pytest.approx(true_lam, rel=0.2)
        assert fit.model.repair_rate == pytest.approx(true_mu, rel=0.3)
        assert log.observed_availability() == pytest.approx(
            true_mu / (true_lam + true_mu), abs=0.02
        )

    def test_fitted_model_plugs_into_hierarchy(self):
        """The measurement-to-model pipeline of the paper's Section 1."""
        from repro.core import HierarchicalModel

        log = ProbeLog(
            list(range(12)),
            [True, True, True, False, True, True, True, True, False, True,
             True, True],
        )
        fit = log.fit()
        model = HierarchicalModel()
        model.add_resource("supplier", fit.model)
        model.add_service("external", "supplier")
        model.add_function("lookup", services=["external"])
        value = model.function_availability("lookup")
        assert value == pytest.approx(fit.model.availability)
