"""Tests for dependability-parameter estimators."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.measurement import availability_confidence_interval, fit_two_state


class TestFitTwoState:
    def test_point_estimates_are_mle(self):
        fit = fit_two_state([10.0, 20.0, 30.0], [1.0, 3.0])
        assert fit.model.failure_rate == pytest.approx(3.0 / 60.0)
        assert fit.model.repair_rate == pytest.approx(2.0 / 4.0)

    def test_recovers_true_rates(self, rng):
        true_lam, true_mu = 0.01, 0.5
        ups = rng.exponential(1.0 / true_lam, size=2000)
        downs = rng.exponential(1.0 / true_mu, size=2000)
        fit = fit_two_state(ups, downs)
        assert fit.model.failure_rate == pytest.approx(true_lam, rel=0.1)
        assert fit.model.repair_rate == pytest.approx(true_mu, rel=0.1)
        low, high = fit.availability_interval
        assert low <= true_mu / (true_lam + true_mu) <= high

    def test_interval_coverage(self, rng):
        """~95% of fits should cover the true failure rate."""
        true_lam = 0.1
        covered = 0
        runs = 300
        for _ in range(runs):
            ups = rng.exponential(1.0 / true_lam, size=40)
            downs = rng.exponential(1.0, size=40)
            fit = fit_two_state(ups, downs)
            low, high = fit.failure_rate_interval
            covered += low <= true_lam <= high
        assert covered / runs == pytest.approx(0.95, abs=0.04)

    def test_more_data_tightens_interval(self, rng):
        small = fit_two_state(
            rng.exponential(10.0, 20), rng.exponential(1.0, 20)
        )
        large = fit_two_state(
            rng.exponential(10.0, 2000), rng.exponential(1.0, 2000)
        )
        small_width = small.failure_rate_interval[1] - small.failure_rate_interval[0]
        large_width = large.failure_rate_interval[1] - large.failure_rate_interval[0]
        assert large_width < small_width / 5

    def test_validation(self):
        with pytest.raises(ValidationError):
            fit_two_state([], [1.0])
        with pytest.raises(ValidationError):
            fit_two_state([1.0, -1.0], [1.0])
        with pytest.raises(ValidationError):
            fit_two_state([1.0], [1.0], confidence=0.3)


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        low, high = availability_confidence_interval(9920, 10000)
        assert low < 0.992 < high

    def test_bounded_by_unit_interval(self):
        low, high = availability_confidence_interval(10000, 10000)
        assert low > 0.999
        assert high == 1.0
        low, high = availability_confidence_interval(0, 100)
        assert low == pytest.approx(0.0, abs=1e-12)
        assert high < 0.05

    def test_width_shrinks_with_trials(self):
        narrow = availability_confidence_interval(990, 1000)
        wide = availability_confidence_interval(99, 100)
        assert narrow[1] - narrow[0] < wide[1] - wide[0]

    def test_higher_confidence_wider(self):
        ci95 = availability_confidence_interval(90, 100, confidence=0.95)
        ci99 = availability_confidence_interval(90, 100, confidence=0.99)
        assert ci99[1] - ci99[0] > ci95[1] - ci95[0]

    def test_validation(self):
        with pytest.raises(ValidationError):
            availability_confidence_interval(5, 0)
        with pytest.raises(ValidationError):
            availability_confidence_interval(11, 10)

    def test_empirical_coverage(self, rng):
        """~95% of Wilson intervals should cover the true probability."""
        true_p = 0.9
        covered = 0
        runs = 400
        for _ in range(runs):
            successes = int(rng.binomial(200, true_p))
            low, high = availability_confidence_interval(successes, 200)
            covered += low <= true_p <= high
        assert covered / runs == pytest.approx(0.95, abs=0.04)
