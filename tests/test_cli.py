"""Tests for the command-line interface."""

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main


class TestTaCommand:
    def test_default_run(self, capsys):
        assert main(["ta"]) == 0
        out = capsys.readouterr().out
        assert "0.999995587" in out
        assert "class A" in out and "class B" in out

    def test_single_class(self, capsys):
        assert main(["ta", "--user-class", "A"]) == 0
        out = capsys.readouterr().out
        assert "class A" in out
        assert "class B" not in out

    def test_sweep(self, capsys):
        assert main(["ta", "--sweep", "--user-class", "A"]) == 0
        out = capsys.readouterr().out
        assert "Table 8 sweep" in out
        assert "0.84227" in out  # N = 1 value

    def test_categories(self, capsys):
        assert main(["ta", "--categories", "--user-class", "B"]) == 0
        out = capsys.readouterr().out
        assert "SC4" in out

    def test_reservations_override(self, capsys):
        assert main(["ta", "--reservations", "1", "--user-class", "A"]) == 0
        out = capsys.readouterr().out
        assert "N_F = N_H = N_C = 1" in out
        assert "0.84227" in out

    def test_basic_architecture(self, capsys):
        assert main(["ta", "--architecture", "basic"]) == 0
        out = capsys.readouterr().out
        assert "basic architecture" in out


class TestWebCommand:
    def test_paper_configuration(self, capsys):
        assert main([
            "web", "--servers", "4", "--coverage", "0.98",
        ]) == 0
        out = capsys.readouterr().out
        assert "0.999995587" in out
        assert "manual reconfiguration" in out

    def test_perfect_coverage_default(self, capsys):
        assert main(["web", "--servers", "2"]) == 0
        out = capsys.readouterr().out
        assert "A(Web service)" in out

    def test_deadline_report(self, capsys):
        assert main([
            "web", "--servers", "4", "--coverage", "0.98",
            "--deadline", "0.05",
        ]) == 0
        out = capsys.readouterr().out
        assert "within 0.05s" in out

    def test_invalid_parameters_exit_code(self, capsys):
        # capacity below servers is a model validation error -> exit 2.
        assert main(["web", "--servers", "12", "--buffer", "10"]) == 2
        assert "error:" in capsys.readouterr().err


class TestEvaluateCommand:
    @pytest.fixture
    def spec_file(self, tmp_path):
        spec = {
            "resources": {"host": 0.999, "link": 0.99},
            "services": {"web": "host", "net": "link"},
            "functions": {"home": {"services": ["web"]}},
            "require_everywhere": ["net"],
            "user_classes": {"all": {"home": 1.0}},
        }
        path = tmp_path / "model.json"
        path.write_text(json.dumps(spec))
        return str(path)

    def test_evaluates_spec(self, spec_file, capsys):
        assert main(["evaluate", spec_file]) == 0
        out = capsys.readouterr().out
        assert "home" in out
        assert "all" in out

    def test_selects_user_class(self, spec_file, capsys):
        assert main(["evaluate", spec_file, "--user-class", "all"]) == 0
        assert "all" in capsys.readouterr().out

    def test_unknown_user_class(self, spec_file, capsys):
        assert main(["evaluate", spec_file, "--user-class", "ghost"]) == 2
        assert "ghost" in capsys.readouterr().err

    def test_broken_spec_exit_code(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{")
        assert main(["evaluate", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_spec_file_is_a_one_line_error(self, tmp_path, capsys):
        assert main(["evaluate", str(tmp_path / "nope.json")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "cannot read spec file" in err
        assert "Traceback" not in err

    def test_structurally_malformed_spec(self, tmp_path, capsys):
        path = tmp_path / "malformed.json"
        path.write_text(json.dumps({
            "resources": {"host": 0.999},
            "services": {"web": "ghost-resource"},
            "functions": {"home": {"services": ["web"]}},
        }))
        assert main(["evaluate", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_debug_flag_reraises(self, tmp_path):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            main(["--debug", "evaluate", str(tmp_path / "nope.json")])


class TestInjectCommand:
    def test_null_campaign_calibrates(self, capsys):
        assert main([
            "inject", "--scenario", "null", "--user-class", "A",
            "--horizon", "1500", "--replications", "3", "--seed", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "Fault-injection campaign" in out
        assert "agrees with the analytic" in out

    def test_lan_host_campaign_reports_drop(self, capsys):
        assert main([
            "inject", "--scenario", "lan-host", "--user-class", "A",
            "--horizon", "1000", "--replications", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "recurrent-outage" in out
        assert "drop" in out

    def test_web_degradation_scenario(self, capsys):
        assert main([
            "inject", "--scenario", "web-degraded", "--user-class", "B",
            "--horizon", "500", "--replications", "2",
        ]) == 0
        assert "recurrent-degradation" in capsys.readouterr().out

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["inject", "--scenario", "asteroid"])

    def test_invalid_horizon_is_a_one_line_error(self, capsys):
        assert main(["inject", "--horizon", "-5"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_workers_do_not_change_the_report(self, capsys):
        args = [
            "inject", "--scenario", "null", "--user-class", "A",
            "--horizon", "800", "--replications", "3", "--seed", "4",
        ]
        assert main(args) == 0
        serial = capsys.readouterr().out
        assert main(args + ["--workers", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_invalid_workers_is_a_one_line_error(self, capsys):
        assert main(["inject", "--workers", "0"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "--workers" in err
        assert "Traceback" not in err


class TestJournaledInject:
    ARGS = [
        "inject", "--scenario", "null", "--user-class", "A",
        "--horizon", "800", "--replications", "3", "--seed", "4",
    ]

    def test_journaled_run_records_campaign(self, tmp_path, capsys):
        from repro.runtime import read_journal

        path = tmp_path / "campaign.jsonl"
        assert main(self.ARGS + ["--journal", str(path)]) == 0
        records = read_journal(path)
        kinds = [r["kind"] for r in records]
        assert kinds[0] == "campaign_start"
        assert kinds.count("replication") == 3
        assert kinds[-1] == "campaign_end"
        assert records[0]["meta"]["cli"] == "inject"

    def test_journal_requires_single_user_class(self, tmp_path, capsys):
        path = tmp_path / "campaign.jsonl"
        assert main([
            "inject", "--scenario", "null", "--user-class", "both",
            "--journal", str(path),
        ]) == 2
        err = capsys.readouterr().err
        assert "single campaign" in err
        assert "Traceback" not in err

    def test_deadline_exceeded_exits_2_with_resumable_journal(
        self, tmp_path, capsys
    ):
        from repro.runtime import read_journal

        path = tmp_path / "campaign.jsonl"
        code = main([
            "inject", "--scenario", "null", "--user-class", "A",
            "--horizon", "200000", "--replications", "50", "--seed", "4",
            "--journal", str(path), "--deadline", "0.3",
        ])
        assert code == 2
        assert "deadline" in capsys.readouterr().err.lower()
        records = read_journal(path)  # intact despite the interruption
        assert records[0]["kind"] == "campaign_start"
        completed = [r for r in records if r["kind"] == "replication"]
        assert len(completed) < 50
        assert not any(r["kind"] == "campaign_end" for r in records)

    def test_resume_completes_and_matches_uninterrupted_output(
        self, tmp_path, capsys
    ):
        # The uninterrupted journaled run is the reference...
        full = tmp_path / "full.jsonl"
        assert main(self.ARGS + ["--journal", str(full)]) == 0
        reference = capsys.readouterr().out

        # ...an interrupted run leaves a partial journal...
        partial = tmp_path / "partial.jsonl"
        code = main([
            "inject", "--scenario", "null", "--user-class", "A",
            "--horizon", "800", "--replications", "3", "--seed", "4",
            "--journal", str(partial), "--deadline", "1e-9",
        ])
        assert code == 2
        capsys.readouterr()

        # ...and resume reproduces the reference numbers exactly.
        assert main(["resume", str(partial)]) == 0
        resumed = capsys.readouterr().out
        assert "Resumed fault-injection campaign" in resumed
        body = reference.split("\n", 1)[1]  # drop the differing title
        assert body == resumed.split("\n", 1)[1]

    def test_resume_of_completed_journal_reprints_result(
        self, tmp_path, capsys
    ):
        path = tmp_path / "campaign.jsonl"
        assert main(self.ARGS + ["--journal", str(path)]) == 0
        capsys.readouterr()
        assert main(["resume", str(path)]) == 0
        out = capsys.readouterr().out
        assert "3 x 800 h" in out
        assert "agrees with the analytic" in out

    def test_resume_missing_journal_is_a_one_line_error(
        self, tmp_path, capsys
    ):
        assert main(["resume", str(tmp_path / "ghost.jsonl")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_resume_rejects_foreign_journal(self, tmp_path, capsys):
        from repro.runtime import Journal

        path = tmp_path / "foreign.jsonl"
        with Journal(path) as journal:
            journal.append("campaign_start", user_class="A", meta={})
        assert main(["resume", str(path)]) == 2
        assert "repro inject" in capsys.readouterr().err

    def test_rerunning_over_existing_journal_refused(self, tmp_path, capsys):
        path = tmp_path / "campaign.jsonl"
        assert main(self.ARGS + ["--journal", str(path)]) == 0
        capsys.readouterr()
        assert main(self.ARGS + ["--journal", str(path)]) == 2
        assert "resume" in capsys.readouterr().err


class TestRetriesCommand:
    def test_default_run(self, capsys):
        assert main(["retries", "--user-class", "A"]) == 0
        out = capsys.readouterr().out
        assert "Retry-adjusted" in out
        assert "class A" in out

    def test_zero_retries_reproduce_eq_10(self, capsys):
        assert main([
            "retries", "--user-class", "A", "--max-retries", "0",
        ]) == 0
        out = capsys.readouterr().out
        # Both columns show the paper's single-submission value.
        assert out.count("0.978817412") >= 2

    def test_sweep_prints_retry_column(self, capsys):
        assert main([
            "retries", "--user-class", "A", "--sweep", "--max-retries", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "Table 8 with retries" in out
        assert "0.84227" in out  # N = 1 single-submission value survives

    def test_simulate_cross_validates(self, capsys):
        assert main([
            "retries", "--user-class", "A", "--max-retries", "1",
            "--simulate", "2000", "--seed", "7",
        ]) == 0
        out = capsys.readouterr().out
        assert "DES cross-validation" in out
        assert "closed form" in out

    def test_journal_records_results(self, tmp_path, capsys):
        from repro.runtime import read_journal

        path = tmp_path / "retries.jsonl"
        assert main([
            "retries", "--user-class", "A", "--max-retries", "1",
            "--journal", str(path),
        ]) == 0
        records = read_journal(path)
        assert [r["kind"] for r in records] == ["retry_result"]
        assert records[0]["user_class"] == "class A"

    def test_invalid_persistence_is_a_one_line_error(self, capsys):
        assert main(["retries", "--persistence", "1.5"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_workers_do_not_change_the_simulation(self, capsys):
        args = ["retries", "--simulate", "300", "--seed", "5"]
        assert main(args) == 0
        serial = capsys.readouterr().out
        assert main(args + ["--workers", "2"]) == 0
        assert capsys.readouterr().out == serial  # byte-identical stdout

    def test_invalid_workers_is_a_one_line_error(self, capsys):
        assert main(["retries", "--workers", "-2"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "--workers" in err


class TestSweepCommand:
    def test_default_run_prints_fig11_table(self, capsys):
        assert main(["sweep"]) == 0
        captured = capsys.readouterr()
        assert "Figure 11" in captured.out
        assert "lambda=0.01/h" in captured.out
        assert "engine: workers=1" in captured.err

    def test_figure_12_uses_imperfect_coverage(self, capsys):
        assert main(["sweep", "--figure", "12", "--servers-max", "4"]) == 0
        out = capsys.readouterr().out
        assert "coverage = 0.98" in out

    def test_workers_do_not_change_the_table(self, capsys):
        assert main(["sweep", "--servers-max", "6"]) == 0
        serial = capsys.readouterr().out
        assert main(["sweep", "--servers-max", "6", "--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial  # byte-identical stdout

    def test_warm_cache_rerun_recomputes_nothing(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        args = ["sweep", "--servers-max", "5", "--cache-dir", cache]
        assert main(args) == 0
        cold = capsys.readouterr()
        assert "misses=15" in cold.err

        assert main(args) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out
        assert "hits=15" in warm.err
        assert "misses=0" in warm.err
        assert "hit-rate=100.0%" in warm.err

    def test_journaled_sweep_resumes(self, tmp_path, capsys):
        from repro.runtime import read_journal

        path = tmp_path / "sweep.jsonl"
        args = ["sweep", "--servers-max", "4", "--journal", str(path)]
        assert main(args) == 0
        first = capsys.readouterr().out
        records = read_journal(path)
        assert records[0]["kind"] == "batch_start"
        assert [r["kind"] for r in records].count("task_result") == 12

        # Re-running over the same journal restores every cell.
        assert main(args) == 0
        captured = capsys.readouterr()
        assert captured.out == first
        assert "misses=0" in captured.err

    def test_changed_spec_against_old_journal_is_a_one_line_error(
        self, tmp_path, capsys
    ):
        path = tmp_path / "sweep.jsonl"
        assert main(["sweep", "--servers-max", "4",
                     "--journal", str(path)]) == 0
        capsys.readouterr()
        assert main(["sweep", "--servers-max", "4", "--figure", "12",
                     "--journal", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_invalid_workers_is_a_one_line_error(self, capsys):
        assert main(["sweep", "--workers", "0"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_invalid_servers_max_is_a_one_line_error(self, capsys):
        assert main(["sweep", "--servers-max", "-1"]) == 2
        assert capsys.readouterr().err.startswith("error:")


class TestPoliciesCommand:
    def test_default_run_prints_ranking_and_cells(self, capsys):
        assert main(["policies"]) == 0
        captured = capsys.readouterr()
        assert "Client-policy ranking" in captured.out
        assert "Policy x scenario cells" in captured.out
        assert "best policy:" in captured.out
        for label in ("retry(", "breaker(", "timeout(", "hedge("):
            assert label in captured.out
        for scenario in ("nominal", "surge", "degraded", "critical"):
            assert scenario in captured.out
        assert "engine: workers=1" in captured.err

    def test_workers_do_not_change_the_output(self, capsys):
        assert main(["policies"]) == 0
        serial = capsys.readouterr().out
        assert main(["policies", "--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial  # byte-identical stdout

    def test_warm_cache_rerun_recomputes_nothing(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        args = ["policies", "--cache-dir", cache]
        assert main(args) == 0
        cold = capsys.readouterr()
        assert "misses=16" in cold.err
        assert main(args) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out
        assert "hits=16" in warm.err
        assert "misses=0" in warm.err

    def test_policy_flags_reach_the_labels(self, capsys):
        assert main([
            "policies", "--max-retries", "5", "--persistence", "0.8",
            "--timeout", "0.1", "--hedge-delay", "0.03",
            "--breaker-threshold", "2", "--breaker-reset", "10",
        ]) == 0
        out = capsys.readouterr().out
        assert "retry(k=5, p=0.8)" in out
        assert "breaker(f=2, reset=10)" in out
        assert "timeout(t=0.1)" in out
        assert "hedge(t=0.1, d=0.03)" in out

    def test_invalid_hedge_delay_is_a_one_line_error(self, capsys):
        assert main(["policies", "--hedge-delay", "0.2"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "hedge_delay" in err

    def test_invalid_farm_is_a_one_line_error(self, capsys):
        assert main(["policies", "--servers", "0"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_invalid_workers_is_a_one_line_error(self, capsys):
        assert main(["policies", "--workers", "0"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "--workers" in err

    def test_metrics_and_trace_artifacts(self, tmp_path, capsys):
        metrics = tmp_path / "policies-metrics.json"
        trace = tmp_path / "policies-trace.jsonl"
        assert main([
            "policies", "--metrics", str(metrics), "--trace", str(trace),
        ]) == 0
        instrumented = capsys.readouterr().out
        assert metrics.exists()
        assert trace.exists()
        assert trace.read_text().strip()
        # Instrumentation never changes stdout.
        assert main(["policies"]) == 0
        assert capsys.readouterr().out == instrumented


class TestCloudCommand:
    def test_default_run_prints_ranked_grid(self, capsys):
        assert main(["cloud"]) == 0
        captured = capsys.readouterr()
        assert "Cloud Travel Agency" in captured.out
        assert "best deployment:" in captured.out
        for scenario in (
            "single-zone", "two-zone", "two-zone-overprovisioned",
            "three-zone", "three-zone-strict-quorum",
        ):
            assert scenario in captured.out
        assert "downtime" in captured.out
        assert "engine: workers=1, 5 cells" in captured.err

    def test_workers_do_not_change_the_output(self, capsys):
        assert main(["cloud"]) == 0
        serial = capsys.readouterr().out
        assert main(["cloud", "--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial  # byte-identical stdout

    def test_warm_cache_rerun_recomputes_nothing(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        args = ["cloud", "--cache-dir", cache]
        assert main(args) == 0
        cold = capsys.readouterr()
        assert "misses=5" in cold.err
        assert main(args) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out
        assert "hits=5" in warm.err
        assert "misses=0" in warm.err

    def test_zone_availability_moves_the_ranking_inputs(self, capsys):
        assert main(["cloud"]) == 0
        nominal = capsys.readouterr().out
        assert main(["cloud", "--zone-availability", "0.99"]) == 0
        degraded = capsys.readouterr().out
        assert degraded != nominal
        assert "zone availability 0.99" in degraded

    def test_invalid_flags_are_one_line_errors(self, capsys):
        for argv, flag in (
            (["cloud", "--arrival-rate", "0"], "--arrival-rate"),
            (["cloud", "--service-rate", "-1"], "--service-rate"),
            (["cloud", "--zone-availability", "1.5"], "--zone-availability"),
            (["cloud", "--zone-availability", "nan"], "--zone-availability"),
            (["cloud", "--workers", "0"], "--workers"),
        ):
            assert main(argv) == 2
            err = capsys.readouterr().err
            assert err.startswith("error:")
            assert err.count("\n") == 1
            assert flag in err

    def test_metrics_artifact_counts_inference_queries(self, tmp_path, capsys):
        metrics = tmp_path / "cloud-metrics.json"
        assert main(["cloud", "--metrics", str(metrics)]) == 0
        instrumented = capsys.readouterr().out
        payload = json.loads(metrics.read_text())
        names = {metric["name"] for metric in payload["metrics"]}
        assert "bayes_inference_queries" in names
        # Instrumentation never changes stdout.
        assert main(["cloud"]) == 0
        assert capsys.readouterr().out == instrumented


class TestChaosCommand:
    INJECTORS = (
        "kill-worker", "transient", "corrupt-cache", "truncate-journal",
    )

    def test_every_injector_recovers_bit_identically(self, capsys):
        assert main(["sweep", "--servers-max", "3"]) == 0
        clean = capsys.readouterr().out
        for injector in self.INJECTORS:
            assert main([
                "chaos", "--injector", injector, "--servers-max", "3",
            ]) == 0, injector
            captured = capsys.readouterr()
            assert captured.out == clean, injector
            assert "IDENTICAL" in captured.err

    def test_metrics_artifact_counts_the_recovery(self, tmp_path, capsys):
        path = tmp_path / "chaos-metrics.json"
        assert main([
            "chaos", "--injector", "transient", "--servers-max", "3",
            "--metrics", str(path),
        ]) == 0
        capsys.readouterr()
        payload = json.loads(path.read_text())
        series = {
            m["name"]: m["value"] for m in payload["metrics"]
            if not m.get("labels")
        }
        assert series["engine_task_retries"] >= 1

    def test_kill_worker_needs_a_pool(self, capsys):
        assert main([
            "chaos", "--injector", "kill-worker", "--workers", "1",
        ]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "workers" in err

    def test_invalid_workers_is_a_one_line_error(self, capsys):
        assert main([
            "chaos", "--injector", "transient", "--workers", "0",
        ]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "--workers" in err


class TestStatsCommand:
    @pytest.fixture()
    def metrics_files(self, tmp_path):
        from repro.obs import MetricsRegistry

        paths = []
        for index, amount in enumerate((2, 3)):
            registry = MetricsRegistry()
            registry.counter("engine_tasks", phase="sweep").inc(amount)
            registry.histogram("t", bounds=(1.0,)).observe(0.5)
            path = tmp_path / f"worker{index}.json"
            registry.save(path)
            paths.append(str(path))
        return paths

    def test_merges_files_into_table(self, metrics_files, capsys):
        assert main(["stats", *metrics_files]) == 0
        out = capsys.readouterr().out
        assert "2 metrics file(s)" in out
        assert "engine_tasks" in out
        assert "phase=sweep" in out
        assert " 5" in out  # counters summed across files
        assert "count=2" in out  # histogram observations added

    def test_openmetrics_format(self, metrics_files, capsys):
        assert main(["stats", *metrics_files, "--format",
                     "openmetrics"]) == 0
        out = capsys.readouterr().out
        assert 'engine_tasks_total{phase="sweep"} 5' in out
        assert "# EOF" in out

    def test_json_format_round_trips(self, metrics_files, capsys):
        assert main(["stats", metrics_files[0], "--format", "json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["schema"] == "repro.obs.metrics/1"

    def test_corrupt_file_is_a_one_line_error(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("not json")
        assert main(["stats", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_missing_file_is_a_one_line_error(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "ghost.json")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "cannot read" in err

    def test_debug_flag_reraises(self, tmp_path):
        from repro.errors import ObservabilityError

        path = tmp_path / "bad.json"
        path.write_text("not json")
        with pytest.raises(ObservabilityError):
            main(["--debug", "stats", str(path)])

    def test_sweep_metrics_flag_writes_loadable_snapshot(
        self, tmp_path, capsys
    ):
        from repro.obs import MetricsRegistry

        metrics_path = tmp_path / "m.json"
        assert main(["sweep", "--servers-max", "2", "--metrics",
                     str(metrics_path)]) == 0
        capsys.readouterr()
        registry = MetricsRegistry.load(metrics_path)
        assert registry.value(
            "engine_tasks", phase="grid failure rate x NW"
        ) == 6  # three failure-rate curves x two server counts


class TestSloCommand:
    def test_null_scenario_reports_monitor_summary(self, capsys):
        assert main([
            "slo", "--scenario", "null", "--user-class", "A",
            "--horizon", "600", "--replications", "1", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "SLO report" in out
        assert "class A" in out
        assert "objective" in out and "burn" in out

    def test_outage_scenario_logs_fire_and_clear(self, capsys):
        assert main([
            "slo", "--scenario", "net-outage", "--user-class", "A",
            "--horizon", "2500", "--replications", "1", "--seed", "3",
            "--session-rate", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "alert log:" in out
        assert "FIRE" in out and "CLEAR" in out

    def test_invalid_session_rate_is_a_one_line_error(self, capsys):
        assert main([
            "slo", "--scenario", "null", "--session-rate", "0",
        ]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err


class TestDiffCommand:
    def snapshot(self, tmp_path, name, amount):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("engine_tasks").inc(amount)
        path = tmp_path / name
        registry.save(path)
        return str(path)

    def bench(self, tmp_path, name, overhead):
        record = {
            "benchmark": "bench-x",
            "disabled_overhead": overhead,
            "guard_threshold": 0.03,
            "guarded": ["disabled_overhead"],
        }
        path = tmp_path / name
        path.write_text(json.dumps(record))
        return str(path)

    def test_metrics_diff_prints_changed_series(self, tmp_path, capsys):
        old = self.snapshot(tmp_path, "old.json", 2)
        new = self.snapshot(tmp_path, "new.json", 5)
        assert main(["diff", old, new]) == 0
        out = capsys.readouterr().out
        assert "engine_tasks" in out
        assert "changed" in out

    def test_bench_regression_exits_1(self, tmp_path, capsys):
        old = self.bench(tmp_path, "old.json", 0.01)
        new = self.bench(tmp_path, "new.json", 0.20)
        assert main(["diff", old, new]) == 1
        out = capsys.readouterr().out
        assert "regression" in out
        assert "disabled_overhead" in out

    def test_bench_within_guard_exits_0(self, tmp_path, capsys):
        old = self.bench(tmp_path, "old.json", 0.01)
        new = self.bench(tmp_path, "new.json", 0.02)
        assert main(["diff", old, new]) == 0
        assert "ok" in capsys.readouterr().out

    def test_mixed_artifact_kinds_rejected(self, tmp_path, capsys):
        snap = self.snapshot(tmp_path, "snap.json", 1)
        bench = self.bench(tmp_path, "bench.json", 0.01)
        assert main(["diff", snap, bench]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "different kinds" in err

    def test_missing_file_is_a_one_line_error(self, tmp_path, capsys):
        snap = self.snapshot(tmp_path, "snap.json", 1)
        assert main(["diff", snap, str(tmp_path / "ghost.json")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "cannot read" in err


class TestTraceReportCommand:
    @pytest.fixture()
    def trace_file(self, tmp_path):
        from repro.obs import Tracer

        tracer = Tracer()
        with tracer.span("outer", category="engine"):
            with tracer.span("inner", category="solver"):
                pass
        path = tmp_path / "trace.jsonl"
        tracer.export(path)
        return str(path)

    def test_renders_report_sections(self, trace_file, capsys):
        assert main(["trace-report", trace_file]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "outer" in out and "inner" in out

    def test_input_trace_survives_the_report(self, trace_file, capsys):
        # The positional must not collide with the ambient --trace
        # output path, which main's finalizer would write (and truncate
        # the input) on exit.
        before = Path(trace_file).read_text()
        assert main(["trace-report", trace_file]) == 0
        capsys.readouterr()
        assert Path(trace_file).read_text() == before

    def test_top_flag_validated(self, trace_file, capsys):
        assert main(["trace-report", trace_file, "--top", "0"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_missing_trace_is_a_one_line_error(self, tmp_path, capsys):
        assert main(["trace-report", str(tmp_path / "ghost.jsonl")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err


class TestProfileCommand:
    ARTIFACTS = [
        "attribution.json", "attribution.txt",
        "profile.collapsed", "profile.speedscope.json",
    ]

    def test_wraps_sweep_with_identical_stdout(self, tmp_path, capsys):
        assert main(["sweep", "--servers-max", "4"]) == 0
        plain = capsys.readouterr().out
        out = tmp_path / "perf"
        assert main([
            "profile", "--out", str(out), "sweep", "--servers-max", "4",
        ]) == 0
        assert capsys.readouterr().out == plain  # byte-identical
        for name in self.ARTIFACTS:
            assert (out / name).stat().st_size > 0

    def test_profile_flag_writes_artifacts_directly(
        self, tmp_path, capsys
    ):
        out = tmp_path / "direct"
        assert main([
            "sweep", "--servers-max", "4", "--profile", str(out),
        ]) == 0
        capsys.readouterr()
        document = json.loads((out / "attribution.json").read_text())
        (batch,) = document["batches"]
        assert batch["phase"] == "grid failure rate x NW"
        assert batch["coverage"] >= 0.95

    def test_double_dash_separator_is_stripped(self, tmp_path, capsys):
        out = tmp_path / "sep"
        assert main([
            "profile", "--out", str(out), "--",
            "sweep", "--servers-max", "4",
        ]) == 0
        capsys.readouterr()
        assert (out / "attribution.json").exists()

    def test_unprofileable_command_is_a_one_line_error(self, capsys):
        assert main(["profile", "stats"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "cannot profile 'stats'" in err
        assert "sweep" in err  # lists the profileable commands
        assert "Traceback" not in err

    def test_empty_wrapped_command_is_a_one_line_error(self, capsys):
        assert main(["profile"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "needs a subcommand" in err
        assert "Traceback" not in err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_module_entry_point(self):
        import subprocess
        import sys

        completed = subprocess.run(
            [sys.executable, "-m", "repro", "ta", "--user-class", "A"],
            capture_output=True, text=True, timeout=120,
        )
        assert completed.returncode == 0
        assert "class A" in completed.stdout
