"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestTaCommand:
    def test_default_run(self, capsys):
        assert main(["ta"]) == 0
        out = capsys.readouterr().out
        assert "0.999995587" in out
        assert "class A" in out and "class B" in out

    def test_single_class(self, capsys):
        assert main(["ta", "--user-class", "A"]) == 0
        out = capsys.readouterr().out
        assert "class A" in out
        assert "class B" not in out

    def test_sweep(self, capsys):
        assert main(["ta", "--sweep", "--user-class", "A"]) == 0
        out = capsys.readouterr().out
        assert "Table 8 sweep" in out
        assert "0.84227" in out  # N = 1 value

    def test_categories(self, capsys):
        assert main(["ta", "--categories", "--user-class", "B"]) == 0
        out = capsys.readouterr().out
        assert "SC4" in out

    def test_reservations_override(self, capsys):
        assert main(["ta", "--reservations", "1", "--user-class", "A"]) == 0
        out = capsys.readouterr().out
        assert "N_F = N_H = N_C = 1" in out
        assert "0.84227" in out

    def test_basic_architecture(self, capsys):
        assert main(["ta", "--architecture", "basic"]) == 0
        out = capsys.readouterr().out
        assert "basic architecture" in out


class TestWebCommand:
    def test_paper_configuration(self, capsys):
        assert main([
            "web", "--servers", "4", "--coverage", "0.98",
        ]) == 0
        out = capsys.readouterr().out
        assert "0.999995587" in out
        assert "manual reconfiguration" in out

    def test_perfect_coverage_default(self, capsys):
        assert main(["web", "--servers", "2"]) == 0
        out = capsys.readouterr().out
        assert "A(Web service)" in out

    def test_deadline_report(self, capsys):
        assert main([
            "web", "--servers", "4", "--coverage", "0.98",
            "--deadline", "0.05",
        ]) == 0
        out = capsys.readouterr().out
        assert "within 0.05s" in out

    def test_invalid_parameters_exit_code(self, capsys):
        # capacity below servers is a model validation error -> exit 2.
        assert main(["web", "--servers", "12", "--buffer", "10"]) == 2
        assert "error:" in capsys.readouterr().err


class TestEvaluateCommand:
    @pytest.fixture
    def spec_file(self, tmp_path):
        spec = {
            "resources": {"host": 0.999, "link": 0.99},
            "services": {"web": "host", "net": "link"},
            "functions": {"home": {"services": ["web"]}},
            "require_everywhere": ["net"],
            "user_classes": {"all": {"home": 1.0}},
        }
        path = tmp_path / "model.json"
        path.write_text(json.dumps(spec))
        return str(path)

    def test_evaluates_spec(self, spec_file, capsys):
        assert main(["evaluate", spec_file]) == 0
        out = capsys.readouterr().out
        assert "home" in out
        assert "all" in out

    def test_selects_user_class(self, spec_file, capsys):
        assert main(["evaluate", spec_file, "--user-class", "all"]) == 0
        assert "all" in capsys.readouterr().out

    def test_unknown_user_class(self, spec_file, capsys):
        assert main(["evaluate", spec_file, "--user-class", "ghost"]) == 2
        assert "ghost" in capsys.readouterr().err

    def test_broken_spec_exit_code(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{")
        assert main(["evaluate", str(path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_module_entry_point(self):
        import subprocess
        import sys

        completed = subprocess.run(
            [sys.executable, "-m", "repro", "ta", "--user-class", "A"],
            capture_output=True, text=True, timeout=120,
        )
        assert completed.returncode == 0
        assert "class A" in completed.stdout
