"""Tests for tornado and elasticity analyses."""

import pytest

from repro.errors import ValidationError
from repro.sensitivity import elasticity, tornado


def linear_model(params):
    return 2.0 * params["a"] + 0.5 * params["b"]


class TestTornado:
    def test_entries_sorted_by_swing(self):
        entries = tornado(
            linear_model,
            base={"a": 1.0, "b": 1.0},
            bounds={"a": (0.5, 1.5), "b": (0.0, 2.0)},
        )
        # a swings 2*(1.5-0.5) = 2.0; b swings 0.5*2 = 1.0.
        assert [e.parameter for e in entries] == ["a", "b"]
        assert entries[0].swing == pytest.approx(2.0)
        assert entries[1].swing == pytest.approx(1.0)

    def test_base_output_recorded(self):
        entries = tornado(
            linear_model, {"a": 1.0, "b": 2.0}, {"a": (0.0, 2.0)}
        )
        assert entries[0].base_output == pytest.approx(3.0)

    def test_bounds_for_unknown_parameter(self):
        with pytest.raises(ValidationError, match="not in base"):
            tornado(linear_model, {"a": 1.0}, {"ghost": (0, 1)})

    def test_ta_user_availability_tornado(self):
        """The LAN/net/web dominate the TA tornado, as Section 4.3 says."""
        from repro.ta import CLASS_A, TAParameters, TravelAgencyModel

        def model(params):
            ta = TravelAgencyModel(TAParameters(
                internet_availability=params["net"],
                lan_availability=params["lan"],
                payment_availability=params["payment"],
            ))
            return ta.user_availability(CLASS_A).availability

        base = {"net": 0.9966, "lan": 0.9966, "payment": 0.9}
        bounds = {k: (v - 0.003, min(v + 0.003, 1.0)) for k, v in base.items()}
        entries = tornado(model, base, bounds)
        assert entries[0].parameter in ("net", "lan")
        assert entries[-1].parameter == "payment"


class TestElasticity:
    def test_power_law_elasticities(self):
        # f = a^2 * b^0.5: elasticities are the exponents.
        def model(params):
            return params["a"] ** 2 * params["b"] ** 0.5

        result = elasticity(model, {"a": 3.0, "b": 4.0})
        assert result["a"] == pytest.approx(2.0, rel=1e-5)
        assert result["b"] == pytest.approx(0.5, rel=1e-5)

    def test_zero_valued_parameter_skipped(self):
        result = elasticity(lambda p: 1.0 + p["a"], {"a": 0.0, "b": 1.0})
        assert "a" not in result

    def test_explicit_parameter_subset(self):
        result = elasticity(
            linear_model, {"a": 1.0, "b": 1.0}, parameters=("a",)
        )
        assert set(result) == {"a"}

    def test_unknown_parameter(self):
        with pytest.raises(ValidationError):
            elasticity(linear_model, {"a": 1.0, "b": 1.0}, parameters=("c",))

    def test_zero_output_rejected(self):
        with pytest.raises(ValidationError, match="zero"):
            elasticity(lambda p: 0.0, {"a": 1.0})

    def test_bad_step_rejected(self):
        with pytest.raises(ValidationError):
            elasticity(linear_model, {"a": 1.0, "b": 1.0}, relative_step=0.0)
