"""Tests for parameter sweeps."""

import pytest

from repro.errors import ValidationError
from repro.sensitivity import grid_sweep, sweep


class TestSweep:
    def test_basic_sweep(self):
        result = sweep(lambda x: x * 2.0, "x", [1, 2, 3])
        assert result.values == (1, 2, 3)
        assert result.outputs == (2.0, 4.0, 6.0)
        assert result.as_pairs() == [(1, 2.0), (2, 4.0), (3, 6.0)]

    def test_empty_values_rejected(self):
        with pytest.raises(ValidationError):
            sweep(lambda x: x, "x", [])

    def test_argbest(self):
        result = sweep(lambda x: -((x - 2) ** 2), "x", [0, 1, 2, 3])
        assert result.argbest() == (2, 0.0)
        assert result.argbest(maximize=False)[0] == 0

    def test_first_crossing_above(self):
        result = sweep(lambda n: 1 - 0.1**n, "servers", [1, 2, 3, 4])
        value, output = result.first_crossing(0.99, above=True)
        assert value == 2

    def test_first_crossing_below(self):
        result = sweep(lambda n: 0.1**n, "servers", [1, 2, 3])
        value, _ = result.first_crossing(0.005, above=False)
        assert value == 3

    def test_first_crossing_never(self):
        result = sweep(lambda n: 0.5, "x", [1, 2])
        with pytest.raises(ValidationError, match="no swept value"):
            result.first_crossing(0.9, above=True)

    def test_first_crossing_non_monotone_returns_earliest(self):
        # Output dips back below the threshold after crossing; the scan
        # must still deterministically return the *first* crossing.
        outputs = {1: 0.2, 2: 0.8, 3: 0.4, 4: 0.9}
        result = sweep(lambda x: outputs[x], "x", [1, 2, 3, 4])
        value, output = result.first_crossing(0.7, above=True)
        assert (value, output) == (2, 0.8)

    def test_first_crossing_tolerance_catches_boundary_outputs(self):
        # 0.1 + 0.2 lands an ulp above 0.3; without a tolerance the
        # "below 0.3" crossing would skip to the next swept value.
        result = sweep(lambda x: x, "x", [0.1 + 0.2, 0.25])
        assert result.first_crossing(0.3, above=False)[0] == 0.25
        value, _ = result.first_crossing(0.3, above=False, tol=1e-12)
        assert value == 0.1 + 0.2

    def test_first_crossing_tolerance_applies_above_too(self):
        result = sweep(lambda x: x, "x", [0.95, 1.0])
        assert result.first_crossing(0.96, above=True, tol=0.02)[0] == 0.95

    def test_first_crossing_negative_tolerance_rejected(self):
        result = sweep(lambda x: x, "x", [1.0])
        with pytest.raises(ValidationError):
            result.first_crossing(0.5, tol=-0.1)

    def test_paper_design_question(self):
        """How many web servers for < 5 min/year? (Section 5.1)"""
        from repro.availability import WebServiceModel

        result = sweep(
            lambda nw: WebServiceModel(
                servers=int(nw), arrival_rate=50.0, service_rate=100.0,
                buffer_capacity=10, failure_rate=1e-3, repair_rate=1.0,
                coverage=0.98, reconfiguration_rate=12.0,
            ).unavailability(),
            "web servers",
            range(1, 8),
        )
        value, _ = result.first_crossing(1e-5, above=False)
        assert value == 2


class TestGridSweep:
    def test_grid_shape(self):
        result = grid_sweep(
            lambda r, c: r * 10 + c, "row", [1, 2], "col", [3, 4, 5]
        )
        assert result.outputs == ((13, 14, 15), (23, 24, 25))

    def test_row_extraction(self):
        result = grid_sweep(
            lambda r, c: r + c, "row", [1, 2], "col", [10, 20]
        )
        row = result.row(2)
        assert row.parameter == "col"
        assert row.outputs == (12, 22)

    def test_row_unknown_value(self):
        result = grid_sweep(lambda r, c: 0.0, "row", [1], "col", [2])
        with pytest.raises(ValidationError):
            result.row(99)

    def test_empty_axis_rejected(self):
        with pytest.raises(ValidationError):
            grid_sweep(lambda r, c: 0.0, "row", [], "col", [1])


def _farm_unavailability(nw):
    """Module-level so an engine with workers can pickle it."""
    from repro.availability import WebServiceModel

    return WebServiceModel(
        servers=int(nw), arrival_rate=100.0, service_rate=100.0,
        buffer_capacity=10, failure_rate=1e-3, repair_rate=1.0,
    ).unavailability()


def _product_cell(r, c):
    return r * c


class TestEngineBackedSweeps:
    def test_sweep_through_engine_is_bit_identical(self):
        from repro.engine import EvaluationEngine

        values = range(1, 6)
        reference = sweep(_farm_unavailability, "NW", values)
        serial = sweep(_farm_unavailability, "NW", values,
                       engine=EvaluationEngine())
        parallel = sweep(_farm_unavailability, "NW", values,
                         engine=EvaluationEngine(workers=2))
        assert serial.outputs == reference.outputs
        assert parallel.outputs == reference.outputs

    def test_grid_sweep_through_engine_is_bit_identical(self):
        from repro.engine import EvaluationEngine

        reference = grid_sweep(
            _product_cell, "row", [1.0, 2.0], "col", [3.0, 4.0, 5.0]
        )
        parallel = grid_sweep(
            _product_cell, "row", [1.0, 2.0], "col", [3.0, 4.0, 5.0],
            engine=EvaluationEngine(workers=2),
        )
        assert parallel.outputs == reference.outputs

    def test_cached_sweep_skips_recomputation(self):
        from repro.engine import EvaluationEngine, canonical_key

        engine = EvaluationEngine()
        values = (1, 2, 3)
        keys = [canonical_key("farm", servers=int(v)) for v in values]
        first = sweep(_farm_unavailability, "NW", values,
                      engine=engine, keys=keys)
        assert engine.cache.stats.misses == 3
        second = sweep(_farm_unavailability, "NW", values,
                       engine=engine, keys=keys)
        assert second.outputs == first.outputs
        assert engine.cache.stats.hits == 3

    def test_journal_without_engine_rejected(self, tmp_path):
        with pytest.raises(ValidationError, match="needs an engine"):
            sweep(_farm_unavailability, "NW", [1],
                  journal=tmp_path / "j.jsonl")
        with pytest.raises(ValidationError, match="needs an engine"):
            grid_sweep(_product_cell, "r", [1], "c", [2],
                       journal=tmp_path / "j.jsonl")
