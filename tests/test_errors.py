"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    CalibrationError,
    ModelStructureError,
    NotIrreducibleError,
    ReproError,
    SimulationError,
    SolverError,
    ValidationError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc_type in (
            ValidationError,
            ModelStructureError,
            SolverError,
            NotIrreducibleError,
            CalibrationError,
            SimulationError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_validation_error_is_value_error(self):
        """Standard-library compatibility: callers catching ValueError
        keep working."""
        assert issubclass(ValidationError, ValueError)
        with pytest.raises(ValueError):
            raise ValidationError("bad input")

    def test_not_irreducible_is_solver_error(self):
        assert issubclass(NotIrreducibleError, SolverError)

    def test_not_irreducible_carries_problem_states(self):
        error = NotIrreducibleError("reducible", problem_states=(1, 2))
        assert error.problem_states == (1, 2)
        assert "reducible" in str(error)

    def test_single_except_catches_library_failures(self):
        """The documented embedding pattern: one except clause."""
        from repro.queueing import MM1Queue

        caught = None
        try:
            MM1Queue(arrival_rate=2.0, service_rate=1.0)
        except ReproError as exc:
            caught = exc
        assert isinstance(caught, ValidationError)

    def test_solver_errors_surface_as_repro_errors(self):
        import numpy as np

        from repro.markov.solvers import steady_state_gth

        q = np.array([[-1.0, 1.0], [0.0, 0.0]])
        with pytest.raises(ReproError):
            steady_state_gth(q)
