"""Smoke tests: the example scripts must run and print their headlines.

The slowest examples (full simulation sweeps) are exercised by the
benchmark harness instead; here we guard the fast ones against API
drift.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = {
    "quickstart.py": "A(Web service) = 0.999995587",
    "capacity_planning.py": "Smallest farm meeting 5 min/year",
    "architecture_comparison.py": "Tornado",
    "custom_application.py": "day traders",
    "declarative_model.py": "two routes, same numbers",
    "latency_slo.py": "Percentile latencies",
    "chaos_sweep.py": "every injector recovered to a byte-identical sweep",
    "cloud_availability.py": "placement alone decides the quorum's fate",
    "policy_comparison.py": "Best policy: retry(k=3, p=1)",
    "slo_monitoring.py": "SLO monitoring of a scheduled Internet-link",
    "server_client.py": "The evaluator evaluates itself",
}


@pytest.mark.parametrize("script", sorted(FAST_EXAMPLES))
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert FAST_EXAMPLES[script] in completed.stdout


def test_all_examples_are_listed_somewhere():
    """Every example script is either smoke-tested here or known-slow."""
    known_slow = {
        "simulation_validation.py",  # covered by bench_sim_validation
        "profile_calibration.py",    # covered by bench_table1_scenarios
        "measured_suppliers.py",     # covered by tests/measurement
    }
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == set(FAST_EXAMPLES) | known_slow
