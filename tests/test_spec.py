"""Tests for declarative model specifications."""

import json

import pytest

from repro.errors import ValidationError
from repro.spec import load_model, model_from_dict, user_classes_from_dict


@pytest.fixture
def small_spec():
    return {
        "resources": {
            "link": 0.99,
            "host-1": 0.9,
            "host-2": 0.9,
            "engine": {"type": "two-state", "failure_rate": 1e-3,
                       "repair_rate": 1.0},
            "farm": {"type": "web-service", "servers": 2,
                     "arrival_rate": 50.0, "service_rate": 100.0,
                     "buffer_capacity": 10, "failure_rate": 1e-4,
                     "repair_rate": 1.0, "coverage": 0.98,
                     "reconfiguration_rate": 12.0},
        },
        "services": {
            "net": "link",
            "web": "farm",
            "application": {"parallel": ["host-1", "host-2"]},
            "matching": "engine",
        },
        "functions": {
            "home": {"services": ["web"]},
            "trade": {"services": ["web", "application", "matching"]},
        },
        "require_everywhere": ["net"],
        "user_classes": {
            "mixed": {"home": 70, "home+trade": 30},
        },
    }


class TestModelFromDict:
    def test_builds_all_levels(self, small_spec):
        model = model_from_dict(small_spec)
        assert set(model.functions) == {"home", "trade"}
        assert set(model.services) == {"net", "web", "application", "matching"}
        assert model.common_services == ("net",)

    def test_resource_types_resolved(self, small_spec):
        model = model_from_dict(small_spec)
        assert model.resource_availability("link") == 0.99
        assert model.resource_availability("engine") == pytest.approx(
            1.0 / 1.001
        )
        assert 0.999 < model.resource_availability("farm") < 1.0

    def test_repairable_group_resource(self):
        from repro.availability import RepairableGroup

        model = model_from_dict({
            "resources": {
                "farm": {"type": "repairable-group", "units": 3,
                         "failure_rate": 0.1, "repair_rate": 1.0,
                         "repairmen": 2, "required": 2},
            },
            "services": {"compute": "farm"},
            "functions": {"job": {"services": ["compute"]}},
        })
        expected = RepairableGroup(
            units=3, failure_rate=0.1, repair_rate=1.0, repairmen=2
        ).availability(required=2)
        assert model.resource_availability("farm") == pytest.approx(expected)

    def test_repairable_group_deferred(self):
        model = model_from_dict({
            "resources": {
                "farm": {"type": "repairable-group", "units": 3,
                         "failure_rate": 0.1, "repair_rate": 1.0,
                         "repair_threshold": 2},
            },
            "services": {"compute": "farm"},
            "functions": {"job": {"services": ["compute"]}},
        })
        immediate = model_from_dict({
            "resources": {
                "farm": {"type": "repairable-group", "units": 3,
                         "failure_rate": 0.1, "repair_rate": 1.0},
            },
            "services": {"compute": "farm"},
            "functions": {"job": {"services": ["compute"]}},
        })
        assert model.resource_availability("farm") < (
            immediate.resource_availability("farm")
        )

    def test_two_state_from_availability(self):
        model = model_from_dict({
            "resources": {"lan": {"type": "two-state", "availability": 0.9966}},
            "services": {"lan": "lan"},
            "functions": {"ping": {"services": ["lan"]}},
        })
        assert model.resource_availability("lan") == pytest.approx(0.9966)

    def test_nested_structures(self):
        model = model_from_dict({
            "resources": {"a": 0.9, "b": 0.9, "c": 0.9, "d": 0.8},
            "services": {
                "svc": {"series": [
                    {"k_of_n": {"k": 2, "of": ["a", "b", "c"]}},
                    "d",
                ]},
            },
            "functions": {"f": {"services": ["svc"]}},
        })
        # 2-of-3 at 0.9 = 0.972; times 0.8.
        assert model.service_availability("svc") == pytest.approx(0.972 * 0.8)

    def test_diagram_function(self):
        model = model_from_dict({
            "resources": {"w": 0.9, "a": 0.8},
            "services": {"web": "w", "app": "a"},
            "functions": {
                "browse": {"diagram": {
                    "nodes": {"hit": ["web"], "miss": ["web", "app"]},
                    "edges": [
                        ["Begin", "hit", 0.3],
                        ["Begin", "miss", 0.7],
                        ["hit", "End"],
                        ["miss", "End"],
                    ],
                }},
            },
        })
        assert model.function_availability("browse") == pytest.approx(
            0.3 * 0.9 + 0.7 * 0.9 * 0.8
        )

    def test_evaluation_matches_handwritten_model(self, small_spec):
        from repro.core import HierarchicalModel
        from repro.rbd import parallel

        declared = model_from_dict(small_spec)

        manual = HierarchicalModel()
        manual.add_resource("link", 0.99)
        manual.add_resource("host-1", 0.9)
        manual.add_resource("host-2", 0.9)
        from repro.availability import TwoStateAvailability, WebServiceModel

        manual.add_resource(
            "engine", TwoStateAvailability(failure_rate=1e-3, repair_rate=1.0)
        )
        manual.add_resource("farm", WebServiceModel(
            servers=2, arrival_rate=50.0, service_rate=100.0,
            buffer_capacity=10, failure_rate=1e-4, repair_rate=1.0,
            coverage=0.98, reconfiguration_rate=12.0,
        ))
        manual.add_service("net", "link")
        manual.add_service("web", "farm")
        manual.add_service("application", parallel("host-1", "host-2"))
        manual.add_service("matching", "engine")
        manual.add_function("home", services=["web"])
        manual.add_function("trade", services=["web", "application", "matching"])
        manual.require_everywhere(["net"])

        for name in ("home", "trade"):
            assert declared.function_availability(name) == pytest.approx(
                manual.function_availability(name), rel=1e-14
            )


class TestSpecValidation:
    def test_unknown_top_level_key(self):
        with pytest.raises(ValidationError, match="unknown top-level"):
            model_from_dict({"resourcez": {}})

    def test_unknown_resource_type(self):
        with pytest.raises(ValidationError, match="unknown type"):
            model_from_dict({"resources": {"x": {"type": "quantum"}}})

    def test_missing_resource_field(self):
        with pytest.raises(ValidationError, match="missing field"):
            model_from_dict({
                "resources": {"x": {"type": "two-state", "failure_rate": 1.0}},
            })

    def test_bad_structure_kind(self):
        with pytest.raises(ValidationError, match="unknown structure kind"):
            model_from_dict({
                "resources": {"a": 0.9},
                "services": {"s": {"xor": ["a"]}},
            })

    def test_structure_with_two_keys(self):
        with pytest.raises(ValidationError, match="exactly one key"):
            model_from_dict({
                "resources": {"a": 0.9},
                "services": {"s": {"series": ["a"], "parallel": ["a"]}},
            })

    def test_function_without_body(self):
        with pytest.raises(ValidationError, match="'services' or 'diagram'"):
            model_from_dict({
                "resources": {"a": 0.9},
                "services": {"s": "a"},
                "functions": {"f": {}},
            })

    def test_bad_edge_arity(self):
        with pytest.raises(ValidationError, match="edge"):
            model_from_dict({
                "resources": {"a": 0.9},
                "services": {"s": "a"},
                "functions": {"f": {"diagram": {
                    "nodes": {"n": ["s"]},
                    "edges": [["Begin"]],
                }}},
            })

    def test_boolean_resource_rejected(self):
        with pytest.raises(ValidationError):
            model_from_dict({"resources": {"x": True}})


class TestUserClasses:
    def test_percent_normalization(self, small_spec):
        classes = user_classes_from_dict(small_spec)
        mixed = classes["mixed"]
        assert mixed.distribution.probability_of({"home"}) == pytest.approx(0.7)
        assert mixed.buying_intent("trade") == pytest.approx(0.3)

    def test_empty_scenario_key(self):
        classes = user_classes_from_dict({
            "user_classes": {"bouncy": {"": 0.5, "home": 0.5}},
        })
        assert classes["bouncy"].distribution.probability_of([]) == 0.5


class TestLoadModel:
    def test_roundtrip_through_json(self, small_spec, tmp_path):
        path = tmp_path / "model.json"
        path.write_text(json.dumps(small_spec))
        model, classes = load_model(path)
        assert set(model.functions) == {"home", "trade"}
        result = model.user_availability(classes["mixed"])
        assert 0.9 < result.availability < 1.0

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ValidationError, match="invalid JSON"):
            load_model(path)
