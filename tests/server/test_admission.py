"""Tests for the M/M/c/K admission controller (the self-model)."""

import pytest

from repro.errors import ValidationError
from repro.queueing import MMCKQueue
from repro.server import AdmissionController


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestOccupancy:
    def test_admits_until_capacity_then_rejects(self):
        controller = AdmissionController(slots=2, capacity=3)
        assert [controller.try_admit() for _ in range(5)] == [
            True, True, True, False, False,
        ]
        assert controller.in_system == 3
        assert controller.arrivals == 5
        assert controller.accepted == 3
        assert controller.rejections == 2

    def test_complete_frees_a_slot(self):
        controller = AdmissionController(slots=1, capacity=1)
        assert controller.try_admit()
        assert not controller.try_admit()
        controller.complete(0.5)
        assert controller.try_admit()

    def test_release_frees_without_counting_service(self):
        controller = AdmissionController(slots=1, capacity=2)
        controller.try_admit()
        controller.release()
        assert controller.in_system == 0
        assert controller.completed == 0
        assert controller.service_seconds == 0.0

    def test_occupy_claims_without_an_arrival(self):
        controller = AdmissionController(slots=1, capacity=2)
        controller.occupy()
        assert controller.in_system == 1
        assert controller.arrivals == 0

    def test_occupy_into_full_system_rejected(self):
        controller = AdmissionController(slots=1, capacity=1)
        controller.occupy()
        with pytest.raises(ValidationError):
            controller.occupy()

    def test_release_or_complete_on_empty_system_rejected(self):
        controller = AdmissionController(slots=1, capacity=1)
        with pytest.raises(ValidationError):
            controller.release()
        with pytest.raises(ValidationError):
            controller.complete(1.0)

    def test_capacity_below_slots_rejected(self):
        with pytest.raises(ValidationError):
            AdmissionController(slots=4, capacity=2)


class TestMeasuredRates:
    def test_rates_unmeasurable_at_start(self):
        controller = AdmissionController(slots=2, capacity=4)
        assert controller.arrival_rate() is None
        assert controller.service_rate() is None
        assert controller.rejection_ratio() is None
        assert controller.self_model() is None

    def test_arrival_rate_is_gaps_over_window(self):
        clock = FakeClock()
        controller = AdmissionController(slots=2, capacity=8, clock=clock)
        for _ in range(5):
            controller.try_admit()
            clock.advance(0.25)
        # 5 arrivals at t = 0, .25, .5, .75, 1.0 -> 4 gaps over 1 s.
        assert controller.arrival_rate() == pytest.approx(4.0)

    def test_service_rate_is_inverse_mean_holding_time(self):
        controller = AdmissionController(slots=2, capacity=8)
        controller.try_admit()
        controller.try_admit()
        controller.complete(0.2)
        controller.complete(0.3)
        assert controller.service_rate() == pytest.approx(2 / 0.5)

    def test_self_model_matches_direct_mmck(self):
        clock = FakeClock()
        controller = AdmissionController(slots=2, capacity=4, clock=clock)
        for _ in range(11):
            controller.try_admit()
            controller.complete(0.1)
            clock.advance(0.05)
        metrics = controller.self_model()
        reference = MMCKQueue(
            arrival_rate=controller.arrival_rate(),
            service_rate=controller.service_rate(),
            servers=2,
            capacity=4,
        ).metrics()
        assert metrics.blocking_probability == pytest.approx(
            reference.blocking_probability
        )


class TestReport:
    def test_report_structure_when_measured(self):
        clock = FakeClock()
        controller = AdmissionController(slots=1, capacity=2, clock=clock)
        for _ in range(10):
            admitted = controller.try_admit()
            if admitted:
                controller.complete(0.4)
            clock.advance(0.2)
        report = controller.report()
        assert report["config"] == {"slots": 1, "capacity": 2}
        assert report["observed"]["arrivals"] == 10
        assert report["measured"]["offered_load"] == pytest.approx(
            report["measured"]["arrival_rate"]
            / report["measured"]["service_rate"]
        )
        model = report["model"]
        assert 0.0 <= model["blocking_probability"] <= 1.0
        assert model["availability"] == pytest.approx(
            1.0 - model["blocking_probability"]
        )
        check = report["cross_check"]
        low, high = check["rejection_ci"]
        assert 0.0 <= low <= high <= 1.0
        assert check["observed_rejection_ratio"] == pytest.approx(
            report["observed"]["rejected"] / report["observed"]["arrivals"]
        )

    def test_report_before_traffic_has_null_model(self):
        report = AdmissionController(slots=1, capacity=1).report()
        assert report["measured"] is None
        assert report["model"] is None
        assert report["cross_check"] is None
