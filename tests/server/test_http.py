"""Tests for the minimal HTTP/1.1 parser and SSE framing."""

import asyncio
import json

import pytest

from repro.server.http import (
    HttpProtocolError,
    MAX_BODY_BYTES,
    Request,
    json_response,
    read_request,
)


def parse(raw: bytes):
    """Feed *raw* to the parser through a real StreamReader."""

    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(run())


class TestRequestParsing:
    def test_get_with_query(self):
        request = parse(b"GET /v1/jobs?limit=3 HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/v1/jobs"
        assert request.query == "limit=3"
        assert request.headers["host"] == "x"
        assert request.body == b""

    def test_post_with_json_body(self):
        body = json.dumps({"figure": "11"}).encode()
        raw = (
            b"POST /v1/sweeps HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        request = parse(raw)
        assert request.json() == {"figure": "11"}

    def test_eof_between_requests_is_none(self):
        assert parse(b"") is None

    def test_malformed_request_line(self):
        with pytest.raises(HttpProtocolError) as excinfo:
            parse(b"NONSENSE\r\n\r\n")
        assert excinfo.value.status == 400

    def test_unsupported_protocol_version(self):
        with pytest.raises(HttpProtocolError):
            parse(b"GET / SPDY/99\r\n\r\n")

    def test_chunked_upload_rejected(self):
        with pytest.raises(HttpProtocolError):
            parse(
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            )

    def test_oversized_body_is_413(self):
        raw = (
            b"POST / HTTP/1.1\r\n"
            + f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode()
        )
        with pytest.raises(HttpProtocolError) as excinfo:
            parse(raw)
        assert excinfo.value.status == 413

    def test_invalid_content_length(self):
        with pytest.raises(HttpProtocolError):
            parse(b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n")

    def test_truncated_body(self):
        with pytest.raises(HttpProtocolError):
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")

    def test_keep_alive_default_and_close(self):
        assert parse(b"GET / HTTP/1.1\r\n\r\n").keep_alive
        closed = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not closed.keep_alive


class TestRequestJson:
    def make(self, body: bytes) -> Request:
        return Request(
            method="POST", target="/", path="/", query="",
            headers={}, body=body,
        )

    def test_empty_body_is_empty_object(self):
        assert self.make(b"").json() == {}

    def test_non_object_body_rejected(self):
        with pytest.raises(HttpProtocolError):
            self.make(b"[1, 2]").json()

    def test_invalid_json_rejected(self):
        with pytest.raises(HttpProtocolError):
            self.make(b"{nope").json()


class TestJsonResponse:
    def test_newline_terminated_json(self):
        response = json_response(202, {"id": "job-000001"})
        assert response.status == 202
        assert response.body.endswith(b"\n")
        assert json.loads(response.body) == {"id": "job-000001"}
