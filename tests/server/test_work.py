"""Tests for job-spec validation and execution."""

import pytest

from repro.errors import CancelledError, ValidationError
from repro.runtime import CancellationToken
from repro.server import execute_job, parse_spec


class TestParseSpec:
    def test_sweep_defaults(self):
        spec = parse_spec("sweep", {})
        assert spec == {
            "figure": "11",
            "arrival_rate": 100.0,
            "servers_max": 10,
            "workers": 1,
            "profile": False,
        }

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError) as excinfo:
            parse_spec("frobnicate", {})
        assert "frobnicate" in str(excinfo.value)

    def test_unknown_key_rejected_with_allowed_list(self):
        with pytest.raises(ValidationError) as excinfo:
            parse_spec("sweep", {"figur": "11"})
        message = str(excinfo.value)
        assert "figur" in message and "figure" in message

    def test_non_object_spec_rejected(self):
        with pytest.raises(ValidationError):
            parse_spec("sweep", [1, 2])

    def test_bad_figure_rejected(self):
        with pytest.raises(ValidationError):
            parse_spec("sweep", {"figure": "13"})

    def test_campaign_defaults_and_scenario_check(self):
        spec = parse_spec("campaign", {"scenario": "lan-host"})
        assert spec["scenario"] == "lan-host"
        assert spec["horizon"] == 100.0
        assert spec["replications"] == 4
        with pytest.raises(ValidationError):
            parse_spec("campaign", {"scenario": "meteor-strike"})

    def test_campaign_seed_must_be_int(self):
        with pytest.raises(ValidationError):
            parse_spec("campaign", {"seed": True})

    def test_probe_hold_bounded(self):
        assert parse_spec("probe", {"hold": 0.5}) == {"hold": 0.5}
        with pytest.raises(ValidationError):
            parse_spec("probe", {"hold": 3600.0})
        with pytest.raises(ValidationError):
            parse_spec("probe", {"hold": -1.0})

    def test_policies_validates_positive_ints(self):
        with pytest.raises(ValidationError):
            parse_spec("policies", {"servers": 0})

    def test_cloud_defaults(self):
        spec = parse_spec("cloud", {})
        assert spec == {
            "arrival_rate": 100.0,
            "service_rate": 100.0,
            "zone_availability": 0.9995,
            "workers": 1,
            "profile": False,
        }

    def test_cloud_unknown_key_rejected_with_allowed_list(self):
        with pytest.raises(ValidationError) as excinfo:
            parse_spec("cloud", {"zone_avail": 0.99})
        message = str(excinfo.value)
        assert "zone_avail" in message and "zone_availability" in message

    @pytest.mark.parametrize("kind", ["sweep", "policies", "cloud"])
    def test_profile_key_accepted_on_engine_kinds(self, kind):
        assert parse_spec(kind, {"profile": True})["profile"] is True

    @pytest.mark.parametrize("value", ["yes", 1, None])
    def test_profile_key_must_be_boolean(self, value):
        with pytest.raises(ValidationError) as excinfo:
            parse_spec("sweep", {"profile": value})
        assert "'profile' must be a boolean" in str(excinfo.value)

    def test_profile_key_rejected_on_campaign(self):
        with pytest.raises(ValidationError):
            parse_spec("campaign", {"profile": True})

    def test_cloud_validates_values(self):
        with pytest.raises(ValidationError):
            parse_spec("cloud", {"arrival_rate": 0})
        with pytest.raises(ValidationError):
            parse_spec("cloud", {"zone_availability": 1.5})
        with pytest.raises(ValidationError):
            parse_spec("cloud", {"zone_availability": -0.1})
        with pytest.raises(ValidationError):
            parse_spec("cloud", {"workers": 0})


class TestExecuteJob:
    def test_probe_returns_held_seconds(self):
        result = execute_job("probe", {"hold": 0.0})
        assert result == {"held_seconds": 0.0}

    def test_probe_cancellation_is_prompt(self):
        token = CancellationToken()
        token.cancel("test stop")
        with pytest.raises(CancelledError):
            execute_job("probe", parse_spec("probe", {"hold": 30.0}),
                        token=token)

    def test_sweep_result_document(self):
        spec = parse_spec("sweep", {"servers_max": 3})
        result = execute_job("sweep", spec)
        assert result["cells"] == 9
        assert "Figure 11" in result["text"]
        assert set(result["series"]) == {"0.01", "0.001", "0.0001"}
        assert all(len(v) == 3 for v in result["series"].values())

    def test_campaign_result_document(self):
        spec = parse_spec("campaign", {
            "scenario": "null", "user_class": "A",
            "horizon": 50.0, "replications": 2,
        })
        result = execute_job("campaign", spec)
        assert result["calibrated"] in (True, False)
        assert len(result["campaigns"]) == 1
        assert result["campaigns"][0]["user_class"] == "class A"

    def test_cloud_result_document(self):
        spec = parse_spec("cloud", {})
        result = execute_job("cloud", spec)
        assert result["cells"] == 5
        assert "best deployment:" in result["text"]
        assert result["best"]["deployment"] in result["ranking"]
        assert result["ranking"][0] == result["best"]["deployment"]
        assert 0.99 < result["best"]["mean_availability"] < 1.0
        assert sorted(result["ranking"]) == sorted(set(result["ranking"]))

    def test_unprofiled_result_has_no_profile(self):
        spec = parse_spec("sweep", {"servers_max": 2})
        assert "profile" not in execute_job("sweep", spec)

    def test_profiled_sweep_attaches_profile_document(self):
        spec = parse_spec("sweep", {"servers_max": 3, "profile": True})
        result = execute_job("sweep", spec)
        profile = result["profile"]
        assert set(profile) == {
            "attribution", "text", "collapsed", "speedscope"
        }
        (batch,) = profile["attribution"]["batches"]
        assert batch["tasks"] == 9
        assert batch["coverage"] >= 0.95
        assert "performance attribution" in profile["text"]
        # The profiled text is a side document: the job's headline text
        # stays byte-identical to the unprofiled run.
        plain = execute_job("sweep", parse_spec("sweep", {"servers_max": 3}))
        assert result["text"] == plain["text"]

    def test_profiled_policies_attaches_profile_document(self):
        spec = parse_spec("policies", {"profile": True})
        result = execute_job("policies", spec)
        assert result["profile"]["attribution"]["batches"]
