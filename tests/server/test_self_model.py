"""The evaluator evaluates itself: M/M/c/K cross-check under load.

Drives a c=2, K=4 server with Poisson probe traffic — exponential
inter-arrival gaps, exponential slot-holding times — so the admission
controller faces exactly the traffic its analytic self-model assumes.
The observed 503 ratio must land inside the Wilson confidence interval
around the model's predicted blocking probability (``within_ci`` in
``GET /v1/self``), closing the loop between the paper's eq. (3) and a
live queueing system.
"""

import time

import numpy as np
import pytest

from repro.queueing import MMCKQueue
from repro.server import ServerClient, ServerThread

ARRIVALS = 250
MEAN_GAP = 0.02  # ~50 arrivals/s offered
MEAN_HOLD = 0.08  # ~12.5/s service rate per slot -> offered load ~4


@pytest.fixture(scope="module")
def saturated_report():
    rng = np.random.default_rng(20030625)
    gaps = rng.exponential(MEAN_GAP, size=ARRIVALS)
    holds = np.minimum(rng.exponential(MEAN_HOLD, size=ARRIVALS), 1.0)
    with ServerThread(slots=2, queue_limit=4) as handle:
        client = ServerClient(port=handle.port)
        rejected = 0
        for gap, hold in zip(gaps, holds):
            document = client.submit(
                "probe", {"hold": float(hold)}, raise_for_reject=False
            )
            if document.get("rejected"):
                rejected += 1
            time.sleep(gap)
        # Let the tail of accepted probes drain before reading rates.
        deadline = time.monotonic() + 30.0
        while client.self_report()["observed"]["in_system"]:
            assert time.monotonic() < deadline, "probes did not drain"
            time.sleep(0.05)
        report = client.self_report()
        metrics_text = client.metrics_text()
    return report, rejected, metrics_text


class TestSelfModelUnderSaturation:
    def test_saturation_produced_rejections(self, saturated_report):
        report, rejected, _ = saturated_report
        assert report["observed"]["arrivals"] == ARRIVALS
        assert report["observed"]["rejected"] == rejected
        assert rejected >= 10, "load was meant to saturate the queue"

    def test_measured_rates_are_close_to_the_offered_traffic(
        self, saturated_report
    ):
        report, _, _ = saturated_report
        measured = report["measured"]
        # Loose sanity bounds: sleep jitter inflates both estimates'
        # denominators, so only the magnitude is pinned.
        assert measured["arrival_rate"] == pytest.approx(
            1.0 / MEAN_GAP, rel=0.5
        )
        assert measured["service_rate"] == pytest.approx(
            1.0 / MEAN_HOLD, rel=0.5
        )

    def test_predicted_blocking_within_ci_of_observed_ratio(
        self, saturated_report
    ):
        report, _, _ = saturated_report
        check = report["cross_check"]
        low, high = check["rejection_ci"]
        assert low <= check["predicted_blocking"] <= high
        assert check["within_ci"] is True

    def test_model_matches_direct_kernel_evaluation(self, saturated_report):
        report, _, _ = saturated_report
        measured = report["measured"]
        reference = MMCKQueue(
            arrival_rate=measured["arrival_rate"],
            service_rate=measured["service_rate"],
            servers=2,
            capacity=4,
        ).metrics()
        assert report["model"]["blocking_probability"] == pytest.approx(
            reference.blocking_probability
        )
        assert report["model"]["utilization"] == pytest.approx(
            reference.utilization
        )

    def test_rejection_counter_matches_observed(self, saturated_report):
        report, _, metrics_text = saturated_report
        expected = float(report["observed"]["rejected"])
        line = next(
            line for line in metrics_text.splitlines()
            if line.startswith(
                'server_admission_rejections_total{kind="probe"}'
            )
        )
        assert float(line.split()[-1]) == expected
