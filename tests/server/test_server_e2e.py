"""End-to-end tests: a real server on an ephemeral port.

The server's headline contract is byte-identity with the offline CLI:
a sweep submitted over HTTP returns exactly what ``repro sweep``
prints, serial or parallel, and ``/metrics`` renders the same
OpenMetrics exposition ``repro stats --format openmetrics`` does.
"""

import contextlib
import io
import time

import pytest

from repro.cli import main
from repro.errors import ServerError
from repro.obs import MetricsRegistry
from repro.server import ServerClient, ServerThread


def cli_stdout(argv):
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer), contextlib.redirect_stderr(
        io.StringIO()
    ):
        code = main(argv)
    assert code == 0
    return buffer.getvalue()


@pytest.fixture(scope="module")
def server():
    with ServerThread(slots=2, queue_limit=8) as handle:
        yield handle


@pytest.fixture()
def client(server):
    return ServerClient(port=server.port)


class TestSweepByteIdentity:
    ARGS = ["--figure", "11", "--arrival-rate", "60", "--servers-max", "4"]

    def test_serial_sweep_matches_cli(self, client):
        offline = cli_stdout(["sweep"] + self.ARGS)
        text = client.sweep_text(figure="11", arrival_rate=60.0,
                                 servers_max=4)
        assert text + "\n" == offline

    def test_parallel_sweep_matches_cli(self, client):
        offline = cli_stdout(["sweep"] + self.ARGS)
        text = client.sweep_text(figure="11", arrival_rate=60.0,
                                 servers_max=4, workers=2)
        assert text + "\n" == offline


class TestOtherWorkloads:
    def test_policies_matches_cli(self, client):
        offline = cli_stdout(["policies"])
        done = client.run("policies", {})
        assert done["result"]["text"] + "\n" == offline
        assert done["result"]["best"]["policy"]

    def test_campaign_matches_cli(self, client):
        argv = ["inject", "--scenario", "null", "--user-class", "A",
                "--horizon", "50", "--replications", "2"]
        offline = cli_stdout(argv)
        done = client.run("campaign", {
            "scenario": "null", "user_class": "A",
            "horizon": 50.0, "replications": 2,
        })
        assert done["result"]["text"] + "\n" == offline
        assert done["result"]["calibrated"] is True

    def test_cloud_matches_cli(self, client):
        offline = cli_stdout(["cloud", "--zone-availability", "0.999"])
        text = client.cloud_text(zone_availability=0.999)
        assert text + "\n" == offline

    def test_parallel_cloud_matches_cli(self, client):
        offline = cli_stdout(["cloud", "--zone-availability", "0.999"])
        done = client.run("cloud", {"zone_availability": 0.999,
                                    "workers": 2})
        assert done["result"]["text"] + "\n" == offline
        assert done["result"]["ranking"][0] == (
            done["result"]["best"]["deployment"]
        )


class TestJobProfiles:
    def test_profiled_job_serves_profile_document(self, client):
        done = client.run("sweep", {"servers_max": 3, "profile": True})
        # The job document links to the profile instead of inlining it.
        assert done["result"]["profile"] == {
            "href": f"/v1/jobs/{done['id']}/profile"
        }
        profile = client.job_profile(done["id"])
        assert set(profile) == {
            "attribution", "text", "collapsed", "speedscope"
        }
        (batch,) = profile["attribution"]["batches"]
        assert batch["coverage"] >= 0.95
        assert "speedscope" in profile["speedscope"]["$schema"]

    def test_profiled_sweep_text_stays_byte_identical(self, client):
        offline = cli_stdout(["sweep", "--servers-max", "3"])
        done = client.run("sweep", {"servers_max": 3, "profile": True})
        assert done["result"]["text"] + "\n" == offline

    def test_unprofiled_job_profile_is_404(self, client):
        done = client.run("sweep", {"servers_max": 2})
        assert "profile" not in done["result"]
        with pytest.raises(ServerError) as excinfo:
            client.job_profile(done["id"])
        assert "404" in str(excinfo.value)
        assert "no profile" in str(excinfo.value)

    def test_non_boolean_profile_is_400(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.run("sweep", {"profile": "yes"})
        assert "400" in str(excinfo.value)
        assert "boolean" in str(excinfo.value)


class TestJobApi:
    def test_job_lifecycle_and_listing(self, client):
        job = client.submit_probe(hold=0.0)
        assert job["status"] in ("queued", "running")
        done = client.wait(job["id"])
        assert done["status"] == "done"
        assert done["result"] == {"held_seconds": 0.0}
        listed = {entry["id"] for entry in client.jobs()}
        assert job["id"] in listed

    def test_bad_spec_is_400_with_message(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.submit_sweep(figure="13")
        assert "400" in str(excinfo.value)
        assert "figure" in str(excinfo.value)

    def test_unknown_spec_key_is_400(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.submit_sweep(figur="11")
        assert "400" in str(excinfo.value)

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.job("job-424242")
        assert "404" in str(excinfo.value)

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServerError) as excinfo:
            client._json("GET", "/v2/anything")
        assert "404" in str(excinfo.value)

    def test_wrong_method_is_405(self, client):
        status, _body = client._request("DELETE", "/v1/sweeps")
        assert status == 405

    def test_cancel_running_probe(self, client):
        job = client.submit_probe(hold=30.0)
        cancelled = client.cancel(job["id"])
        assert cancelled["cancel_requested"] or (
            cancelled["status"] == "cancelled"
        )
        done = client.wait(job["id"])
        assert done["status"] == "cancelled"

    def test_health_and_readiness(self, client):
        assert client.healthz()["status"] == "ok"
        assert client.readyz() is True


class TestSelfEndpoint:
    def test_self_report_shape(self, client):
        # The module-scoped server has seen traffic from earlier tests.
        report = client.self_report()
        assert report["config"] == {"slots": 2, "capacity": 8}
        assert report["uptime_seconds"] > 0.0
        assert report["observed"]["arrivals"] >= 1
        assert report["slo"]["name"] == "admission"
        assert 0.0 <= report["slo"]["objective"] <= 1.0


class TestEvents:
    def test_stream_delivers_hello_then_job_events(self, client):
        job = client.submit_probe(hold=1.0)
        events = client.events(count=2, timeout=15.0)
        assert events[0][0] == "hello"
        assert events[0][1]["capacity"] == 8
        kinds = {name for name, _ in events}
        assert kinds & {"job", "progress", "heartbeat", "slo"}
        done = client.wait(job["id"])
        assert done["status"] == "done"


class TestMetricsExposition:
    def test_openmetrics_families_present(self, client):
        client.healthz()
        text = client.metrics_text()
        assert text.endswith("# EOF\n")
        assert "# TYPE server_requests counter" in text
        assert 'server_requests_total{' in text
        assert "# TYPE server_request_seconds histogram" in text
        assert 'le="+Inf"' in text
        assert "# TYPE server_queue_depth gauge" in text

    def test_matches_repro_stats_exposition(self, tmp_path):
        # A dedicated server whose registry we hold, so the scrape can
        # be compared byte-for-byte against the CLI exposition of the
        # same snapshot.
        registry = MetricsRegistry()
        with ServerThread(slots=1, queue_limit=2,
                          metrics=registry) as handle:
            client = ServerClient(port=handle.port)
            client.wait(client.submit_probe(hold=0.0)["id"])
            client.metrics_text()  # the scrape that lands in the snapshot
            # The request is observed after its response is written;
            # wait for that observation before freezing the snapshot.
            deadline = time.monotonic() + 10.0
            while not registry.value(
                "server_requests", method="GET", route="/metrics",
                code="200",
            ):
                assert time.monotonic() < deadline
                time.sleep(0.01)
            snapshot = tmp_path / "server-metrics.json"
            registry.save(snapshot)
            scrape = client.metrics_text()
        offline = cli_stdout(["stats", "--format", "openmetrics",
                              str(snapshot)])
        assert scrape == offline


class TestJournalRestartOverHttp:
    def test_interrupted_job_reruns_after_restart(self, tmp_path):
        journal = tmp_path / "server-jobs.jsonl"
        with ServerThread(slots=1, queue_limit=4,
                          journal=journal) as handle:
            client = ServerClient(port=handle.port)
            finished = client.wait(client.submit_probe(hold=0.0)["id"])
            interrupted = client.submit_probe(hold=30.0)
        # Shutdown interrupted the running probe; restart re-runs it.
        with ServerThread(slots=1, queue_limit=4,
                          journal=journal) as handle:
            client = ServerClient(port=handle.port)
            restored = client.job(finished["id"])
            assert restored["status"] == "done"
            assert restored["result"] == {"held_seconds": 0.0}
            rerun = client.job(interrupted["id"])
            assert rerun["status"] in ("queued", "running")
            client.cancel(interrupted["id"])
            assert client.wait(interrupted["id"])["status"] == "cancelled"
