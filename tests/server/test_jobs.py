"""Job-lifecycle tests: cancellation races and journal integrity."""

import asyncio
import time

import pytest

from repro.obs import MetricsRegistry
from repro.runtime import read_journal
from repro.server import JobManager, TERMINAL_STATUSES
from repro.server.work import execute_job


async def wait_until(predicate, timeout=10.0, message="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() >= deadline:
            raise AssertionError(f"timed out waiting for {message}")
        await asyncio.sleep(0.01)


def run(coroutine):
    return asyncio.run(coroutine)


def make_manager(**kwargs):
    kwargs.setdefault("slots", 1)
    kwargs.setdefault("capacity", 4)
    return JobManager(execute_job, **kwargs)


class TestJobDocument:
    def test_profile_swapped_for_link(self):
        from repro.server.jobs import Job

        job = Job(id="job-7", kind="sweep", spec={}, status="done")
        job.result = {"text": "t", "profile": {"attribution": {}}}
        document = job.to_dict()
        assert document["result"]["profile"] == {
            "href": "/v1/jobs/job-7/profile"
        }
        # The stored result keeps the real document (it backs the
        # /profile route and the journal).
        assert job.result["profile"] == {"attribution": {}}

    def test_profile_free_result_passes_through(self):
        from repro.server.jobs import Job

        job = Job(id="job-8", kind="sweep", spec={}, status="done")
        job.result = {"text": "t"}
        assert job.to_dict()["result"] == {"text": "t"}


class TestCancellationRaces:
    def test_cancel_queued_job_never_runs(self):
        async def scenario():
            manager = make_manager()
            await manager.start()
            try:
                blocker = manager.submit("probe", {"hold": 30.0})
                queued = manager.submit("probe", {"hold": 30.0})
                await wait_until(
                    lambda: blocker.status == "running", message="blocker"
                )
                assert queued.status == "queued"
                settled = manager.cancel(queued.id)
                assert settled.status == "cancelled"
                assert settled.started is None  # it never got a slot
                # The freed queue spot is immediately reusable.
                assert manager.admission.in_system == 1
                manager.cancel(blocker.id)
                await wait_until(
                    lambda: blocker.status == "cancelled",
                    message="blocker cancellation",
                )
            finally:
                await manager.stop()

        run(scenario())

    def test_cancel_twice_is_idempotent(self):
        async def scenario():
            manager = make_manager()
            await manager.start()
            try:
                job = manager.submit("probe", {"hold": 30.0})
                await wait_until(lambda: job.status == "running")
                first = manager.cancel(job.id)
                await wait_until(lambda: job.status == "cancelled")
                second = manager.cancel(job.id)
                assert first is second is job
                assert second.status == "cancelled"
            finally:
                await manager.stop()

        run(scenario())

    def test_cancel_after_completion_keeps_done(self):
        async def scenario():
            manager = make_manager()
            await manager.start()
            try:
                job = manager.submit("probe", {"hold": 0.0})
                await wait_until(lambda: job.status in TERMINAL_STATUSES)
                assert job.status == "done"
                settled = manager.cancel(job.id)
                assert settled.status == "done"
                assert settled.result == {"held_seconds": 0.0}
            finally:
                await manager.stop()

        run(scenario())

    def test_cancel_unknown_job_is_a_key_error(self):
        async def scenario():
            manager = make_manager()
            await manager.start()
            try:
                with pytest.raises(KeyError):
                    manager.cancel("job-999999")
            finally:
                await manager.stop()

        run(scenario())

    def test_running_cancel_resolves_cancelled(self):
        async def scenario():
            manager = make_manager()
            await manager.start()
            try:
                job = manager.submit("probe", {"hold": 30.0})
                await wait_until(lambda: job.status == "running")
                manager.cancel(job.id)
                assert job.cancel_requested
                await wait_until(lambda: job.status in TERMINAL_STATUSES)
                assert job.status == "cancelled"
                assert manager.admission.in_system == 0
            finally:
                await manager.stop()

        run(scenario())


class TestJournalIntegrity:
    def journal_records(self, path):
        return list(read_journal(path, missing_ok=True))

    def test_exactly_one_terminal_record_per_job(self, tmp_path):
        path = tmp_path / "jobs.jsonl"

        async def scenario():
            manager = make_manager(journal=path)
            await manager.start()
            try:
                blocker = manager.submit("probe", {"hold": 30.0})
                queued = manager.submit("probe", {"hold": 30.0})
                await wait_until(lambda: blocker.status == "running")
                # Hammer the queued job with repeated cancels.
                for _ in range(3):
                    manager.cancel(queued.id)
                manager.cancel(blocker.id)
                await wait_until(
                    lambda: blocker.status in TERMINAL_STATUSES
                )
                manager.cancel(blocker.id)  # post-terminal no-op
            finally:
                await manager.stop()
            return blocker.id, queued.id

        blocker_id, queued_id = run(scenario())
        records = self.journal_records(path)
        for job_id in (blocker_id, queued_id):
            submitted = [
                r for r in records
                if r["kind"] == "job_submitted" and r["id"] == job_id
            ]
            results = [
                r for r in records
                if r["kind"] == "job_result" and r["id"] == job_id
            ]
            assert len(submitted) == 1
            assert len(results) == 1
            assert results[0]["status"] == "cancelled"

    def test_restart_restores_results_and_reruns_interrupted(self, tmp_path):
        path = tmp_path / "jobs.jsonl"

        async def first_life():
            manager = make_manager(journal=path)
            await manager.start()
            try:
                done = manager.submit("probe", {"hold": 0.0})
                await wait_until(lambda: done.status == "done")
                interrupted = manager.submit("probe", {"hold": 30.0})
                await wait_until(lambda: interrupted.status == "running")
            finally:
                # Shutdown writes no terminal record for the running job.
                await manager.stop()
            return done.id, interrupted.id

        done_id, interrupted_id = run(first_life())

        async def second_life():
            manager = make_manager(journal=path)
            restored_done = manager.get(done_id)
            assert restored_done.status == "done"
            assert restored_done.result == {"held_seconds": 0.0}
            interrupted = manager.get(interrupted_id)
            assert interrupted.status not in TERMINAL_STATUSES
            assert interrupted.restored
            await manager.start()
            try:
                # The interrupted job re-runs; cancel it to settle fast.
                await wait_until(lambda: interrupted.status == "running")
                manager.cancel(interrupted.id)
                await wait_until(
                    lambda: interrupted.status in TERMINAL_STATUSES
                )
            finally:
                await manager.stop()

        run(second_life())
        results = [
            r for r in self.journal_records(path)
            if r["kind"] == "job_result" and r["id"] == interrupted_id
        ]
        assert len(results) == 1
        assert results[0]["status"] == "cancelled"

    def test_ids_continue_after_restart(self, tmp_path):
        path = tmp_path / "jobs.jsonl"

        async def first_life():
            manager = make_manager(journal=path)
            await manager.start()
            try:
                job = manager.submit("probe", {"hold": 0.0})
                await wait_until(lambda: job.status == "done")
            finally:
                await manager.stop()
            return job.id

        first_id = run(first_life())

        async def second_life():
            manager = make_manager(journal=path)
            await manager.start()
            try:
                job = manager.submit("probe", {"hold": 0.0})
                await wait_until(lambda: job.status == "done")
            finally:
                await manager.stop()
            return job.id

        second_id = run(second_life())
        assert first_id == "job-000001"
        assert second_id == "job-000002"


class TestRejectionAndMetrics:
    def test_rejection_counts_and_metric(self):
        registry = MetricsRegistry()

        async def scenario():
            manager = make_manager(slots=1, capacity=1, metrics=registry)
            await manager.start()
            try:
                accepted = manager.submit("probe", {"hold": 30.0})
                assert accepted is not None
                rejected = manager.submit("probe", {"hold": 30.0})
                assert rejected is None
                manager.cancel(accepted.id)
                await wait_until(
                    lambda: accepted.status in TERMINAL_STATUSES
                )
            finally:
                await manager.stop()

        run(scenario())
        assert registry.value(
            "server_admission_rejections", kind="probe"
        ) == 1.0
        assert registry.value("server_queue_depth") == 0.0
        assert registry.value(
            "server_jobs", kind="probe", status="cancelled"
        ) == 1.0

    def test_failed_job_resolves_failed_with_error(self):
        async def scenario():
            def runner(kind, spec, token, progress, metrics):
                raise RuntimeError("boom")

            manager = JobManager(runner, slots=1, capacity=2)
            await manager.start()
            try:
                job = manager.submit("probe", {"hold": 0.0})
                await wait_until(lambda: job.status in TERMINAL_STATUSES)
                assert job.status == "failed"
                assert "boom" in job.error
            finally:
                await manager.stop()

        run(scenario())
