"""CLI tests for ``repro serve`` and the shared int-flag validation."""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.server import ServerClient


def one_line_error(capsys, argv, flag):
    assert main(argv) == 2
    err = capsys.readouterr().err
    assert err.count("\n") == 1
    assert err.startswith("error:")
    assert flag in err
    return err


class TestServeFlagValidation:
    def test_port_above_range(self, capsys):
        err = one_line_error(capsys, ["serve", "--port", "70000"], "--port")
        assert "0..65535" in err

    def test_port_below_range(self, capsys):
        one_line_error(capsys, ["serve", "--port", "-1"], "--port")

    def test_zero_workers(self, capsys):
        one_line_error(capsys, ["serve", "--workers", "0"], "--workers")

    def test_zero_queue_limit(self, capsys):
        one_line_error(
            capsys, ["serve", "--queue-limit", "0"], "--queue-limit"
        )

    def test_queue_limit_below_workers(self, capsys):
        err = one_line_error(
            capsys,
            ["serve", "--workers", "4", "--queue-limit", "2"],
            "--queue-limit",
        )
        assert "--workers" in err


class TestSharedIntFlagValidation:
    """Every integer flag fails the same way, naming the flag."""

    @pytest.mark.parametrize("argv,flag", [
        (["sweep", "--servers-max", "0"], "--servers-max"),
        (["chaos", "--injector", "transient", "--faults", "0"], "--faults"),
        (["chaos", "--injector", "transient", "--seed", "-1"], "--seed"),
        (["policies", "--servers", "0"], "--servers"),
        (["policies", "--buffer", "0"], "--buffer"),
        (["policies", "--breaker-threshold", "0"], "--breaker-threshold"),
        (["policies", "--max-retries", "-1"], "--max-retries"),
        (["retries", "--max-retries", "-2"], "--max-retries"),
        (["retries", "--simulate", "0"], "--simulate"),
        (["inject", "--replications", "0"], "--replications"),
        (["slo", "--replications", "0"], "--replications"),
        (["trace-report", "/nonexistent", "--top", "0"], "--top"),
        (["ta", "--reservations", "0"], "--reservations"),
        (["web", "--servers", "0"], "--servers"),
        (["web", "--buffer", "-1"], "--buffer"),
    ])
    def test_bad_value_exits_2_naming_the_flag(self, capsys, argv, flag):
        one_line_error(capsys, argv, flag)

    def test_zero_max_retries_stays_valid(self, capsys):
        assert main(["retries", "--max-retries", "0"]) == 0


class TestSharedFloatFlagValidation:
    """Every float flag fails the same way, naming the flag.

    ``argparse``'s ``type=float`` accepts ``nan`` and ``inf``; the
    shared ``_check_float_flag`` helper rejects both with the same
    one-line error as an out-of-range value.
    """

    @pytest.mark.parametrize("argv,flag", [
        (["web", "--arrival-rate", "0"], "--arrival-rate"),
        (["web", "--service-rate", "-1"], "--service-rate"),
        (["web", "--failure-rate", "nan"], "--failure-rate"),
        (["web", "--repair-rate", "inf"], "--repair-rate"),
        (["web", "--coverage", "1.5"], "--coverage"),
        (["web", "--reconfiguration-rate", "0"], "--reconfiguration-rate"),
        (["web", "--deadline", "0"], "--deadline"),
        (["sweep", "--arrival-rate", "0"], "--arrival-rate"),
        (["chaos", "--injector", "transient", "--arrival-rate", "-5"],
         "--arrival-rate"),
        (["inject", "--horizon", "0"], "--horizon"),
        (["retries", "--persistence", "1.5"], "--persistence"),
        (["retries", "--persistence", "-0.1"], "--persistence"),
        (["policies", "--arrival-rate", "inf"], "--arrival-rate"),
        (["policies", "--service-rate", "0"], "--service-rate"),
        (["policies", "--timeout", "0"], "--timeout"),
        (["policies", "--hedge-delay", "-0.5"], "--hedge-delay"),
        (["policies", "--hedge-delay", "0"], "--hedge-delay"),
        (["policies", "--breaker-reset", "0"], "--breaker-reset"),
        (["slo", "--session-rate", "0"], "--session-rate"),
        (["slo", "--horizon", "nan"], "--horizon"),
        (["slo", "--objective", "1"], "--objective"),
        (["slo", "--objective", "0"], "--objective"),
        (["slo", "--short-window", "0"], "--short-window"),
        (["slo", "--long-window", "-1"], "--long-window"),
        (["slo", "--burn-threshold", "0"], "--burn-threshold"),
        (["diff", "a.json", "b.json", "--threshold", "inf"], "--threshold"),
        (["serve", "--slo-objective", "1"], "--slo-objective"),
        (["cloud", "--arrival-rate", "0"], "--arrival-rate"),
        (["cloud", "--service-rate", "nan"], "--service-rate"),
        (["cloud", "--zone-availability", "0"], "--zone-availability"),
        (["cloud", "--zone-availability", "1.0001"], "--zone-availability"),
    ])
    def test_bad_value_exits_2_naming_the_flag(self, capsys, argv, flag):
        one_line_error(capsys, argv, flag)

    def test_negative_diff_threshold_stays_valid(self, tmp_path, capsys):
        # Speedup guards are negative thresholds; only non-finite values
        # are rejected for --threshold.
        record = '{"benchmark": "t", "guarded": [], "results": {}}'
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(record)
        b.write_text(record)
        assert main(["diff", str(a), str(b), "--threshold", "-0.5"]) == 0


class TestServeBoot:
    # SIGTERM must also shut down cleanly: supervisors send it, and
    # non-interactive shells start background jobs with SIGINT ignored.
    @pytest.mark.parametrize("stop_signal", [signal.SIGINT, signal.SIGTERM])
    def test_serve_binds_ephemeral_port_and_shuts_down(
        self, tmp_path, stop_signal
    ):
        port_file = tmp_path / "port"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--port", "0", "--port-file", str(port_file)],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        try:
            deadline = time.monotonic() + 30.0
            while not port_file.exists() or not port_file.read_text().strip():
                assert process.poll() is None, (
                    process.communicate()[1].decode()
                )
                assert time.monotonic() < deadline, "server never bound"
                time.sleep(0.05)
            port = int(port_file.read_text())
            client = ServerClient(port=port)
            assert client.healthz()["status"] == "ok"
            job = client.wait(client.submit_probe(hold=0.0)["id"])
            assert job["status"] == "done"
        finally:
            process.send_signal(stop_signal)
            _out, err = process.communicate(timeout=30)
        assert process.returncode == 0, err.decode()
        assert "serving on http://127.0.0.1:" in err.decode()
