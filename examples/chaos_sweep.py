"""Chaos-test the evaluation engine: crash it, corrupt it, resume it.

Fault tolerance that is never exercised is fault tolerance that does
not exist.  This example runs a small Fig. 11 grid through the
:class:`repro.engine.EvaluationEngine` while :mod:`repro.chaos` injects
the faults the engine claims to survive — a killed pool worker,
transient task failures, bit-rotted cache entries — and then checks the
only verdict that matters: the disturbed runs reproduce the undisturbed
serial reference *bit for bit*.

Every injection site is drawn from a seeded
:class:`numpy.random.SeedSequence`, so re-running this script replays
exactly the same faults.  The CLI equivalent is::

    repro chaos --injector kill-worker --servers-max 4
    repro chaos --injector transient --servers-max 4

Run:  python examples/chaos_sweep.py
"""

import tempfile
from pathlib import Path

from repro.availability import WebServiceModel
from repro.chaos import (
    corrupt_cache_entries,
    plan_transient_faults,
    plan_worker_kills,
)
from repro.engine import EvaluationEngine, TaskRetryPolicy, canonical_key

FAILURE_RATES = (1e-2, 1e-3, 1e-4)
SERVERS = tuple(range(1, 5))


def unavailability(spec):
    """One grid cell; module-level so pool workers can unpickle it."""
    failure_rate, servers = spec
    return WebServiceModel(
        servers=int(servers), arrival_rate=100.0, service_rate=100.0,
        buffer_capacity=10, failure_rate=failure_rate, repair_rate=1.0,
    ).unavailability()


def main() -> None:
    cells = [(lam, nw) for lam in FAILURE_RATES for nw in SERVERS]
    keys = [
        canonical_key("chaos-demo", failure_rate=lam, servers=nw)
        for lam, nw in cells
    ]
    reference = EvaluationEngine().map(unavailability, cells).outputs
    print(f"reference: {len(cells)} cells, serial, undisturbed")

    with tempfile.TemporaryDirectory(prefix="chaos-sweep-") as workdir:
        workdir = Path(workdir)

        # 1. Kill a worker mid-batch: the supervisor respawns the pool
        #    and re-dispatches only the unfinished tasks.
        plan = plan_worker_kills(
            len(cells), seed=0, count=2, state_dir=str(workdir / "kill")
        )
        result = EvaluationEngine(workers=2, chaos=plan).map(
            unavailability, cells
        )
        assert result.outputs == reference
        print(
            f"kill-worker: killed at task indices {plan.kill_tasks}, "
            f"{result.respawns} pool respawn(s) -> outputs identical"
        )

        # 2. Transient task failures: the retry policy re-runs them.
        plan = plan_transient_faults(
            len(cells), seed=0, count=3, state_dir=str(workdir / "flaky")
        )
        result = EvaluationEngine(
            workers=2, chaos=plan, retry=TaskRetryPolicy()
        ).map(unavailability, cells)
        assert result.outputs == reference
        print(
            f"transient: faults at task indices {plan.transient_tasks}, "
            f"{result.retries} retr(ies) -> outputs identical"
        )

        # 3. Bit rot in the on-disk memo cache: checksum framing detects
        #    the damage, quarantines the entries, and recomputes.
        cache_dir = workdir / "cache"
        EvaluationEngine(cache_dir=cache_dir).map(
            unavailability, cells, keys=keys
        )
        victims = corrupt_cache_entries(cache_dir, seed=0, count=2)
        rerun = EvaluationEngine(cache_dir=cache_dir)
        result = rerun.map(unavailability, cells, keys=keys)
        assert result.outputs == reference
        assert result.cache_stats.corruptions == len(victims)
        print(
            f"corrupt-cache: {len(victims)} entr(ies) damaged, "
            f"{result.cache_stats.corruptions} quarantined, "
            f"{result.executed} recomputed -> outputs identical"
        )

    print("every injector recovered to a byte-identical sweep")


if __name__ == "__main__":
    main()
