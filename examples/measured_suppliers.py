"""From monitoring data to user-perceived availability with error bars.

The paper's introduction observes that external suppliers can only be
characterized by *remote measurement*.  This example runs that pipeline
end to end:

1. synthesize probe logs for the reservation and payment systems (as a
   real monitor would produce);
2. fit two-state availability models with confidence intervals
   (:mod:`repro.measurement`);
3. plug the point estimates into the Travel Agency model;
4. propagate the measurement uncertainty to the user-perceived
   availability, yielding a credible interval instead of a bare number.

Run:  python examples/measured_suppliers.py
"""

import numpy as np

from repro.measurement import ProbeLog, propagate_uncertainty
from repro.reporting import format_table
from repro.ta import CLASS_B, TAParameters, TravelAgencyModel


def synthesize_probe_log(rng, mttf, mttr, horizon, probe_interval):
    """A probe log for a service alternating with the given means."""
    clock, state = 0.0, True
    changes = []
    while clock < horizon:
        clock += rng.exponential(mttf if state else mttr)
        changes.append((clock, state))
        state = not state
    times = np.arange(0.0, horizon, probe_interval)
    states, idx, current = [], 0, True
    for t in times:
        while idx < len(changes) and changes[idx][0] <= t:
            current = not changes[idx][1]
            idx += 1
        states.append(current)
    return ProbeLog(times, states)


def main() -> None:
    rng = np.random.default_rng(7)

    # --- 1-2. Monitor the suppliers and fit models -------------------
    print("Fitting supplier models from synthetic probe logs "
          "(90 days, 5-min probes):")
    horizon = 90 * 24.0  # hours
    truth = {"reservation systems": (45.0, 5.0), "payment system": (45.0, 5.0)}
    fits = {}
    rows = []
    for name, (mttf, mttr) in truth.items():
        log = synthesize_probe_log(rng, mttf, mttr, horizon, probe_interval=1 / 12)
        fit = log.fit()
        fits[name] = fit
        low, high = fit.availability_interval
        rows.append([
            name,
            f"{mttf / (mttf + mttr):.4f}",
            f"{fit.model.availability:.4f}",
            f"[{low:.4f}, {high:.4f}]",
            len(log),
        ])
    print(format_table(
        ["supplier", "true A", "fitted A", "95% CI", "probes"], rows,
    ))

    # --- 3. Point-estimate TA model -----------------------------------
    reservation_fit = fits["reservation systems"]
    payment_fit = fits["payment system"]
    params = TAParameters(
        reservation_availability=reservation_fit.model.availability,
        payment_availability=payment_fit.model.availability,
    )
    ta = TravelAgencyModel(params)
    point = ta.user_availability(CLASS_B).availability
    print(f"\nPoint estimate, A(class B users) = {point:.5f}")

    # --- 4. Propagate the measurement uncertainty ---------------------
    def model(draw):
        sampled = TAParameters(
            reservation_availability=min(draw["reservation"], 0.9999),
            payment_availability=min(draw["payment"], 0.9999),
        )
        return TravelAgencyModel(sampled).user_availability(
            CLASS_B
        ).availability

    def interval_sampler(fit):
        low, high = fit.availability_interval
        return lambda g: g.uniform(low, high)

    result = propagate_uncertainty(
        model,
        {
            "reservation": interval_sampler(reservation_fit),
            "payment": interval_sampler(payment_fit),
        },
        rng,
        draws=300,
    )
    low, high = result.interval
    print(f"With measurement uncertainty:   {result.mean:.5f} "
          f"(95% interval [{low:.5f}, {high:.5f}])")
    print(f"Error bar on yearly downtime:   "
          f"+/- {result.half_width * 8760:.1f} hours")
    print("\nThe supplier measurements, not the internal architecture, set")
    print("the error bar on the user-perceived availability here — exactly")
    print("why the paper treats external services as measured black boxes.")


if __name__ == "__main__":
    main()
