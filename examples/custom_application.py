"""Modeling a different application: an online brokerage.

The hierarchical framework is not TA-specific.  This example models a
stock-trading site from scratch — its own functions (quote, portfolio,
trade), interaction diagrams, a redundant matching-engine service, an
external market-data feed — and evaluates two user populations
(occasional checkers vs day traders), demonstrating every public API a
new application needs.

Run:  python examples/custom_application.py
"""

from repro.availability import TwoStateAvailability, WebServiceModel
from repro.core import HierarchicalModel, InteractionDiagram
from repro.profiles import UserClass
from repro.rbd import k_of_n, parallel, series
from repro.reporting import format_downtime, format_table
from repro.ta.economics import RevenueModel


def build_brokerage() -> HierarchicalModel:
    model = HierarchicalModel()

    # ------------------------------------------------------------------
    # Resource level
    # ------------------------------------------------------------------
    model.add_resource("internet-link", 0.9995)
    model.add_resource("lan-segment", 0.9998)
    # Front-end farm: composite performance + availability model.
    model.add_resource("web-farm", WebServiceModel(
        servers=6, arrival_rate=800.0, service_rate=200.0,
        buffer_capacity=40, failure_rate=5e-4, repair_rate=2.0,
        coverage=0.99, reconfiguration_rate=20.0,
    ))
    # Matching engine: 2-of-3 quorum of replicas.
    for i in (1, 2, 3):
        model.add_resource(
            f"engine-{i}",
            TwoStateAvailability(failure_rate=2e-4, repair_rate=0.5),
        )
    # Account database: primary/standby pair with mirrored disks.
    for i in (1, 2):
        model.add_resource(f"db-host-{i}", 0.998)
        model.add_resource(f"db-disk-{i}", 0.995)
    # External market-data vendors: either of two feeds suffices.
    model.add_resource("feed-bloomberg", 0.995)
    model.add_resource("feed-refinitiv", 0.993)
    # Clearing house: single external black box.
    model.add_resource("clearing-house", 0.9990)

    # ------------------------------------------------------------------
    # Service level
    # ------------------------------------------------------------------
    model.add_service("net", "internet-link")
    model.add_service("lan", "lan-segment")
    model.add_service("web", "web-farm")
    model.add_service("matching", k_of_n(2, ["engine-1", "engine-2", "engine-3"]))
    model.add_service("accounts", series(
        parallel("db-host-1", "db-host-2"),
        parallel("db-disk-1", "db-disk-2"),
    ))
    model.add_service("market-data", parallel("feed-bloomberg", "feed-refinitiv"))
    model.add_service("clearing", "clearing-house")

    # ------------------------------------------------------------------
    # Function level
    # ------------------------------------------------------------------
    # Quote: usually served from cache; 30% of requests hit market data.
    quote = InteractionDiagram("quote")
    quote.add_node("cache-hit", services=["web"])
    quote.add_node("feed-lookup", services=["web", "market-data"])
    quote.add_edge("Begin", "cache-hit", 0.7)
    quote.add_edge("Begin", "feed-lookup", 0.3)
    quote.add_edge("cache-hit", "End")
    quote.add_edge("feed-lookup", "End")
    model.add_function("quote", diagram=quote)

    model.add_function("portfolio", services=["web", "accounts"])
    model.add_function(
        "trade",
        services=["web", "accounts", "matching", "market-data", "clearing"],
    )

    model.require_everywhere(["net", "lan"])
    return model


CHECKERS = UserClass.from_probabilities("occasional checkers", {
    frozenset({"quote"}): 0.55,
    frozenset({"quote", "portfolio"}): 0.35,
    frozenset({"quote", "portfolio", "trade"}): 0.10,
})

DAY_TRADERS = UserClass.from_probabilities("day traders", {
    frozenset({"quote"}): 0.10,
    frozenset({"quote", "portfolio"}): 0.15,
    frozenset({"quote", "trade"}): 0.30,
    frozenset({"quote", "portfolio", "trade"}): 0.45,
})


def main() -> None:
    model = build_brokerage()

    print("=== Function availabilities ===")
    print(format_table(
        ["function", "availability", "downtime"],
        [
            [name, f"{model.function_availability(name):.6f}",
             format_downtime(model.function_availability(name))]
            for name in model.functions
        ],
    ))

    print()
    print("=== User-perceived availability by population ===")
    rows = []
    for users in (CHECKERS, DAY_TRADERS):
        result = model.user_availability(users)
        rows.append([
            users.name,
            f"{result.availability:.6f}",
            format_downtime(result.availability),
        ])
    print(format_table(["population", "A(user)", "downtime"], rows))

    print()
    print("=== Business impact (trade sessions lost) ===")
    revenue = RevenueModel(session_rate=250.0, average_revenue=12.0)
    for users in (CHECKERS, DAY_TRADERS):
        estimate = revenue.estimate(
            model.user_availability(users), pay_function="trade"
        )
        print(
            f"  {users.name:22s}: "
            f"{estimate.lost_payment_sessions_per_year:,.0f} lost trades/yr "
            f"(${estimate.lost_revenue_per_year:,.0f})"
        )

    print()
    print("=== What to fix first (service importance, day traders) ===")
    importance = model.service_importance(DAY_TRADERS)
    for name, value in sorted(importance.items(), key=lambda kv: -kv[1]):
        print(f"  {name:12s} {value:.4f}")


if __name__ == "__main__":
    main()
