"""Architecture comparison: basic (Fig. 7) vs redundant (Fig. 8).

Quantifies the paper's architectural argument: where does each
architecture lose availability, which components are worth improving
(importance ranking), and what each parameter is worth (tornado).

Run:  python examples/architecture_comparison.py
"""

from repro.reporting import format_downtime, format_table
from repro.sensitivity import tornado
from repro.ta import CLASS_B, TAParameters, TravelAgencyModel


def main() -> None:
    basic = TravelAgencyModel(architecture="basic")
    redundant = TravelAgencyModel(architecture="redundant")

    print("=== User-perceived availability (class B buyers) ===")
    rows = []
    for model in (basic, redundant):
        result = model.user_availability(CLASS_B)
        rows.append([
            model.architecture,
            f"{result.availability:.5f}",
            format_downtime(result.availability),
        ])
    print(format_table(["architecture", "A(user)", "downtime"], rows))

    print()
    print("=== Where the basic architecture bleeds: service comparison ===")
    basic_services = basic.service_availabilities()
    redundant_services = redundant.service_availabilities()
    rows = []
    for name in sorted(basic_services):
        gain = redundant_services[name] - basic_services[name]
        rows.append([
            name,
            f"{basic_services[name]:.6f}",
            f"{redundant_services[name]:.6f}",
            f"{gain:+.6f}",
        ])
    print(format_table(["service", "basic", "redundant", "gain"], rows))

    print()
    print("=== Which services dominate user availability (Birnbaum) ===")
    importance = redundant.service_importance(CLASS_B)
    print(format_table(
        ["service", "dA(user)/dA(service)"],
        [
            [name, f"{value:.4f}"]
            for name, value in sorted(
                importance.items(), key=lambda kv: -kv[1]
            )
        ],
    ))
    print("(net, LAN and web are first-order: every scenario needs them —")
    print(" exactly the observation below eq. (10) in the paper.)")

    print()
    print("=== Tornado: +/-0.2% on each availability parameter ===")

    def user_availability(params):
        model = TravelAgencyModel(TAParameters(
            internet_availability=params["net"],
            lan_availability=params["lan"],
            application_host_availability=params["app host"],
            database_host_availability=params["db host"],
            disk_availability=params["disk"],
            payment_availability=params["payment"],
            reservation_availability=params["reservation"],
        ))
        return model.user_availability(CLASS_B).availability

    base = {
        "net": 0.9966, "lan": 0.9966, "app host": 0.996,
        "db host": 0.996, "disk": 0.9, "payment": 0.9, "reservation": 0.9,
    }
    bounds = {
        name: (value - 0.002, min(value + 0.002, 1.0))
        for name, value in base.items()
    }
    entries = tornado(user_availability, base, bounds)
    print(format_table(
        ["parameter", "swing", "low", "high"],
        [
            [e.parameter, f"{e.swing:.2e}",
             f"{e.low_output:.5f}", f"{e.high_output:.5f}"]
            for e in entries
        ],
    ))


if __name__ == "__main__":
    main()
