"""Validating the analytic stack by discrete-event simulation.

Every analytic layer of the library has a Monte-Carlo counterpart; this
example runs all three side by side:

1. M/M/c/K blocking probability (paper eq. 3) vs an event-driven queue;
2. the Fig. 10 coverage-farm steady state vs a trajectory simulation;
3. the user-perceived availability (eq. 10) vs sampled sessions with
   Bernoulli service states.

Run:  python examples/simulation_validation.py
"""

import numpy as np

from repro.availability import ImperfectCoverageFarm
from repro.queueing import mmck_blocking_probability
from repro.reporting import format_table
from repro.sim import (
    QueueSimulation,
    SessionSimulation,
    estimate_user_availability,
    simulate_ctmc_occupancy,
)
from repro.profiles import OperationalProfile
from repro.ta import CLASS_B, TravelAgencyModel


def main() -> None:
    rng = np.random.default_rng(2003)

    print("=== 1. Queue blocking: simulation vs eq. (3) ===")
    rows = []
    for servers in (1, 2, 4):
        sim = QueueSimulation(
            arrival_rate=100.0, service_rate=100.0,
            servers=servers, capacity=10, rng=rng,
        ).run(num_arrivals=150_000)
        exact = mmck_blocking_probability(1.0, servers, 10)
        rows.append([servers, f"{sim.blocking_probability:.6f}", f"{exact:.6f}"])
    print(format_table(["servers", "simulated pK", "analytic pK"], rows))

    print()
    print("=== 2. Coverage farm occupancy: trajectory vs eqs. (6-8) ===")
    farm = ImperfectCoverageFarm(
        servers=4, failure_rate=0.05, repair_rate=1.0,
        coverage=0.95, reconfiguration_rate=10.0,
    )
    occupancy = simulate_ctmc_occupancy(farm.to_ctmc(), 4, 200_000.0, rng)
    operational, down = farm.state_probabilities()
    rows = [
        [f"{i} servers up", f"{occupancy[i]:.5f}", f"{operational[i]:.5f}"]
        for i in sorted(operational, reverse=True)
    ]
    rows.append([
        "manual reconfig (any y_i)",
        f"{sum(occupancy[('y', i)] for i in down):.5f}",
        f"{sum(down.values()):.5f}",
    ])
    print(format_table(["state", "simulated", "closed form"], rows))

    print()
    print("=== 3. Scenario mix: sampled sessions vs exact distribution ===")
    profile = OperationalProfile({
        ("Start", "home"): 0.6, ("Start", "browse"): 0.4,
        ("home", "browse"): 0.2, ("home", "search"): 0.3,
        ("home", "Exit"): 0.5,
        ("browse", "home"): 0.1, ("browse", "search"): 0.4,
        ("browse", "Exit"): 0.5,
        ("search", "book"): 0.3, ("search", "Exit"): 0.7,
        ("book", "search"): 0.2, ("book", "pay"): 0.4, ("book", "Exit"): 0.4,
        ("pay", "Exit"): 1.0,
    })
    exact = profile.scenario_distribution()
    empirical = SessionSimulation(profile, rng).empirical_scenario_distribution(
        25_000
    )
    print(f"  scenarios: {len(exact)} exact, {len(empirical)} observed")
    print(f"  total-variation distance: "
          f"{exact.total_variation_distance(empirical):.4f}")

    print()
    print("=== 4. User availability: Monte Carlo vs eq. (10) ===")
    ta = TravelAgencyModel()
    exact_value = ta.user_availability(CLASS_B).availability
    estimate = estimate_user_availability(
        ta.hierarchical_model, CLASS_B, sessions=50_000, rng=rng
    )
    print(f"  analytic (eq. 10): {exact_value:.5f}")
    print(f"  Monte Carlo:       {estimate:.5f}")
    print(f"  difference:        {abs(exact_value - estimate):.5f} "
          "(binomial noise at n = 50k is ~0.0007)")


if __name__ == "__main__":
    main()
