"""Latency SLOs: the paper's future-work extension in action.

The paper's conclusion proposes counting a request as failed when "the
response time exceeds an acceptable threshold".  This example explores
that extended measure on the TA's web farm:

* the exact response-time distribution of an M/M/c/K farm (closed-form,
  no simulation);
* how availability degrades as the SLO tightens;
* how an SLO changes the optimal number of servers;
* percentile latencies (p50/p95/p99) per number of operational servers.

Run:  python examples/latency_slo.py
"""

from repro.availability import WebServiceModel
from repro.queueing import (
    MMCKQueue,
    response_time_quantile,
    response_time_survival,
)
from repro.reporting import format_series, format_table


def farm(servers, arrival_rate=100.0):
    return WebServiceModel(
        servers=servers,
        arrival_rate=arrival_rate,
        service_rate=100.0,
        buffer_capacity=10,
        failure_rate=1e-3,
        repair_rate=1.0,
        coverage=0.98,
        reconfiguration_rate=12.0,
    )


def main() -> None:
    print("=== Percentile latencies by operational servers "
          "(alpha = 100/s, nu = 100/s, K = 10) ===")
    rows = []
    for servers in (1, 2, 3, 4):
        queue = MMCKQueue(
            arrival_rate=100.0, service_rate=100.0,
            servers=servers, capacity=10,
        )
        rows.append([
            servers,
            f"{response_time_quantile(queue, 0.50) * 1000:.1f}",
            f"{response_time_quantile(queue, 0.95) * 1000:.1f}",
            f"{response_time_quantile(queue, 0.99) * 1000:.1f}",
        ])
    print(format_table(
        ["servers up", "p50 (ms)", "p95 (ms)", "p99 (ms)"], rows,
    ))
    print("Degraded states are not just lossier — they are *slower*: the")
    print("farm at 1 server serves a request in 70+ ms at the median.\n")

    print("=== Availability vs SLO deadline (NW = 4 farm) ===")
    model = farm(4)
    deadlines = (0.01, 0.02, 0.03, 0.05, 0.1, 0.3)
    values = [model.deadline_availability(d) for d in deadlines]
    print(format_series(
        "deadline (s)", deadlines,
        {"A_d": values},
        value_format="{:.6f}",
    ))
    print(f"(without an SLO the same farm scores {model.availability():.6f})\n")

    print("=== Optimal farm size with and without a 20 ms SLO ===")
    servers = range(1, 9)
    plain = {n: 1.0 - farm(n).availability() for n in servers}
    slo = {n: 1.0 - farm(n).deadline_availability(0.02) for n in servers}
    rows = [
        [n, f"{plain[n]:.3e}", f"{slo[n]:.3e}"] for n in servers
    ]
    print(format_table(["NW", "1 - A (plain)", "1 - A_d (20 ms SLO)"], rows))
    best_plain = min(plain, key=plain.get)
    best_slo = min(slo, key=slo.get)
    print(f"\nplain optimum: NW = {best_plain};  SLO optimum: NW = {best_slo}")
    print("Under a latency SLO the Fig. 12 reversal weakens: queueing delay")
    print("punishes small farms, so the optimum moves to more servers.")

    print()
    print("=== Tail check: P(T > t) for the 2-server farm ===")
    queue = MMCKQueue(arrival_rate=100.0, service_rate=100.0, servers=2,
                      capacity=10)
    ts = (0.01, 0.02, 0.05, 0.1)
    print(format_series(
        "t (s)", ts,
        {"P(T > t)": [response_time_survival(queue, t) for t in ts]},
        value_format="{:.5f}",
    ))


if __name__ == "__main__":
    main()
