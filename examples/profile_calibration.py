"""Recovering an operational profile from observed scenario frequencies.

Web logs typically tell you *which functions* each session touched, not
the click-level transition probabilities p_ij of the Fig. 2 graph.  This
example runs the inverse pipeline:

1. take the paper's published Table 1 scenario mixes (classes A and B);
2. fit the transition probabilities of a Fig. 2-shaped graph to each mix;
3. inspect what the fitted graphs say about user behaviour (expected
   session length, activation probabilities, where the two classes
   differ).

Run:  python examples/profile_calibration.py
"""

from repro.profiles import calibrate_profile
from repro.reporting import format_table
from repro.ta import CLASS_A, CLASS_B, TA_PROFILE_EDGES
from repro.ta.userclasses import FUNCTIONS


def main() -> None:
    fitted = {}
    for users in (CLASS_A, CLASS_B):
        print(f"Calibrating a Fig. 2 graph against {users.name}'s "
              "scenario mix ...")
        result = calibrate_profile(
            TA_PROFILE_EDGES, users.distribution, max_evaluations=400
        )
        fitted[users.name] = result
        print(f"  total-variation distance of fit: "
              f"{result.total_variation_distance:.4f} "
              f"({result.iterations} objective evaluations)")

    print()
    print("=== Fitted transition probabilities ===")
    profile_a = fitted["class A"].profile
    profile_b = fitted["class B"].profile
    rows = []
    for (src, dst) in TA_PROFILE_EDGES:
        rows.append([
            f"{src} -> {dst}",
            f"{profile_a.probability(src, dst):.3f}",
            f"{profile_b.probability(src, dst):.3f}",
        ])
    print(format_table(["transition", "class A", "class B"], rows))

    print()
    print("=== What the graphs say about behaviour ===")
    rows = []
    for function in FUNCTIONS:
        rows.append([
            f"P(visit {function})",
            f"{profile_a.activation_probability(function):.3f}",
            f"{profile_b.activation_probability(function):.3f}",
        ])
    rows.append([
        "E[functions per session]",
        f"{profile_a.expected_session_length():.2f}",
        f"{profile_b.expected_session_length():.2f}",
    ])
    print(format_table(["statistic", "class A", "class B"], rows))

    print()
    print("Class B's fitted graph funnels sessions toward Search/Book/Pay")
    print("(higher search and book probabilities), matching the paper's")
    print("description of class B as buyers rather than browsers.")


if __name__ == "__main__":
    main()
