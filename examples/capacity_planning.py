"""Capacity planning: how many web servers does an availability budget need?

Reproduces the design-decision workflow of Section 5.1: sweep the number
of web servers under different failure rates and loads, find the
smallest farm meeting a yearly downtime budget, and show why imperfect
coverage makes "just add servers" a trap.

Run:  python examples/capacity_planning.py
"""

from repro.availability import WebServiceModel
from repro.reporting import DowntimeBudget, format_series, format_table
from repro.sensitivity import sweep


def farm_unavailability(servers, failure_rate, arrival_rate, coverage):
    return WebServiceModel(
        servers=int(servers),
        arrival_rate=arrival_rate,
        service_rate=100.0,
        buffer_capacity=10,
        failure_rate=failure_rate,
        repair_rate=1.0,
        coverage=coverage,
        reconfiguration_rate=None if coverage >= 1.0 else 12.0,
    ).unavailability()


def smallest_farm(budget, failure_rate, arrival_rate, coverage):
    result = sweep(
        lambda nw: farm_unavailability(nw, failure_rate, arrival_rate, coverage),
        "NW",
        range(1, 11),
    )
    try:
        value, _ = result.first_crossing(
            1.0 - budget.required_availability, above=False
        )
        return int(value)
    except Exception:
        return None


def main() -> None:
    budget = DowntimeBudget(minutes_per_year=5.0)
    print(f"Budget: {budget.minutes_per_year} min/year "
          f"(availability >= {budget.required_availability:.7f})\n")

    rows = []
    for failure_rate in (1e-2, 1e-3, 1e-4):
        for arrival_rate in (50.0, 100.0):
            needed = smallest_farm(budget, failure_rate, arrival_rate, 0.98)
            rows.append([
                f"{failure_rate:g}",
                f"{arrival_rate:g}",
                needed if needed is not None else "not achievable",
            ])
    print(format_table(
        ["failure rate (1/h)", "arrival rate (1/s)", "servers needed"],
        rows,
        title="Smallest farm meeting 5 min/year (coverage c = 0.98)",
    ))

    print()
    print("Why you cannot buy availability with servers alone when")
    print("coverage is imperfect (lambda = 1e-3/h, alpha = 100/s):")
    servers = tuple(range(1, 11))
    imperfect = [farm_unavailability(n, 1e-3, 100.0, 0.98) for n in servers]
    perfect = [farm_unavailability(n, 1e-3, 100.0, 1.0) for n in servers]
    print(format_series(
        "NW", servers,
        {"c = 0.98": imperfect, "perfect coverage": perfect},
        log_bars=True, floor_exponent=-12,
    ))
    best = servers[imperfect.index(min(imperfect))]
    print(f"\nWith c = 0.98 the optimum is NW = {best}; beyond that, every "
          "extra server adds more uncovered-failure exposure than capacity.")


if __name__ == "__main__":
    main()
