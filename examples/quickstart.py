"""Quickstart: evaluate the paper's Travel Agency in a dozen lines.

Builds the redundant-architecture TA with the paper's Table 7
parameters, then walks down the hierarchy: user-perceived availability
for both user classes, function availabilities, service availabilities.

Run:  python examples/quickstart.py
"""

from repro.reporting import format_downtime, format_table
from repro.ta import CLASS_A, CLASS_B, TravelAgencyModel


def main() -> None:
    ta = TravelAgencyModel()  # Table 7 defaults, redundant architecture

    print("=== User level (the headline measure) ===")
    rows = []
    for users in (CLASS_A, CLASS_B):
        result = ta.user_availability(users)
        rows.append([
            users.name,
            f"{result.availability:.5f}",
            format_downtime(result.availability),
            f"{users.buying_intent() * 100:.1f}%",
        ])
    print(format_table(
        ["user class", "availability", "downtime", "sessions reaching Pay"],
        rows,
    ))

    print()
    print("=== Function level (Table 6) ===")
    functions = ta.function_availabilities()
    print(format_table(
        ["function", "availability", "downtime"],
        [
            [name, f"{value:.6f}", format_downtime(value)]
            for name, value in sorted(functions.items(), key=lambda kv: -kv[1])
        ],
    ))

    print()
    print("=== Service level ===")
    services = ta.service_availabilities()
    print(format_table(
        ["service", "availability"],
        [
            [name, f"{value:.9f}"]
            for name, value in sorted(services.items(), key=lambda kv: -kv[1])
        ],
    ))

    print()
    print("The web service combines server failures AND buffer overflows:")
    breakdown = ta.hierarchical_model  # noqa: F841  (drill down below)
    from repro.ta.architecture import web_service_model

    model = web_service_model(ta.params, ta.architecture)
    loss = model.loss_breakdown()
    print(f"  buffer-full loss:        {loss.buffer_full:.3e}")
    print(f"  all servers down:        {loss.all_servers_down:.3e}")
    print(f"  manual reconfiguration:  {loss.manual_reconfiguration:.3e}")
    print(f"  => A(Web service) = {loss.availability:.9f} "
          "(paper: 0.999995587)")


if __name__ == "__main__":
    main()
