"""Which client-side resilience policy maximizes availability?

The paper's users submit once (or naively retry).  Modern clients run
richer policies — circuit breakers, request timeouts, hedged requests —
and each trades availability differently as the farm degrades.  This
example puts the four policies of :mod:`repro.resilience.policies` on
the paper's four-server web farm and asks the question the paper never
could: *which client policy maximizes user-perceived availability under
farm faults?*

Three observations worth the run:

* a persistent retry dominates when per-attempt availability stays
  high — re-drawing attempts hides blocking almost completely;
* a circuit breaker tracks the per-attempt availability closely when
  healthy but pays a protection cost exactly when attempts start
  failing — the price of shedding load off a struggling farm;
* hedging is great on a provisioned farm and *catastrophic* on a
  saturated one: its duplicate requests feed back into the queue they
  are trying to outrun.

Run:  python examples/policy_comparison.py
"""

from repro.queueing import MMCKQueue
from repro.resilience import (
    CircuitBreakerPolicy,
    FarmFaultScenario,
    HedgePolicy,
    RetryPolicy,
    TimeoutPolicy,
    compare_client_policies,
    format_policy_comparison,
    request_policy_availability,
)


def main() -> None:
    policies = [
        RetryPolicy(max_retries=3),
        CircuitBreakerPolicy(failure_threshold=3, reset_timeout=30.0),
        TimeoutPolicy(0.05),
        HedgePolicy(0.05, 0.02),
    ]
    scenarios = [
        FarmFaultScenario("nominal", servers_up=4, weight=0.70),
        FarmFaultScenario("surge", servers_up=4, arrival_factor=1.5,
                          weight=0.15),
        FarmFaultScenario("degraded", servers_up=2,
                          service_availability=0.95, weight=0.10),
        FarmFaultScenario("critical", servers_up=1,
                          service_availability=0.90, weight=0.05),
    ]
    report = compare_client_policies(
        policies, scenarios,
        arrival_rate=100.0, service_rate=100.0, capacity=10,
    )
    print("Client policies on the paper's 4-server farm")
    print("=" * 44)
    print()
    print(format_policy_comparison(report))
    print()
    best = report.best
    print(f"Best policy: {best.policy} "
          f"(weighted mean availability {best.mean_availability:.9g})")

    # The hedge feedback effect, isolated: the same hedge policy on a
    # provisioned farm vs a saturated single server.
    print()
    print("Hedge load feedback")
    print("-" * 19)
    for label, queue in [
        ("provisioned (4 servers)", MMCKQueue(
            arrival_rate=100.0, service_rate=100.0, servers=4, capacity=10)),
        ("saturated (1 server)", MMCKQueue(
            arrival_rate=100.0, service_rate=100.0, servers=1, capacity=10)),
    ]:
        timeout = request_policy_availability(queue, TimeoutPolicy(0.05))
        hedge = request_policy_availability(queue, HedgePolicy(0.05, 0.02))
        gain = hedge.availability - timeout.availability
        print(
            f"{label}: timeout {timeout.availability:.6f}, "
            f"hedge {hedge.availability:.6f} "
            f"({'+' if gain >= 0 else ''}{gain:.6f}; effective rate "
            f"{hedge.effective_arrival_rate:.1f}/s from "
            f"{queue.arrival_rate:.0f}/s)"
        )


if __name__ == "__main__":
    main()
