"""Availability-as-a-service: drive the server, then read its self-model.

The paper models a web farm users hit over HTTP; ``repro.server`` turns
the evaluator into one.  This example boots the server in-process on an
ephemeral port and shows the whole loop:

* a Fig. 11 sweep submitted over HTTP returns **byte-identical** text
  to the offline ``repro sweep`` CLI — the server changes no answer;
* probe jobs saturate the admission queue (c slots, capacity K), so
  some are rejected with 503 — the paper's *performance failure*;
* ``GET /v1/self`` then evaluates the server's **own** M/M/c/K model
  from its measured arrival and service rates and cross-checks the
  predicted blocking probability against the observed 503 ratio: the
  evaluator evaluates itself.

Run:  python examples/server_client.py
"""

import contextlib
import io
import time

import numpy as np

from repro.cli import main as repro_main
from repro.server import ServerClient, ServerThread


def offline_stdout(argv):
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = repro_main(argv)
    assert code == 0
    return buffer.getvalue()


def main() -> None:
    rng = np.random.default_rng(2003)
    with ServerThread(slots=2, queue_limit=4) as handle:
        client = ServerClient(port=handle.port)
        print(f"=== repro server on port {handle.port} "
              "(c=2 slots, K=4 capacity) ===\n")

        # 1. A sweep over HTTP is byte-identical to the offline CLI.
        text = client.sweep_text(figure="11", arrival_rate=60.0,
                                 servers_max=4)
        offline = offline_stdout(["sweep", "--figure", "11",
                                  "--arrival-rate", "60",
                                  "--servers-max", "4"])
        assert text + "\n" == offline
        print(text)
        print("\nHTTP result is byte-identical to `repro sweep` stdout.\n")

        # 2. Saturate the admission queue with Poisson probe traffic.
        arrivals, rejected = 120, 0
        for gap in rng.exponential(0.02, size=arrivals):
            document = client.submit(
                "probe",
                {"hold": float(min(rng.exponential(0.08), 0.5))},
                raise_for_reject=False,
            )
            rejected += bool(document.get("rejected"))
            time.sleep(gap)
        while client.self_report()["observed"]["in_system"]:
            time.sleep(0.05)

        # 3. The server models itself as the paper's M/M/c/K queue.
        report = client.self_report()
        check = report["cross_check"]
        print(f"probe traffic: {arrivals} arrivals, {rejected} rejected "
              f"with 503 ({rejected / arrivals:.1%})")
        print(f"measured rates: lambda = "
              f"{report['measured']['arrival_rate']:.1f}/s, "
              f"mu = {report['measured']['service_rate']:.1f}/s per slot")
        print(f"self-model blocking (eq. 3 on c=2, K=4): "
              f"{check['predicted_blocking']:.4f}")
        low, high = check["rejection_ci"]
        print(f"observed 503 ratio: {check['observed_rejection_ratio']:.4f} "
              f"(95% Wilson CI [{low:.4f}, {high:.4f}])")
        print(f"prediction within the interval: {check['within_ci']}")
        print("\nThe evaluator evaluates itself: the live admission queue "
              "agrees with\nthe same M/M/c/K kernel that reproduces the "
              "paper's blocking curves.")


if __name__ == "__main__":
    main()
