"""The Travel Agency on a multi-zone cloud: common cause changes the math.

The paper's series/parallel hierarchy multiplies marginals, which is
exact only while components fail independently.  On a cloud deployment
they do not: two database replicas in the same availability zone both
go down when the zone does.  This example rebuilds the Travel Agency on
a three-zone deployment with the Bayesian-network models of
:mod:`repro.bayes` and shows three things the 2003 model cannot:

* the *joint* availability of a function's service chain differs from
  the product of the services' marginals (shared zones correlate them);
* conditioning is free: "what does a user see while zone 1 is dark?"
  is one evidence query, not a new model;
* placement is a first-class decision — packing the database into one
  zone versus spreading it across three moves user-perceived
  availability even though every marginal parameter stays the same.

Run:  python examples/cloud_availability.py
"""

from repro.bayes import (
    CLOUD_CHAINS,
    CloudDeployment,
    CloudModelBuilder,
    CloudTravelAgency,
    chain_user_availability,
)
from repro.ta import CLASS_A, CLASS_B
from repro.ta.userclasses import BROWSE


def downtime(availability: float) -> str:
    return f"{(1.0 - availability) * 8760.0:.1f} h/year"


def main() -> None:
    print("The Travel Agency on a three-zone cloud")
    print("=" * 39)

    agency = CloudTravelAgency(CloudDeployment())
    network = agency.network

    # 1. Chains are joint queries, not marginal products.  Use shaky
    # zones so the common-cause correlation is visible to the eye.
    shaky = CloudTravelAgency(
        CloudDeployment(zone_availability=0.97)
    ).network
    browse = CLOUD_CHAINS[BROWSE]
    joint = shaky.probability_all_up(browse.services)
    product = 1.0
    for service in browse.services:
        product *= shaky.marginal(service)
    print()
    print(f"browse chain {browse.services} at zone availability 0.97:")
    print(f"  joint (exact inference)   {joint:.7f}")
    print(f"  product of marginals      {product:.7f}")
    print("  the shared zones make the chain *better* than independence")
    print("  predicts: services fail together, not separately.")

    # 2. User-perceived availability per Table 1 class.
    print()
    for user_class in (CLASS_A, CLASS_B):
        result = chain_user_availability(network, CLOUD_CHAINS, user_class)
        print(
            f"A({result.user_class}) = {result.availability:.7f}"
            f"  ({downtime(result.availability)})"
        )

    # 3. A zonal outage, as an evidence query on the same model.
    dark = {"zone-1": False}
    degraded = network.marginal("web", evidence=dark)
    print()
    print("with zone-1 dark (common-cause failure):")
    print(f"  web farm availability  {network.marginal('web'):.7f} -> "
          f"{degraded:.7f}")
    print(f"  db quorum availability {network.marginal('db'):.7f} -> "
          f"{network.marginal('db', evidence=dark):.7f}")

    # 4. Same parameters, different placement: packed vs spread quorum.
    spread = CloudTravelAgency(CloudDeployment()).db_availability()
    packed_builder = CloudModelBuilder()
    zones = [packed_builder.add_zone(f"zone-{i + 1}", 0.9995)
             for i in range(3)]
    packed_builder.add_replica_set(
        "db", [zones[0]] * 3, quorum=2, replica_availability=0.9999
    )
    packed = packed_builder.build().marginal("db")
    print()
    print("database 2-of-3 quorum, identical replicas and zones:")
    print(f"  spread over three zones  {spread:.7f}")
    print(f"  packed into one zone     {packed:.7f}")
    print("  placement alone decides the quorum's fate.")


if __name__ == "__main__":
    main()
