"""The whole Travel Agency as a JSON file — no Python modeling code.

`examples/travel_agency.json` declares the complete Fig. 8 model:
resources (including the composite web farm), RBD service structures,
interaction diagrams and both Table 1 user classes.  This script loads
it with :func:`repro.spec.load_model` and verifies that the declarative
route reproduces the programmatic `repro.ta` model exactly.

The same file drives the CLI:

    python -m repro evaluate examples/travel_agency.json

Run:  python examples/declarative_model.py
"""

from pathlib import Path

from repro.reporting import format_table
from repro.spec import load_model
from repro.ta import CLASS_A, CLASS_B, TravelAgencyModel

SPEC = Path(__file__).parent / "travel_agency.json"


def main() -> None:
    declared, user_classes = load_model(SPEC)
    programmatic = TravelAgencyModel()

    print(f"Loaded {SPEC.name}: "
          f"{len(declared.resources)} resources, "
          f"{len(declared.services)} services, "
          f"{len(declared.functions)} functions, "
          f"{len(user_classes)} user classes\n")

    rows = []
    for name in declared.functions:
        rows.append([
            name,
            f"{declared.function_availability(name):.9f}",
            f"{programmatic.hierarchical_model.function_availability(name):.9f}",
        ])
    print(format_table(
        ["function", "declarative (JSON)", "programmatic (repro.ta)"],
        rows,
        title="Function availabilities — two routes, same numbers",
    ))

    print()
    rows = []
    for paper_class, declared_class in (
        (CLASS_A, user_classes["class A"]),
        (CLASS_B, user_classes["class B"]),
    ):
        from_json = declared.user_availability(declared_class).availability
        from_code = programmatic.user_availability(paper_class).availability
        rows.append([
            paper_class.name, f"{from_json:.6f}", f"{from_code:.6f}",
            f"{abs(from_json - from_code):.1e}",
        ])
    print(format_table(
        ["user class", "declarative", "programmatic", "|diff|"],
        rows,
        title="User-perceived availability (eq. 10)",
    ))
    print("\nThe JSON route matches the programmatic model to float rounding")
    print("(the JSON stores the three Browse branch products explicitly).")


if __name__ == "__main__":
    main()
