"""Streaming SLO monitoring: burn-rate alerts on a simulated outage.

The paper evaluates user-perceived availability after the fact, from
closed-form models and offline simulation.  An operator of the same
Travel Agency would instead watch it **live**: stream session outcomes
into sliding windows, compare the burn rate against the error budget
implied by the analytic objective (eq. 10), and page when the budget
burns too fast.  This example wires the repo's streaming
``SLOMonitor`` onto a fault-injection campaign:

* the objective is the analytic class-A availability — the monitor's
  error budget is exactly what the paper's model promises;
* a scheduled Internet-link outage at t = 1000 h burns the budget;
* the multi-window (50 h / 500 h) burn-rate alert FIREs during the
  outage and CLEARs after the repair, Google-SRE style;
* a Poisson session sampler adds honest Wilson confidence intervals
  from discrete session counts.

Run:  python examples/slo_monitoring.py
"""

import numpy as np

from repro.obs import PoissonSessionSampler, SLOMonitor, format_slo_report
from repro.resilience import ScheduledOutage, run_campaign
from repro.ta import CLASS_A, TravelAgencyModel


def main() -> None:
    model = TravelAgencyModel().hierarchical_model
    objective = model.user_availability(CLASS_A).availability

    print("=== SLO monitoring of a scheduled Internet-link outage ===")
    print(f"objective (analytic eq. 10, class A): {objective:.9f}\n")

    monitor = SLOMonitor(
        objective=objective,
        windows=(50.0, 500.0),
        burn_threshold=5.0,
        name="class A",
    )
    sampler = PoissonSessionSampler(
        monitor, rate=2.0, rng=np.random.default_rng(7)
    )
    run_campaign(
        model,
        CLASS_A,
        ScheduledOutage(
            frozenset({"internet-link"}), start=1000.0, duration=60.0
        ),
        horizon=2500.0,
        replications=1,
        seed=11,
        observer=sampler,
    )

    print(format_slo_report(
        [monitor.summary()],
        alerts=[(monitor.name, alert) for alert in monitor.alerts],
        title="SLO report — 2500 h, outage at t = 1000 h for 60 h",
    ))
    print()

    fired = [a for a in monitor.alerts if a.kind == "fire"]
    cleared = [a for a in monitor.alerts if a.kind == "clear"]
    if fired:
        print(f"alert fired at t = {fired[0].time:.0f} h — every window's "
              "burn rate crossed the 5x threshold during the outage")
    if cleared:
        print(f"alert cleared at t = {cleared[0].time:.0f} h — the short "
              "window recovered first once the link was repaired")
    print("\nThe alerts bracket the outage to within a window's width, "
          "while the\ncumulative budget row only says '2x over' after "
          "the fact — exactly why\nburn-rate windows, not lifetime "
          "averages, drive paging decisions.")


if __name__ == "__main__":
    main()
