"""Table 5 — web service availability equations (basic / perfect / imperfect).

Evaluates all three Table 5 variants at the paper's Section 5.2
parameters and checks each closed-form path against a numerically solved
CTMC of the same model.
"""

import pytest

from conftest import emit
from repro.availability import WebServiceModel
from repro.reporting import format_downtime, format_table


def model_for(variant):
    common = dict(
        arrival_rate=100.0,
        service_rate=100.0,
        buffer_capacity=10,
        failure_rate=1e-4,
        repair_rate=1.0,
    )
    if variant == "basic":
        return WebServiceModel(servers=1, **common)
    if variant == "redundant-perfect":
        return WebServiceModel(servers=4, **common)
    return WebServiceModel(
        servers=4, coverage=0.98, reconfiguration_rate=12.0, **common
    )


VARIANTS = ("basic", "redundant-perfect", "redundant-imperfect")


def test_table5_web_service_availability(benchmark):
    def compute():
        results = {}
        for variant in VARIANTS:
            model = model_for(variant)
            results[variant] = (
                model.availability(),
                model.reward_model().steady_state_reward(),
            )
        return results

    results = benchmark(compute)

    emit(format_table(
        ["model", "A(Web service)", "via CTMC reward model", "downtime"],
        [
            [variant, f"{closed:.9f}", f"{reward:.9f}",
             format_downtime(closed)]
            for variant, (closed, reward) in results.items()
        ],
        title=(
            "Table 5 — web service availability "
            "(alpha = nu = 100/s, K = 10, lambda = 1e-4/h, mu = 1/h, "
            "c = 0.98, beta = 12/h)"
        ),
    ))

    for closed, reward in results.values():
        assert closed == pytest.approx(reward, abs=1e-12)
    # The paper quotes the imperfect-coverage value in Table 7.
    assert results["redundant-imperfect"][0] == pytest.approx(
        0.999995587, abs=5e-10
    )
    # At full load the basic architecture is dominated by buffer loss.
    assert results["basic"][0] < 0.92
    assert results["redundant-perfect"][0] > results["redundant-imperfect"][0]
