"""Bayesian-network inference speed — the variable-elimination guard.

``repro.bayes`` keeps two inference paths: exact variable elimination
(the production path behind every ``repro cloud`` cell) and full joint
enumeration (:meth:`~repro.bayes.BayesianNetwork.brute_force_probability`,
the independent test oracle).  Elimination only earns its complexity if
it is decisively faster on the networks the subsystem actually builds —
otherwise the oracle could *be* the implementation.

One round evaluates every distinct user-scenario service-set query of
the default three-zone :class:`~repro.bayes.CloudTravelAgency` (the
queries behind one ``repro cloud`` cell), through both paths.  The
guarded statistic is the minimum paired per-round ratio minus one
(:func:`~repro.obs.regression.paired_ratio_overhead`), asserted against
a *negative* threshold: variable elimination must stay at least twice
as fast as enumeration (``inference_overhead <= -0.5``), and ``repro
diff`` gates the committed ``BENCH_bayes.json`` the same way.

Both paths must also agree to 1e-9 on every query — a speed win at the
wrong answer is no win.
"""

import json
import time
from pathlib import Path

from conftest import emit
from repro.bayes import CLOUD_CHAINS, CloudTravelAgency
from repro.obs.regression import time_variants
from repro.reporting import format_table
from repro.ta import CLASS_A, CLASS_B

REPEATS = 7
GUARD_THRESHOLD = -0.5  # elimination must stay >= 2x faster

BASELINE = Path(__file__).parent / "BENCH_bayes.json"


def _scenario_queries(network):
    """The distinct all-up query sets behind one ``repro cloud`` cell."""
    queries = set()
    for user_class in (CLASS_A, CLASS_B):
        for scenario in user_class.scenarios:
            services = set()
            for function in sorted(scenario.functions):
                services.update(CLOUD_CHAINS[function].services)
            queries.add(tuple(sorted(services)))
    for services in queries:
        for service in services:
            network.node(service)
    return sorted(queries)


def test_variable_elimination_outpaces_enumeration(benchmark):
    agency = CloudTravelAgency()
    network = agency.network
    queries = _scenario_queries(network)
    assert len(network.nodes) <= 24  # enumeration stays usable as oracle

    def run_elimination():
        started = time.perf_counter()
        values = [network.probability_all_up(q) for q in queries]
        elapsed = time.perf_counter() - started
        run_elimination.values = values
        return elapsed

    def run_enumeration():
        started = time.perf_counter()
        values = [
            network.brute_force_probability({name: True for name in q})
            for q in queries
        ]
        elapsed = time.perf_counter() - started
        run_enumeration.values = values
        return elapsed

    timing = benchmark.pedantic(
        lambda: time_variants(
            [
                ("enumeration", run_enumeration),
                ("elimination", run_elimination),
            ],
            repeats=REPEATS,
        ),
        rounds=1,
        warmup_rounds=1,
    )

    # Correctness first: the two paths agree on every query.
    for exact, oracle in zip(run_elimination.values, run_enumeration.values):
        assert abs(exact - oracle) <= 1e-9, (exact, oracle)

    enumeration = timing.best["enumeration"]
    elimination = timing.best["elimination"]
    overhead = timing.overhead["elimination"]

    record = {
        "benchmark": "bayes-inference-variable-elimination",
        "nodes": len(network.nodes),
        "queries": len(queries),
        "repeats": REPEATS,
        "seconds": {
            "enumeration": round(enumeration, 6),
            "elimination": round(elimination, 6),
        },
        # Guarded: minimum paired elimination/enumeration ratio minus
        # one.  Negative threshold = a required speedup; breaching
        # -0.5 means elimination fell under 2x faster.
        "inference_overhead": round(overhead, 4),
        "inference_overhead_of_best": round(
            elimination / enumeration - 1.0, 4
        ),
        "guard_threshold": GUARD_THRESHOLD,
        "guarded": ["inference_overhead"],
    }
    out_dir = Path(__file__).parent / "artifacts"
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "BENCH_bayes.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )

    per_query = 1e3 / len(queries)
    emit(format_table(
        ["path", "ms/query", "vs enumeration"],
        [
            ["enumeration", f"{enumeration * per_query:.3f}", "reference"],
            ["elimination", f"{elimination * per_query:.3f}",
             f"{elimination / enumeration - 1.0:+.1%}"],
        ],
        title=(
            f"Exact inference on the {len(network.nodes)}-node cloud "
            f"Travel Agency — {len(queries)} queries, best of {REPEATS}"
        ),
    ))

    if BASELINE.exists():
        baseline = json.loads(BASELINE.read_text())
        assert baseline["benchmark"] == record["benchmark"]
        assert baseline["guard_threshold"] == GUARD_THRESHOLD

    assert overhead <= GUARD_THRESHOLD, (
        f"variable elimination is only {-overhead:.0%} faster than "
        f"enumeration; the subsystem requires at least "
        f"{-GUARD_THRESHOLD:.0%}"
    )
