"""Server throughput — HTTP dispatch cost and the job-pipeline guard.

Boots a real :class:`repro.server.ReproServer` on an ephemeral port and
measures two things a regression would hide in:

* **dispatch** — ``GET /healthz`` round-trips (connect, parse, route,
  respond): the floor every endpoint pays;
* **job pipeline** — a ``hold=0`` probe submitted, queued, run on a
  worker thread, and polled to completion: the full admission → queue
  → ``asyncio.to_thread`` → journal-less finalization path.

The guarded statistic is ``dispatch_overhead``: the minimum paired
per-round ratio of one probe-job completion against one ``/healthz``
round-trip, minus one.  It asserts the job pipeline stays within a
generous multiple of raw dispatch — a runaway (a blocking call on the
event loop, an accidental extra poll interval, a lock on the job
table) shows up as an order-of-magnitude jump, while machine speed
cancels out of the ratio.  Absolute seconds and latency percentiles
are reported for humans, never judged.

Results land in ``benchmarks/artifacts/BENCH_server.json``; the
committed ``benchmarks/BENCH_server.json`` records what a CI runner
measured, and ``repro diff`` gates the pair.
"""

import json
import time
from pathlib import Path

import numpy as np

from conftest import emit
from repro.obs.regression import time_variants
from repro.reporting import format_table
from repro.server import ServerClient, ServerThread

REQUESTS = 150  # dispatch round-trips per timed round
JOBS = 15  # probe jobs per timed round
REPEATS = 5
GUARD_THRESHOLD = 40.0  # job pipeline <= 41x a /healthz round-trip


def _healthz_round(client: ServerClient) -> list:
    """Latencies (seconds) of REQUESTS sequential /healthz round-trips."""
    latencies = []
    for _ in range(REQUESTS):
        started = time.perf_counter()
        client.healthz()
        latencies.append(time.perf_counter() - started)
    return latencies


def _probe_round(client: ServerClient) -> list:
    """Latencies of JOBS submit-to-done probe pipelines."""
    latencies = []
    for _ in range(JOBS):
        started = time.perf_counter()
        job = client.submit_probe(hold=0.0)
        done = client.wait(job["id"], timeout=30.0, poll=0.002)
        latencies.append(time.perf_counter() - started)
        assert done["status"] == "done"
    return latencies


def test_server_dispatch_and_job_pipeline(benchmark):
    with ServerThread(slots=2, queue_limit=64) as handle:
        client = ServerClient(port=handle.port)
        client.healthz()  # warm the import path before timing
        healthz_latencies: list = []
        probe_latencies: list = []

        def healthz_variant():
            latencies = _healthz_round(client)
            healthz_latencies.extend(latencies)
            return sum(latencies) / len(latencies)

        def probe_variant():
            latencies = _probe_round(client)
            probe_latencies.extend(latencies)
            return sum(latencies) / len(latencies)

        # Each round reports the MEAN seconds per operation, so the two
        # variants are directly comparable per-unit despite different
        # batch sizes; rounds are interleaved so drift cancels.
        timing = benchmark.pedantic(
            lambda: time_variants(
                [
                    ("dispatch", healthz_variant),
                    ("job_pipeline", probe_variant),
                ],
                repeats=REPEATS,
            ),
            rounds=1,
            warmup_rounds=1,
        )

    dispatch = timing.best["dispatch"]
    pipeline = timing.best["job_pipeline"]
    overhead = timing.overhead["job_pipeline"]
    healthz_ms = np.asarray(healthz_latencies) * 1e3
    probe_ms = np.asarray(probe_latencies) * 1e3

    record = {
        "benchmark": "server-throughput",
        "requests_per_round": REQUESTS,
        "jobs_per_round": JOBS,
        "repeats": REPEATS,
        "seconds": {
            "dispatch": round(dispatch, 6),
            "job_pipeline": round(pipeline, 6),
        },
        "dispatch_rps": round(1.0 / dispatch, 1),
        "dispatch_p50_ms": round(float(np.percentile(healthz_ms, 50)), 3),
        "dispatch_p95_ms": round(float(np.percentile(healthz_ms, 95)), 3),
        "job_p50_ms": round(float(np.percentile(probe_ms, 50)), 3),
        "job_p95_ms": round(float(np.percentile(probe_ms, 95)), 3),
        # Guarded: minimum paired per-round (pipeline / dispatch) - 1.
        "dispatch_overhead": round(overhead, 4),
        "guard_threshold": GUARD_THRESHOLD,
        "guarded": ["dispatch_overhead"],
    }
    out_dir = Path(__file__).parent / "artifacts"
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "BENCH_server.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )

    emit(format_table(
        ["path", "mean ms", "p50 ms", "p95 ms"],
        [
            ["GET /healthz", f"{dispatch * 1e3:.3f}",
             f"{record['dispatch_p50_ms']:.3f}",
             f"{record['dispatch_p95_ms']:.3f}"],
            ["probe job (submit->done)", f"{pipeline * 1e3:.3f}",
             f"{record['job_p50_ms']:.3f}",
             f"{record['job_p95_ms']:.3f}"],
        ],
        title=(
            f"Server throughput — {record['dispatch_rps']:g} dispatch/s, "
            f"pipeline overhead {overhead:+.1f}x "
            f"(guard {GUARD_THRESHOLD:g}x)"
        ),
    ))

    assert overhead <= GUARD_THRESHOLD, (
        f"job pipeline is {overhead + 1.0:.1f}x a dispatch round-trip "
        f"(budget {GUARD_THRESHOLD + 1.0:g}x)"
    )
