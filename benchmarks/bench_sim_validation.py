"""Simulation-vs-analytic cross-validation bench.

Runs the three Monte-Carlo estimators against their analytic
counterparts at bench-friendly sizes: the queueing blocking probability
(eq. 3), the farm steady state (eqs. 6-8) and the user-perceived
availability (eq. 10).
"""

import numpy as np
import pytest

from conftest import emit
from repro.availability import ImperfectCoverageFarm
from repro.queueing import mmck_blocking_probability
from repro.reporting import format_table
from repro.sim import (
    QueueSimulation,
    estimate_user_availability,
    simulate_ctmc_occupancy,
)
from repro.ta import CLASS_B, TravelAgencyModel


def test_sim_vs_analytic_blocking(benchmark, rng):
    exact = mmck_blocking_probability(1.0, 2, 10)

    result = benchmark.pedantic(
        lambda: QueueSimulation(
            arrival_rate=100.0, service_rate=100.0, servers=2, capacity=10,
            rng=rng,
        ).run(num_arrivals=120_000),
        iterations=1, rounds=1,
    )

    emit(format_table(
        ["quantity", "simulated", "analytic (eq. 3)"],
        [["pK(2)", f"{result.blocking_probability:.5f}", f"{exact:.5f}"]],
        title="Simulation check — M/M/2/10 blocking probability",
    ))
    assert result.blocking_probability == pytest.approx(exact, rel=0.35)


def test_sim_vs_analytic_farm(benchmark, rng):
    farm = ImperfectCoverageFarm(
        servers=3, failure_rate=0.05, repair_rate=1.0,
        coverage=0.9, reconfiguration_rate=5.0,
    )
    operational, _ = farm.state_probabilities()

    occupancy = benchmark.pedantic(
        lambda: simulate_ctmc_occupancy(farm.to_ctmc(), 3, 100_000.0, rng),
        iterations=1, rounds=1,
    )

    emit(format_table(
        ["state", "simulated occupancy", "closed form"],
        [
            [i, f"{occupancy[i]:.5f}", f"{operational[i]:.5f}"]
            for i in sorted(operational)
        ],
        title="Simulation check — Fig. 10 farm occupancy",
    ))
    assert occupancy[3] == pytest.approx(operational[3], abs=0.01)


def test_sim_vs_analytic_user_availability(benchmark, rng):
    ta = TravelAgencyModel()
    exact = ta.user_availability(CLASS_B).availability

    estimate = benchmark.pedantic(
        lambda: estimate_user_availability(
            ta.hierarchical_model, CLASS_B, sessions=25_000, rng=rng
        ),
        iterations=1, rounds=1,
    )

    emit(format_table(
        ["quantity", "Monte Carlo", "eq. (10)"],
        [["A(class B users)", f"{estimate:.5f}", f"{exact:.5f}"]],
        title="Simulation check — user-perceived availability",
    ))
    assert estimate == pytest.approx(exact, abs=0.006)
