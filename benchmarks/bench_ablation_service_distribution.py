"""Ablation — the exponential-service assumption.

The paper's performance model assumes exponential request service times.
Real web-request sizes are more variable.  The Pollaczek-Khinchine
formula (M/G/1) quantifies the sensitivity: mean waiting grows linearly
with the service time's squared coefficient of variation (SCV), so the
exponential assumption (SCV = 1) understates delays for heavy-tailed
workloads and overstates them for near-deterministic ones.
"""

import pytest

from conftest import emit
from repro.queueing import MG1Queue, MM1Queue
from repro.reporting import format_table


def test_ablation_service_time_variability(benchmark):
    lam, mu = 80.0, 100.0
    scvs = (0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 16.0)

    def compute():
        return {scv: MG1Queue(lam, mu, scv).mean_waiting_time() for scv in scvs}

    waits = benchmark(compute)
    exponential = waits[1.0]

    emit(format_table(
        ["service SCV", "mean wait (ms)", "vs exponential"],
        [
            [f"{scv:g}", f"{wait * 1000:.2f}", f"{wait / exponential:.2f}x"]
            for scv, wait in waits.items()
        ],
        title=(
            "Ablation — M/G/1 waiting vs service variability "
            "(rho = 0.8; SCV = 1 is the paper's M/M assumption)"
        ),
    ))

    # P-K: wait is linear in (1 + SCV).
    for scv, wait in waits.items():
        assert wait == pytest.approx(exponential * (1 + scv) / 2.0, rel=1e-9)
    # Sanity: SCV = 1 equals M/M/1.
    assert exponential == pytest.approx(
        MM1Queue(lam, mu).metrics().mean_waiting_time
    )
    # Deterministic service halves the exponential-model delay; a
    # heavy-tailed SCV = 16 workload waits 8.5x longer.
    assert waits[0.0] == pytest.approx(exponential / 2.0)
    assert waits[16.0] / exponential == pytest.approx(8.5)
