"""Table 3 — external service availability (1-of-N black boxes)."""

from conftest import emit
from repro.rbd import parallel, system_availability
from repro.reporting import format_table
from repro.ta import TAParameters
from repro.ta.equations import external_service_availability


def test_table3_external_service_availability(benchmark):
    params = TAParameters()

    def compute():
        rows = {}
        for n in (1, 2, 3, 4, 5, 10):
            closed = external_service_availability(
                params.reservation_availability, n
            )
            block = parallel(*[f"sys-{i}" for i in range(n)])
            rbd = system_availability(
                block, {f"sys-{i}": params.reservation_availability
                        for i in range(n)}
            )
            rows[n] = (closed, rbd)
        return rows

    rows = benchmark(compute)

    emit(format_table(
        ["N", "A(Flight) = A(Hotel) = A(Car) closed form", "via RBD"],
        [[n, f"{c:.6f}", f"{r:.6f}"] for n, (c, r) in rows.items()],
        title="Table 3 — external reservation services (per-system A = 0.9)",
    ))

    for closed, rbd in rows.values():
        assert closed == rbd
    assert rows[1][0] == 0.9
    assert rows[10][0] > 0.9999999
