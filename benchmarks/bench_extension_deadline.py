"""Extension bench — response-time-aware availability.

The paper's conclusion proposes extending the composite measure with
latency failures ("the response time exceeds an acceptable threshold").
This bench evaluates that extension: availability under a latency SLO as
a function of the deadline and of the number of web servers, showing how
an SLO changes the optimal farm size found in Fig. 12.
"""

import pytest

from conftest import emit
from repro.availability import WebServiceModel
from repro.reporting import format_series


def model(servers, arrival_rate=100.0):
    return WebServiceModel(
        servers=servers,
        arrival_rate=arrival_rate,
        service_rate=100.0,
        buffer_capacity=10,
        failure_rate=1e-3,
        repair_rate=1.0,
        coverage=0.98,
        reconfiguration_rate=12.0,
    )


def test_extension_deadline_sweep(benchmark):
    deadlines = (0.01, 0.02, 0.03, 0.05, 0.1, 0.3, 1.0)

    def compute():
        m = model(servers=4)
        return [m.deadline_availability(d) for d in deadlines], m.availability()

    values, base = benchmark(compute)

    emit(format_series(
        "deadline (s)", deadlines,
        {"A_d (NW = 4)": values},
        value_format="{:.6f}",
        title=(
            "Extension — availability under a latency SLO "
            f"(base measure without SLO: {base:.6f})"
        ),
    ))

    assert list(values) == sorted(values)
    assert values[-1] == pytest.approx(base, abs=1e-4)
    assert values[0] < 0.7  # 10 ms budget ~ one mean service time


def test_extension_deadline_changes_farm_sizing(benchmark):
    servers = tuple(range(1, 11))
    deadline = 0.02  # two mean service times

    def compute():
        plain = [1.0 - model(n).availability() for n in servers]
        slo = [1.0 - model(n).deadline_availability(deadline) for n in servers]
        return plain, slo

    plain, slo = benchmark(compute)

    emit(format_series(
        "NW", servers,
        {"unavailability": plain, f"1 - A_d (d = {deadline}s)": slo},
        log_bars=True, floor_exponent=-10,
        title="Extension — farm sizing with and without a latency SLO",
    ))

    best_plain = plain.index(min(plain)) + 1
    best_slo = slo.index(min(slo)) + 1
    emit(f"optimal NW: plain measure = {best_plain}, "
         f"under 20 ms SLO = {best_slo}")

    # Queueing delay punishes small farms much harder under the SLO, so
    # the SLO optimum needs at least as many servers.
    assert best_slo >= best_plain
    # And the SLO measure is pointwise more pessimistic.
    for p, s in zip(plain, slo):
        assert s >= p - 1e-12
