"""Ablation beyond the paper: shared vs dedicated repair facilities.

The paper fixes a single shared repair facility (Section 3.3 mentions
dedicated vs shared repair as an architectural choice but never
evaluates it).  This bench quantifies the choice with the general
repairable-group model.
"""

import pytest

from conftest import emit
from repro.availability import RepairableGroup
from repro.reporting import format_table


def test_ablation_repair_pool_size(benchmark):
    units, lam, mu = 4, 0.2, 1.0

    def compute():
        return {
            r: RepairableGroup(
                units=units, failure_rate=lam, repair_rate=mu, repairmen=r
            )
            for r in range(1, units + 1)
        }

    groups = benchmark(compute)

    emit(format_table(
        ["repairmen", "A(1-of-4)", "A(3-of-4)", "E[operational units]"],
        [
            [r,
             f"{g.availability(1):.8f}",
             f"{g.availability(3):.6f}",
             f"{g.expected_operational_units():.4f}"]
            for r, g in groups.items()
        ],
        title=(
            "Ablation — repair pool size "
            f"(4 units, lambda = {lam}/h, mu = {mu}/h)"
        ),
    ))

    one_of_four = [g.availability(1) for g in groups.values()]
    three_of_four = [g.availability(3) for g in groups.values()]
    expected_units = [g.expected_operational_units() for g in groups.values()]
    # More repairmen never hurt, and the marginal gain shrinks.
    assert one_of_four == sorted(one_of_four)
    assert three_of_four == sorted(three_of_four)
    assert expected_units == sorted(expected_units)
    gain_first = three_of_four[1] - three_of_four[0]
    gain_last = three_of_four[-1] - three_of_four[-2]
    assert gain_first > gain_last


def test_ablation_deferred_maintenance(benchmark):
    """Section 3.3 also names immediate vs deferred maintenance; this
    quantifies the deferral penalty as a function of the call-out
    threshold (repairs start only once that many units are down)."""
    units, lam, mu = 4, 0.1, 1.0

    def compute():
        return {
            threshold: RepairableGroup(
                units=units, failure_rate=lam, repair_rate=mu,
                repairmen=2, repair_threshold=threshold,
            )
            for threshold in (1, 2, 3, 4)
        }

    groups = benchmark(compute)

    emit(format_table(
        ["repair threshold", "A(1-of-4)", "A(3-of-4)",
         "E[operational units]"],
        [
            [t,
             f"{g.availability(1):.8f}",
             f"{g.availability(3):.6f}",
             f"{g.expected_operational_units():.4f}"]
            for t, g in groups.items()
        ],
        title=(
            "Ablation — deferred maintenance "
            f"(4 units, lambda = {lam}/h, mu = {mu}/h, 2 repairmen)"
        ),
    ))

    one_of_four = [g.availability(1) for g in groups.values()]
    three_of_four = [g.availability(3) for g in groups.values()]
    # Deferring repairs monotonically erodes availability...
    assert one_of_four == sorted(one_of_four, reverse=True)
    assert three_of_four == sorted(three_of_four, reverse=True)
    # ...and the erosion is catastrophic for tight k-of-n requirements
    # (at threshold 3 the group permanently runs two units down).
    assert three_of_four[0] - three_of_four[1] > 0.05
    assert three_of_four[2] < 0.1
