"""Table 8 — user-perceived availability vs number of reservation systems.

The headline result: A(user) for classes A and B with
N_F = N_H = N_C in {1, 2, 3, 4, 5, 10}, NW = 4 web servers with imperfect
coverage.  The paper's published values are printed alongside ours; the
class-A column agrees within the rounding of the published pi_i, the
class-B residual is documented in EXPERIMENTS.md.
"""

import pytest

from conftest import emit
from repro.reporting import format_table
from repro.ta import CLASS_A, CLASS_B, TravelAgencyModel

COUNTS = (1, 2, 3, 4, 5, 10)
PAPER_A = {1: 0.84235, 2: 0.96509, 3: 0.97867, 4: 0.98004, 5: 0.98018,
           10: 0.98020}
PAPER_B = {1: 0.76875, 2: 0.95529, 3: 0.97593, 4: 0.97802, 5: 0.97822,
           10: 0.97825}


def test_table8_user_availability(benchmark):
    ta = TravelAgencyModel()

    def compute():
        return (
            dict(ta.reservation_sweep(CLASS_A, COUNTS)),
            dict(ta.reservation_sweep(CLASS_B, COUNTS)),
        )

    ours_a, ours_b = benchmark(compute)

    emit(format_table(
        ["N_F = N_H = N_C", "A(A users)", "paper", "A(B users)", "paper"],
        [
            [n, f"{ours_a[n]:.5f}", f"{PAPER_A[n]:.5f}",
             f"{ours_b[n]:.5f}", f"{PAPER_B[n]:.5f}"]
            for n in COUNTS
        ],
        title="Table 8 — user availability vs reservation-system count",
    ))

    for n in COUNTS:
        assert ours_a[n] == pytest.approx(PAPER_A[n], abs=2.5e-3)
        assert ours_b[n] == pytest.approx(PAPER_B[n], abs=1.5e-2)
        assert ours_b[n] < ours_a[n]
    # Rise from N = 1 to 4, then saturation.
    assert ours_a[4] - ours_a[1] > 0.13
    assert ours_a[10] - ours_a[5] < 1e-4
