"""DES kernel throughput — the events/sec baseline, attributed by type.

The repo's simulators all drain through :class:`repro.sim.Simulator`;
this bench pins down what the kernel itself delivers so later PRs can
see throughput regressions in one number.  The workload is a mix of
three self-rescheduling event classes of deliberately different cost —
a near-free counter tick, an arithmetic session step, and a small
allocation-heavy report event — approximating the shape of the fault
and session simulators built on the kernel.

Two passes over the identical event mix:

* **disabled** — no instrumentation; its wall time is the
  ``events_per_second`` headline (best of ``REPEATS``);
* **accounted** — the same mix under a
  :class:`~repro.obs.PerfRecorder`, whose per-event-type kernel
  accounting attributes the time: the emitted table shows each type's
  count and self-time share, and the bench asserts the accounting saw
  exactly the events that ran.

Timings are machine-dependent, so nothing here is guarded (``guarded:
[]``) — the committed ``benchmarks/BENCH_des.json`` baseline exists so
``repro diff`` can *show* the delta, not veto it.
"""

import json
import os
import time
from pathlib import Path

from conftest import emit
from repro.obs import PerfRecorder
from repro.reporting import format_table
from repro.sim import Simulator

EVENTS = 60_000   # total across the three event classes
REPEATS = 10
GUARD_THRESHOLD = 0.03  # convention only; no field is guarded

BASELINE = Path(__file__).parent / "BENCH_des.json"


class CounterTick:
    """The cheapest possible event: one attribute increment."""

    def __init__(self, sim, remaining):
        self.sim = sim
        self.remaining = remaining
        self.count = 0

    def __call__(self):
        self.count += 1
        self.remaining -= 1
        if self.remaining:
            self.sim.schedule(1.0, self)


class SessionStep:
    """An arithmetic event shaped like one session-simulator step."""

    def __init__(self, sim, remaining):
        self.sim = sim
        self.remaining = remaining
        self.availability = 1.0

    def __call__(self):
        # A few floating-point ops per event, like the availability
        # integration the end-to-end simulators do.
        self.availability = 0.5 * (self.availability + 0.97 * 0.999)
        self.remaining -= 1
        if self.remaining:
            self.sim.schedule(1.5, self)


class ReportEvent:
    """An allocation-heavy event: builds a small record per firing."""

    def __init__(self, sim, remaining):
        self.sim = sim
        self.remaining = remaining
        self.records = 0

    def __call__(self):
        record = {"time": self.sim.now, "left": self.remaining}
        self.records += len(record)
        self.remaining -= 1
        if self.remaining:
            self.sim.schedule(2.0, self)


def _load(sim):
    """Schedule the three-class mix; total firings == EVENTS."""
    share = EVENTS // 3
    sim.schedule(1.0, CounterTick(sim, share))
    sim.schedule(1.0, SessionStep(sim, share))
    sim.schedule(1.0, ReportEvent(sim, EVENTS - 2 * share))


def _one_run(make_sim):
    sim = make_sim()
    _load(sim)
    started = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - started
    assert sim.events_processed == EVENTS
    return elapsed


def test_des_throughput_baseline(benchmark):
    def _measure():
        return min(_one_run(Simulator) for _ in range(REPEATS))

    best = benchmark.pedantic(_measure, rounds=1, warmup_rounds=1)
    events_per_second = EVENTS / best

    # One accounted pass attributes the same mix by event type.
    recorder = PerfRecorder()
    _one_run(lambda: Simulator(perf=recorder))
    accounting = recorder.kernel.to_dict()
    assert accounting["total_events"] == EVENTS
    assert set(accounting["events"]) == {
        "CounterTick", "SessionStep", "ReportEvent"
    }

    total_seconds = accounting["total_seconds"] or 1.0
    record = {
        "benchmark": "des-throughput",
        "events": EVENTS,
        "repeats": REPEATS,
        "seconds_best": round(best, 6),
        "events_per_second": round(events_per_second, 1),
        "event_types": {
            name: {
                "count": entry["count"],
                "seconds": entry["seconds"],
                "share": round(entry["seconds"] / total_seconds, 4),
            }
            for name, entry in accounting["events"].items()
        },
        "guard_threshold": GUARD_THRESHOLD,
        "guarded": [],
        "guard_enforced": bool(os.environ.get("REPRO_OBS_GUARD")),
    }
    out_dir = Path(__file__).parent / "artifacts"
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "BENCH_des.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )

    rows = [
        [name, str(entry["count"]),
         f"{entry['seconds'] * 1e6 / max(entry['count'], 1):.3f}",
         f"{entry['seconds'] / total_seconds:.1%}"]
        for name, entry in sorted(
            accounting["events"].items(),
            key=lambda item: -item[1]["seconds"],
        )
    ]
    emit(format_table(
        ["event type", "count", "us/event (self)", "share"],
        rows,
        title=(
            f"DES kernel throughput — {events_per_second:,.0f} events/s "
            f"({EVENTS} events, best of {REPEATS})"
        ),
    ))

    if BASELINE.exists():
        baseline = json.loads(BASELINE.read_text())
        assert baseline["benchmark"] == record["benchmark"]
