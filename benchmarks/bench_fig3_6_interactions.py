"""Figures 3-6 — interaction diagrams of Browse, Search, Book and Pay.

Enumerates each diagram's execution scenarios and regenerates the
function-availability algebra the figures encode (e.g. the three Browse
scenarios weighted by q23, q24*q45, q24*q47).
"""

import pytest

from conftest import emit
from repro.reporting import format_table
from repro.ta import TAParameters
from repro.ta.diagrams import (
    book_diagram,
    browse_diagram,
    pay_diagram,
    search_diagram,
)

DIAGRAMS = {
    "Fig. 3 Browse": browse_diagram,
    "Fig. 4 Search": search_diagram,
    "Fig. 5 Book": book_diagram,
    "Fig. 6 Pay": pay_diagram,
}


def test_fig3_to_6_interaction_diagrams(benchmark):
    params = TAParameters()

    def compute():
        return {
            name: build(params).scenarios()
            for name, build in DIAGRAMS.items()
        }

    scenarios = benchmark(compute)

    rows = []
    for name, scenario_list in scenarios.items():
        for scenario in scenario_list:
            rows.append([
                name,
                f"{scenario.probability:.2f}",
                ", ".join(sorted(scenario.services)),
            ])
    emit(format_table(
        ["diagram", "probability", "services touched"],
        rows,
        title="Figures 3-6 — function execution scenarios",
    ))

    browse = scenarios["Fig. 3 Browse"]
    assert len(browse) == 3
    probs = sorted(s.probability for s in browse)
    assert probs == [
        pytest.approx(0.2),                       # q23
        pytest.approx(0.8 * 0.4),                 # q24 q45
        pytest.approx(0.8 * 0.6),                 # q24 q47
    ]
    for name in ("Fig. 4 Search", "Fig. 5 Book", "Fig. 6 Pay"):
        assert len(scenarios[name]) == 1
        assert scenarios[name][0].probability == pytest.approx(1.0)
    assert {"flight", "hotel", "car"} <= scenarios["Fig. 4 Search"][0].services
    assert "payment" in scenarios["Fig. 6 Pay"][0].services
