"""Figure 11 — web service unavailability, perfect coverage.

Regenerates the nine curves of Fig. 11: unavailability vs NW in 1..10
for failure rates {1e-2, 1e-3, 1e-4}/h and arrival rates
{50, 100, 150}/s, with nu = 100/s, mu = 1/h, K = 10.

Shape checks encode the paper's reading of the figure: unavailability
decreases monotonically with NW (no reversal under perfect coverage),
and the failure rate only matters when the load is below one.
"""

import pytest

from conftest import emit
from repro.availability import WebServiceModel
from repro.reporting import format_series
from repro.sensitivity import grid_sweep

SERVER_RANGE = tuple(range(1, 11))
FAILURE_RATES = (1e-2, 1e-3, 1e-4)
ARRIVAL_RATES = (50.0, 100.0, 150.0)


def unavailability(failure_rate, arrival_rate, servers):
    return WebServiceModel(
        servers=int(servers),
        arrival_rate=arrival_rate,
        service_rate=100.0,
        buffer_capacity=10,
        failure_rate=failure_rate,
        repair_rate=1.0,
    ).unavailability()


@pytest.mark.parametrize("arrival_rate", ARRIVAL_RATES,
                         ids=["a50", "a100", "a150"])
def test_fig11_web_service_unavailability_perfect(benchmark, arrival_rate):
    grid = benchmark(
        lambda: grid_sweep(
            lambda lam, nw: unavailability(lam, arrival_rate, nw),
            "failure rate", FAILURE_RATES,
            "NW", SERVER_RANGE,
        )
    )

    series = {
        f"lambda={lam:g}/h": grid.row(lam).outputs for lam in FAILURE_RATES
    }
    emit(format_series(
        "NW", SERVER_RANGE, series,
        log_bars=True, floor_exponent=-14,
        title=f"Figure 11 — perfect coverage, alpha = {arrival_rate:g}/s",
    ))

    for lam in FAILURE_RATES:
        curve = grid.row(lam).outputs
        # Monotone decreasing: more servers never hurt (Fig. 11).
        assert all(a >= b - 1e-15 for a, b in zip(curve, curve[1:]))
    if arrival_rate < 100.0:
        # Light load: the failure rate separates the curves widely.
        assert grid.row(1e-2).outputs[3] > 20 * grid.row(1e-4).outputs[3]
    if arrival_rate > 100.0:
        # Overload: all curves collapse onto the buffer-loss floor.
        assert grid.row(1e-2).outputs[0] == pytest.approx(
            grid.row(1e-4).outputs[0], rel=0.05
        )
