"""Figure 13 — unavailability contribution per scenario category SC1-SC4,
plus the lost-transaction / lost-revenue discussion of Section 5.2.

Contributions are computed as sum_{i in SC} pi_i (1 - A_i), which by
construction add up to the total user-perceived unavailability under
eq. (10).  The paper quotes 16 h/year (class A) and 43 h/year (class B)
for SC4; those absolute values are not reproducible from the printed
Table 7 parameters (see EXPERIMENTS.md) — the *ratio* between the
classes (~2.7x, driven by the pi masses 0.203 vs 0.075) is, and is
asserted here.
"""

import pytest

from conftest import emit
from repro.reporting import format_table
from repro.ta import CLASS_A, CLASS_B, RevenueModel, TravelAgencyModel

CATEGORIES = ("SC1", "SC2", "SC3", "SC4")


def test_fig13_category_contributions(benchmark):
    ta = TravelAgencyModel()

    def compute():
        return {
            users.name: (
                ta.category_breakdown(users),
                ta.user_availability(users),
            )
            for users in (CLASS_A, CLASS_B)
        }

    results = benchmark(compute)

    rows = []
    for name, (breakdown, result) in results.items():
        for category in CATEGORIES:
            rows.append([
                name, category,
                f"{breakdown[category]:.5f}",
                f"{breakdown[category] * 8760:.1f}",
            ])
        rows.append([
            name, "total",
            f"{result.unavailability:.5f}",
            f"{result.downtime_hours_per_year:.1f}",
        ])
    emit(format_table(
        ["user class", "category", "UA contribution", "hours/year"],
        rows,
        title="Figure 13 — unavailability contribution by scenario category",
    ))

    breakdown_a, result_a = results["class A"]
    breakdown_b, result_b = results["class B"]
    # Contributions are a partition of the total unavailability.
    for breakdown, result in results.values():
        assert sum(breakdown.values()) == pytest.approx(
            result.unavailability, rel=1e-12
        )
    # SC4 hits class B ~2.7x harder (the pi-mass ratio 0.203/0.075).
    assert breakdown_b["SC4"] / breakdown_a["SC4"] == pytest.approx(
        0.203 / 0.075, rel=0.05
    )
    # Class A's mix concentrates damage in SC1/SC2; class B in SC4.
    assert breakdown_a["SC2"] > breakdown_a["SC4"] / 2
    assert breakdown_b["SC4"] == max(breakdown_b.values())


def test_fig13_revenue_loss(benchmark):
    """Section 5.2's economics: 100 sessions/s, $100 per transaction."""
    ta = TravelAgencyModel()
    revenue = RevenueModel(session_rate=100.0, average_revenue=100.0)

    estimates = benchmark(
        lambda: {
            users.name: revenue.estimate(ta.user_availability(users))
            for users in (CLASS_A, CLASS_B)
        }
    )

    emit(format_table(
        ["user class", "pay share", "lost sessions/year", "lost revenue/year"],
        [
            [name,
             f"{e.payment_scenario_share:.3f}",
             f"{e.lost_payment_sessions_per_year:.3e}",
             f"${e.lost_revenue_per_year:.3e}"]
            for name, e in estimates.items()
        ],
        title="Section 5.2 — yearly business impact of lost payment sessions",
    ))

    loss_a = estimates["class A"].lost_payment_sessions_per_year
    loss_b = estimates["class B"].lost_payment_sessions_per_year
    # Class B loses ~2.7x more transactions (and hence revenue).
    assert loss_b / loss_a == pytest.approx(0.203 / 0.075, rel=0.05)
    # Millions of lost transactions per year, as in the paper's discussion.
    assert loss_a > 1e6
    assert loss_b > 1e7
