"""End-to-end validation bench — eq. (10) under time dynamics.

Simulates the full TA with every resource alternating up/down as a
two-state Markov process and integrates the conditional per-session
success probability over time.  The time average must converge to the
analytic eq.-(10) value; the run also reports how failures cluster —
the fraction of time everything was up, and the fraction of time a
common single point of failure produced a total outage.
"""

import pytest

from conftest import emit
from repro.reporting import format_table
from repro.sim import simulate_user_availability_over_time
from repro.ta import CLASS_A, CLASS_B, TravelAgencyModel


def test_endtoend_time_dynamics(benchmark, rng):
    ta = TravelAgencyModel()

    def compute():
        return {
            users.name: simulate_user_availability_over_time(
                ta.hierarchical_model, users, horizon=40_000.0, rng=rng
            )
            for users in (CLASS_A, CLASS_B)
        }

    results = benchmark.pedantic(compute, iterations=1, rounds=1)

    rows = []
    for users in (CLASS_A, CLASS_B):
        analytic = ta.user_availability(users).availability
        result = results[users.name]
        rows.append([
            users.name,
            f"{result.average_user_availability:.5f}",
            f"{analytic:.5f}",
            f"{result.fraction_fully_available:.4f}",
            f"{result.fraction_total_outage:.4f}",
            result.resource_transitions,
        ])
    emit(format_table(
        ["user class", "simulated (time avg)", "analytic eq. (10)",
         "P(all up)", "P(total outage)", "transitions"],
        rows,
        title="End-to-end failure/repair simulation of the full TA",
    ))

    for users in (CLASS_A, CLASS_B):
        analytic = ta.user_availability(users).availability
        result = results[users.name]
        assert result.average_user_availability == pytest.approx(
            analytic, abs=0.02
        )
        # The common services (net, LAN) are down ~0.68% of the time;
        # during those windows everything fails together.
        assert 0.001 < result.fraction_total_outage < 0.03
        # "All 25 resources up simultaneously" is much rarer than the
        # user-perceived availability — redundancy masks the difference.
        assert result.fraction_fully_available < (
            result.average_user_availability
        )
