"""Table 2 — mapping between functions and services."""

from conftest import emit
from repro.reporting import format_table
from repro.ta import FUNCTIONS, build_travel_agency

SERVICE_COLUMNS = (
    "web", "application", "database", "flight", "hotel", "car", "payment",
)


def test_table2_function_service_mapping(benchmark):
    mapping = benchmark(
        lambda: build_travel_agency().function_service_mapping()
    )

    rows = []
    for function in FUNCTIONS:
        used = mapping[function]
        rows.append(
            [function]
            + ["x" if service in used else "" for service in SERVICE_COLUMNS]
        )
    emit(format_table(
        ["function"] + list(SERVICE_COLUMNS),
        rows,
        title="Table 2 — functions vs services (net/LAN required everywhere)",
    ))

    assert mapping["home"] >= {"web"}
    assert mapping["search"] >= {"web", "application", "database",
                                 "flight", "hotel", "car"}
    assert mapping["book"] == mapping["search"]
    assert "payment" in mapping["pay"]
    assert "payment" not in mapping["search"]
