"""Figure 12 — web service unavailability, imperfect coverage (c = 0.98).

Same sweep as Fig. 11 with the Fig. 10 availability model.  The paper's
headline observation — the trend reverses beyond NW ~ 4 because
uncovered failures put the whole farm into a manual-reconfiguration
state — is asserted on every curve, together with the design decisions
quoted in Section 5.1.
"""

import pytest

from conftest import emit
from repro.availability import WebServiceModel
from repro.reporting import format_series
from repro.sensitivity import grid_sweep

SERVER_RANGE = tuple(range(1, 11))
FAILURE_RATES = (1e-2, 1e-3, 1e-4)
ARRIVAL_RATES = (50.0, 100.0, 150.0)


def unavailability(failure_rate, arrival_rate, servers):
    return WebServiceModel(
        servers=int(servers),
        arrival_rate=arrival_rate,
        service_rate=100.0,
        buffer_capacity=10,
        failure_rate=failure_rate,
        repair_rate=1.0,
        coverage=0.98,
        reconfiguration_rate=12.0,
    ).unavailability()


@pytest.mark.parametrize("arrival_rate", ARRIVAL_RATES,
                         ids=["a50", "a100", "a150"])
def test_fig12_web_service_unavailability_imperfect(benchmark, arrival_rate):
    grid = benchmark(
        lambda: grid_sweep(
            lambda lam, nw: unavailability(lam, arrival_rate, nw),
            "failure rate", FAILURE_RATES,
            "NW", SERVER_RANGE,
        )
    )

    series = {
        f"lambda={lam:g}/h": grid.row(lam).outputs for lam in FAILURE_RATES
    }
    emit(format_series(
        "NW", SERVER_RANGE, series,
        log_bars=True, floor_exponent=-14,
        title=f"Figure 12 — imperfect coverage, alpha = {arrival_rate:g}/s",
    ))

    for lam in FAILURE_RATES:
        curve = list(grid.row(lam).outputs)
        best = curve.index(min(curve))
        # The curve turns back up after its minimum (the Fig. 12
        # reversal); under heavy load with a tiny failure rate the
        # minimum can sit at the right edge of the NW <= 10 window
        # (extra servers keep buying buffer capacity), in which case
        # there is no interior reversal to check.
        if best < len(curve) - 1:
            assert curve[-1] > curve[best]
    if arrival_rate <= 100.0:
        # The paper's plotted regime: every curve reverses by NW = 10.
        for lam in FAILURE_RATES:
            curve = list(grid.row(lam).outputs)
            best = curve.index(min(curve))
            assert best < len(curve) - 1
            assert curve[-1] > curve[best]
    if arrival_rate <= 50.0:
        # At light load the reversal happens by NW ~ 4, as the paper notes.
        for lam in FAILURE_RATES:
            curve = list(grid.row(lam).outputs)
            assert curve.index(min(curve)) <= 3


def test_fig12_design_decision_five_minutes(benchmark):
    """Section 5.1: servers needed for unavailability < 1e-5 (5 min/yr)."""
    from repro.sensitivity import sweep

    def servers_needed(lam, alpha):
        result = sweep(
            lambda nw: unavailability(lam, alpha, nw), "NW", SERVER_RANGE
        )
        # The paper reads "5 min/year" as 1e-5 off a log plot; NW = 4 at
        # (1e-3/h, 100/s) sits at 1.05e-5, visually on the threshold, so
        # the crossing test uses a 10% reading tolerance.
        try:
            value, _ = result.first_crossing(1.1e-5, above=False)
            return int(value)
        except Exception:
            return None

    needed = benchmark(
        lambda: {
            (lam, alpha): servers_needed(lam, alpha)
            for lam in FAILURE_RATES
            for alpha in (50.0, 100.0)
        }
    )

    emit("Servers needed for < 5 min/year (unavailability < 1e-5):")
    for (lam, alpha), n in needed.items():
        emit(f"  lambda = {lam:g}/h, alpha = {alpha:g}/s -> "
             f"{n if n else 'not achievable'}")

    assert needed[(1e-3, 50.0)] == 2      # paper: NW = 2 at 50/s
    assert needed[(1e-3, 100.0)] == 4     # paper: NW = 4 at 100/s
    assert needed[(1e-4, 50.0)] == 2      # paper: same result at 1e-4
    assert needed[(1e-4, 100.0)] == 4
    assert needed[(1e-2, 50.0)] is None   # paper: unreachable at 1e-2
    assert needed[(1e-2, 100.0)] is None
