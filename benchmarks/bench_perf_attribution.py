"""Performance attribution — the disabled-mode guard and the coverage claim.

:mod:`repro.obs.perf` makes two promises this bench turns into numbers:

1. **Pay-for-use.**  The kernel accounting and counter profiler are
   bound at :class:`~repro.sim.Simulator` construction, exactly like
   the metrics step — a run with no :class:`~repro.obs.PerfRecorder`
   active executes the untouched ``_step_fast``.  The bench measures
   the real disabled kernel against a bare pre-instrumentation replica
   (imported from ``bench_obs_overhead``) and guards the paired-ratio
   overhead at ``<= 3%`` when ``REPRO_OBS_GUARD`` is set.

2. **Coverage.**  An :class:`~repro.obs.AttributionReport` decomposes a
   batch's capacity (``slots x elapsed``) into compute, serialization,
   IPC, idle, and cache — and the five buckets must account for
   ``>= 95%`` of measured wall-time.  The bench runs the Fig. 11 grid
   through the engine serially and with ``workers=2`` (the
   configuration whose 0.06x "speedup" in ``BENCH_engine.json``
   motivated attribution in the first place) and asserts coverage on
   both, recording the parallel run's bucket shares — the numeric
   explanation of where the speedup went.

Results land in ``benchmarks/artifacts/BENCH_perf.json``; the committed
``benchmarks/BENCH_perf.json`` is the CI baseline ``repro diff`` gates
against.
"""

import json
import os
import time
from pathlib import Path

from bench_obs_overhead import BareKernel, _one_run
from conftest import emit
from repro.availability import WebServiceModel
from repro.engine import EvaluationEngine
from repro.obs import PerfRecorder
from repro.obs.regression import time_variants
from repro.reporting import format_table
from repro.sim import Simulator

EVENTS = 30_000
REPEATS = 15
GUARD_THRESHOLD = 0.03  # disabled-mode regression budget: 3%
COVERAGE_FLOOR = 0.95   # the attribution buckets must explain >= 95%

SERVER_RANGE = tuple(range(1, 11))
FAILURE_RATES = (1e-2, 1e-3, 1e-4)
ARRIVAL_RATES = (50.0, 100.0, 150.0)

BASELINE = Path(__file__).parent / "BENCH_perf.json"


def unavailability(spec):
    """One grid cell; module-level so worker processes can unpickle it."""
    arrival_rate, failure_rate, servers = spec
    return WebServiceModel(
        servers=int(servers),
        arrival_rate=arrival_rate,
        service_rate=100.0,
        buffer_capacity=10,
        failure_rate=failure_rate,
        repair_rate=1.0,
    ).unavailability()


def _cells():
    return [
        (alpha, lam, nw)
        for alpha in ARRIVAL_RATES
        for lam in FAILURE_RATES
        for nw in SERVER_RANGE
    ]


def _attributed_run(workers):
    """Run the grid under a fresh recorder; returns (report, outputs)."""
    recorder = PerfRecorder()
    engine = EvaluationEngine(workers=workers, perf=recorder)
    batch = engine.map(unavailability, _cells(), phase="fig11-grid")
    assert len(recorder.batches) == 1
    return recorder.batches[0], list(batch.outputs)


def test_perf_attribution_overhead_and_coverage(benchmark):
    # -- 1. pay-for-use: the guarded disabled-mode statistic ------------
    def _profiled_sim():
        # A fresh recorder per run keeps sample dictionaries small and
        # runs comparable.
        return Simulator(perf=PerfRecorder(kernel_interval=1000))

    variants = [
        ("bare", lambda: _one_run(BareKernel)),
        ("disabled", lambda: _one_run(Simulator)),
        ("profiled", lambda: _one_run(_profiled_sim)),
    ]
    timing = benchmark.pedantic(
        lambda: time_variants(variants, repeats=REPEATS),
        rounds=1,
        warmup_rounds=1,
    )
    bare = timing.best["bare"]
    disabled = timing.best["disabled"]
    profiled = timing.best["profiled"]
    disabled_overhead = timing.overhead["disabled"]
    profiled_overhead = timing.overhead["profiled"]

    # -- 2. coverage: the attribution identity on real engine runs ------
    started = time.perf_counter()
    serial_report, serial_outputs = _attributed_run(workers=1)
    serial_seconds = time.perf_counter() - started
    started = time.perf_counter()
    parallel_report, parallel_outputs = _attributed_run(workers=2)
    parallel_seconds = time.perf_counter() - started

    # Attribution never touches results: parallel == serial, bit for bit.
    assert parallel_outputs == serial_outputs
    assert serial_report.coverage >= COVERAGE_FLOOR
    assert parallel_report.coverage >= COVERAGE_FLOOR

    record = {
        "benchmark": "perf-attribution",
        "events": EVENTS,
        "repeats": REPEATS,
        "seconds": {
            "bare": round(bare, 6),
            "disabled": round(disabled, 6),
            "profiled": round(profiled, 6),
            "grid_serial": round(serial_seconds, 6),
            "grid_workers2": round(parallel_seconds, 6),
        },
        # Guarded: minimum paired per-round ratio minus one (see
        # repro.obs.regression.paired_ratio_overhead).
        "disabled_overhead": round(disabled_overhead, 4),
        # Informational: the price of asking for attribution.
        "profiled_overhead": round(profiled_overhead, 4),
        "cells": len(_cells()),
        "attribution_coverage_serial": round(serial_report.coverage, 4),
        "attribution_coverage_workers2": round(parallel_report.coverage, 4),
        "parallel_efficiency_workers2": round(
            parallel_report.parallel_efficiency, 4
        ),
        "compute_share_workers2": round(parallel_report.share("compute"), 4),
        "ipc_share_workers2": round(parallel_report.share("ipc"), 4),
        "idle_share_workers2": round(parallel_report.share("idle"), 4),
        "guard_threshold": GUARD_THRESHOLD,
        # Only the disabled-mode statistic is a regression; everything
        # else (including the machine-dependent shares) is evidence.
        "guarded": ["disabled_overhead"],
        "guard_enforced": bool(os.environ.get("REPRO_OBS_GUARD")),
    }
    out_dir = Path(__file__).parent / "artifacts"
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "BENCH_perf.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )

    rows = [
        ["bare loop", f"{bare * 1e6 / EVENTS:.3f}", "reference"],
        ["disabled", f"{disabled * 1e6 / EVENTS:.3f}",
         f"{disabled / bare - 1.0:+.1%}"],
        ["profiled", f"{profiled * 1e6 / EVENTS:.3f}",
         f"{profiled / bare - 1.0:+.1%}"],
    ]
    emit(format_table(
        ["mode", "us/event", "overhead of best"],
        rows,
        title=(
            f"Perf-attribution overhead — {EVENTS} DES events, "
            f"best of {REPEATS}"
        ),
    ))
    for label, report in (
        ("serial", serial_report), ("workers=2", parallel_report)
    ):
        emit(format_table(
            ["bucket", "seconds", "share"],
            [
                [name, f"{getattr(report, name):.6f}",
                 f"{report.share(name):.1%}"]
                for name in ("compute", "serialization", "ipc", "idle",
                             "cache")
            ],
            title=(
                f"Fig. 11 grid attribution ({label}) — coverage "
                f"{report.coverage:.1%}"
            ),
        ))

    if BASELINE.exists():
        baseline = json.loads(BASELINE.read_text())
        assert baseline["benchmark"] == record["benchmark"]
        assert baseline["guard_threshold"] == GUARD_THRESHOLD

    if os.environ.get("REPRO_OBS_GUARD"):
        assert disabled_overhead <= GUARD_THRESHOLD, (
            f"disabled-mode perf-attribution overhead "
            f"{disabled_overhead:.1%} exceeds the "
            f"{GUARD_THRESHOLD:.0%} budget"
        )
