"""Streaming SLO-monitor overhead on the end-to-end DES hot path.

``repro.obs.slo`` hangs off the end-to-end simulator's observer hook:
every piecewise-constant availability segment becomes one
``observer.interval(...)`` call.  This bench measures what that costs on
the paper's own workload and turns it into a regression guard.

Three variants simulate an identical Travel Agency timeline (same model,
same seed, so the same trajectory event for event):

* **plain** — ``simulate_user_availability_over_time`` with no
  observer, the reference (its own ``observer is None`` check is part
  of the disabled-mode cost guarded by ``bench_obs_overhead.py``);
* **monitored** — the same run streaming into an
  :class:`~repro.obs.slo.SLOMonitor` (two sliding burn-rate windows,
  alert evaluation per segment): the **guarded** variant, held to
  <= 3% because a monitor that slows the simulation it watches would
  never be left on;
* **sampled** — monitored plus a :class:`~repro.obs.slo.PoissonSessionSampler`
  drawing Poisson/Binomial session counts per segment from its own rng:
  reported, never asserted — sampling cost is the price of wanting
  session-level confidence intervals, not a regression.

The statistic and interleaving come from :mod:`repro.obs.regression`
(minimum paired per-round ratio minus one; see that module).  The guard
asserts only when ``REPRO_OBS_GUARD`` is set, as in
``bench_obs_overhead.py``.  Results land in
``benchmarks/artifacts/BENCH_slo.json``; the committed
``benchmarks/BENCH_slo.json`` records what a CI runner measured.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from conftest import emit
from repro.obs.regression import time_variants
from repro.obs.slo import PoissonSessionSampler, SLOMonitor
from repro.reporting import format_table
from repro.sim import simulate_user_availability_over_time
from repro.ta import CLASS_A, TravelAgencyModel

HORIZON = 2000.0
SEED = 20030622  # DSN 2003; any fixed seed works, all variants share it
REPEATS = 10
GUARD_THRESHOLD = 0.03  # monitored-mode regression budget: 3%

BASELINE = Path(__file__).parent / "BENCH_slo.json"

MODEL = TravelAgencyModel().hierarchical_model
OBJECTIVE = MODEL.user_availability(CLASS_A).availability


def _one_run(make_observer):
    """Wall-clock seconds for one end-to-end run with the given observer."""
    observer = make_observer()
    rng = np.random.default_rng(SEED)
    started = time.perf_counter()
    result = simulate_user_availability_over_time(
        MODEL, CLASS_A, horizon=HORIZON, rng=rng, observer=observer
    )
    elapsed = time.perf_counter() - started
    assert result.horizon == HORIZON
    return elapsed


def _monitor():
    return SLOMonitor(objective=OBJECTIVE, windows=(50.0, 500.0))


def _sampler():
    return PoissonSessionSampler(
        _monitor(), rate=1.0, rng=np.random.default_rng(SEED + 1)
    )


def test_slo_monitor_overhead_within_budget(benchmark):
    variants = [
        ("plain", lambda: _one_run(lambda: None)),
        ("monitored", lambda: _one_run(_monitor)),
        ("sampled", lambda: _one_run(_sampler)),
    ]
    timing = benchmark.pedantic(
        lambda: time_variants(variants, repeats=REPEATS),
        rounds=1,
        warmup_rounds=1,
    )
    plain = timing.best["plain"]
    monitored = timing.best["monitored"]
    sampled = timing.best["sampled"]

    monitored_overhead = timing.overhead["monitored"]
    sampled_overhead = timing.overhead["sampled"]

    record = {
        "benchmark": "slo-overhead-endtoend",
        "horizon": HORIZON,
        "repeats": REPEATS,
        "seconds": {
            "plain": round(plain, 6),
            "monitored": round(monitored, 6),
            "sampled": round(sampled, 6),
        },
        # Guarded: minimum paired per-round ratio minus one (noise-robust
        # lower bound; can dip negative when a plain round was unlucky).
        "monitored_overhead": round(monitored_overhead, 4),
        "sampled_overhead": round(sampled_overhead, 4),
        # Informational: ratio of the best-of-REPEATS absolute times.
        "monitored_overhead_of_best": round(
            timing.overhead_of_best("monitored", "plain"), 4
        ),
        "sampled_overhead_of_best": round(
            timing.overhead_of_best("sampled", "plain"), 4
        ),
        "guard_threshold": GUARD_THRESHOLD,
        "guarded": ["monitored_overhead"],
        "guard_enforced": bool(os.environ.get("REPRO_OBS_GUARD")),
    }
    out_dir = Path(__file__).parent / "artifacts"
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "BENCH_slo.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )

    rows = [
        ["plain", f"{plain * 1e3:.2f}", "reference"],
        ["monitored", f"{monitored * 1e3:.2f}",
         f"{monitored / plain - 1.0:+.1%}"],
        ["sampled", f"{sampled * 1e3:.2f}",
         f"{sampled / plain - 1.0:+.1%}"],
    ]
    emit(format_table(
        ["observer", "ms/run", "overhead of best"],
        rows,
        title=(
            f"SLO monitor overhead — {HORIZON:g} h end-to-end run, "
            f"best of {REPEATS}"
        ),
    ))

    if BASELINE.exists():
        baseline = json.loads(BASELINE.read_text())
        assert baseline["benchmark"] == record["benchmark"]
        assert baseline["guard_threshold"] == GUARD_THRESHOLD

    if os.environ.get("REPRO_OBS_GUARD"):
        assert monitored_overhead <= GUARD_THRESHOLD, (
            f"SLO-monitor overhead {monitored_overhead:.1%} exceeds the "
            f"{GUARD_THRESHOLD:.0%} budget on the end-to-end hot path"
        )
