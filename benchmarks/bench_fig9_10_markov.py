"""Figures 9 & 10 — the coverage Markov models.

Solves both farm models (closed forms of eqs. 4 and 6-8 against the
generic GTH CTMC solver) and prints the steady-state distributions.
"""

import pytest

from conftest import emit
from repro.availability import ImperfectCoverageFarm, PerfectCoverageFarm
from repro.reporting import format_table

CONFIG = dict(servers=4, failure_rate=1e-4, repair_rate=1.0)


def test_fig9_perfect_coverage_model(benchmark):
    farm = PerfectCoverageFarm(**CONFIG)

    def compute():
        return farm.state_probabilities(), farm.to_ctmc().steady_state()

    closed, numeric = benchmark(compute)

    emit(format_table(
        ["state i (operational servers)", "Pi_i (eq. 4)", "Pi_i (GTH solver)"],
        [[i, f"{closed[i]:.3e}", f"{numeric[i]:.3e}"] for i in sorted(closed)],
        title="Figure 9 — perfect-coverage farm steady state (NW = 4)",
    ))

    for i in closed:
        assert closed[i] == pytest.approx(numeric[i], rel=1e-10)
    assert closed[4] > 0.999


def test_fig10_imperfect_coverage_model(benchmark):
    farm = ImperfectCoverageFarm(
        coverage=0.98, reconfiguration_rate=12.0, **CONFIG
    )

    def compute():
        return farm.state_probabilities(), farm.to_ctmc().steady_state()

    (operational, down), numeric = benchmark(compute)

    rows = [
        [f"i = {i}", f"{operational[i]:.3e}", f"{numeric[i]:.3e}"]
        for i in sorted(operational)
    ] + [
        [f"y_{i}", f"{down[i]:.3e}", f"{numeric[('y', i)]:.3e}"]
        for i in sorted(down)
    ]
    emit(format_table(
        ["state", "closed form (eqs. 6-8)", "GTH solver"],
        rows,
        title=(
            "Figure 10 — imperfect-coverage farm steady state "
            "(NW = 4, c = 0.98, beta = 12/h)"
        ),
    ))

    for i in operational:
        assert operational[i] == pytest.approx(numeric[i], rel=1e-10)
    for i in down:
        assert down[i] == pytest.approx(numeric[("y", i)], rel=1e-10)
    assert sum(down.values()) > 0.0
