"""Engine scaling — the Fig. 11 sweep, serial vs parallel vs cached.

Runs the full Fig. 11 grid (3 failure-rate curves x 10 farm sizes, all
three arrival rates = 90 cells) through the batch evaluation engine with
1, 2 and 4 workers, asserting that every configuration reproduces the
serial reference *bit for bit* — the engine's core contract.  A second
pass re-runs the sweep against a warm memo cache and asserts that no
cell is recomputed.

Wall-clock numbers land in ``benchmarks/BENCH_engine.json`` (and the
emitted table).  Speedup is machine-dependent — a single-core CI
container shows none — so only equality and cache behaviour are
asserted here; the committed baseline records what a multi-core runner
measured.
"""

import hashlib
import json
import time
from pathlib import Path

from conftest import emit
from repro.availability import WebServiceModel
from repro.engine import EvaluationEngine, canonical_key
from repro.reporting import format_table
from repro.sensitivity import grid_sweep

SERVER_RANGE = tuple(range(1, 11))
FAILURE_RATES = (1e-2, 1e-3, 1e-4)
ARRIVAL_RATES = (50.0, 100.0, 150.0)
WORKER_COUNTS = (1, 2, 4)

BASELINE = Path(__file__).parent / "BENCH_engine.json"


def unavailability(spec):
    """One grid cell; module-level so worker processes can unpickle it."""
    arrival_rate, failure_rate, servers = spec
    return WebServiceModel(
        servers=int(servers),
        arrival_rate=arrival_rate,
        service_rate=100.0,
        buffer_capacity=10,
        failure_rate=failure_rate,
        repair_rate=1.0,
    ).unavailability()


def _cells():
    return [
        (alpha, lam, nw)
        for alpha in ARRIVAL_RATES
        for lam in FAILURE_RATES
        for nw in SERVER_RANGE
    ]


def _keys(cells):
    return [
        canonical_key(
            "webservice-unavailability",
            arrival_rate=alpha, failure_rate=lam, servers=nw,
            service_rate=100.0, buffer_capacity=10, repair_rate=1.0,
        )
        for alpha, lam, nw in cells
    ]


def _run(workers, cache=False):
    engine = EvaluationEngine(workers=workers)
    cells = _cells()
    keys = _keys(cells) if cache else None
    started = time.perf_counter()
    batch = engine.map(unavailability, cells, keys=keys)
    elapsed = time.perf_counter() - started
    if cache:
        rerun_started = time.perf_counter()
        rerun = engine.map(unavailability, cells, keys=keys)
        rerun_elapsed = time.perf_counter() - rerun_started
        return batch, elapsed, rerun, rerun_elapsed
    return batch, elapsed


def test_engine_scaling_bit_identical_across_workers(benchmark):
    reference, _ = benchmark.pedantic(
        lambda: _run(1), rounds=3, warmup_rounds=1
    )

    timings = {}
    for workers in WORKER_COUNTS:
        batch, elapsed = _run(workers)
        # Bit-identity, the assertion the whole engine design serves:
        # float tuple equality, no tolerances.
        assert batch.outputs == reference.outputs
        timings[workers] = elapsed

    _, cold_elapsed, warm, warm_elapsed = _run(1, cache=True)
    assert warm.outputs == reference.outputs
    assert warm.executed == 0                      # no solver calls
    assert warm.cache_stats.hit_rate == 1.0

    digest = hashlib.sha256(
        repr(reference.outputs).encode("ascii")
    ).hexdigest()
    record = {
        "benchmark": "engine-scaling-fig11",
        "cells": len(reference.outputs),
        "grid": {
            "arrival_rates": list(ARRIVAL_RATES),
            "failure_rates": list(FAILURE_RATES),
            "servers": [SERVER_RANGE[0], SERVER_RANGE[-1]],
        },
        "seconds": {str(w): round(timings[w], 4) for w in WORKER_COUNTS},
        "speedup": {
            str(w): round(timings[1] / timings[w], 2)
            for w in WORKER_COUNTS
        },
        "warm_cache_seconds": round(warm_elapsed, 4),
        "warm_cache_hit_rate": warm.cache_stats.hit_rate,
        "bit_identical": True,
        "outputs_sha256": digest,
    }
    BENCH_OUT = Path(__file__).parent / "artifacts"
    BENCH_OUT.mkdir(parents=True, exist_ok=True)
    (BENCH_OUT / "BENCH_engine.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )

    rows = [
        [f"{w} worker(s)", f"{timings[w]:.3f}",
         f"{timings[1] / timings[w]:.2f}x", "yes"]
        for w in WORKER_COUNTS
    ]
    rows.append([
        "warm cache", f"{warm_elapsed:.3f}",
        f"{cold_elapsed / warm_elapsed:.2f}x" if warm_elapsed else "inf",
        "yes",
    ])
    emit(format_table(
        ["backend", "seconds", "speedup", "bit-identical"],
        rows,
        title=f"Engine scaling — Fig. 11 grid, {len(reference.outputs)} cells",
    ))

    if BASELINE.exists():
        baseline = json.loads(BASELINE.read_text())
        # The outputs digest guards against silent numeric drift between
        # the committed baseline and this machine's results.
        assert baseline["outputs_sha256"] == digest
