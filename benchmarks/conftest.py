"""Shared helpers for the benchmark harness.

Each bench regenerates one table or figure of the paper: the benchmark
fixture times the computation, and the printed output (visible with
``pytest benchmarks/ --benchmark-only -s``) reproduces the rows or
series the paper reports.  Where the paper publishes numbers, they are
printed side by side with ours.

Because stdout is swallowed by pytest's capture (and never reaches the
controller under ``pytest-xdist``), :func:`emit` also appends every
table to a per-bench artifact file under ``benchmarks/artifacts/`` —
named after the emitting test — so rendered output survives any runner
configuration.  Point ``REPRO_BENCH_ARTIFACTS`` somewhere else to
redirect the directory, or set it empty to disable the files.
"""

from __future__ import annotations

import os
import re
from pathlib import Path

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator for simulation benches."""
    return np.random.default_rng(709718)  # the paper's page range


def _artifact_path() -> Path | None:
    """The artifact file for the currently running bench, or None."""
    root = os.environ.get(
        "REPRO_BENCH_ARTIFACTS",
        str(Path(__file__).parent / "artifacts"),
    )
    if not root:
        return None
    # PYTEST_CURRENT_TEST looks like "benchmarks/bench_x.py::test_y[p] (call)".
    current = os.environ.get("PYTEST_CURRENT_TEST", "")
    name = current.split("::")[-1].split(" ")[0] if current else "adhoc"
    name = re.sub(r"[^A-Za-z0-9_.\-\[\]]", "_", name) or "adhoc"
    return Path(root) / f"{name}.txt"


def emit(text: str) -> None:
    """Print a rendered table, and persist it to the bench's artifact file.

    The print covers interactive ``-s`` runs; the artifact file covers
    captured and ``pytest-xdist`` runs, where worker stdout is lost.
    """
    print()
    print(text)
    path = _artifact_path()
    if path is None:
        return
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(text)
            handle.write("\n\n")
    except OSError:
        # A read-only checkout must not fail the bench over a side file.
        pass
