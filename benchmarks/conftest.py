"""Shared helpers for the benchmark harness.

Each bench regenerates one table or figure of the paper: the benchmark
fixture times the computation, and the printed output (visible with
``pytest benchmarks/ --benchmark-only -s``) reproduces the rows or
series the paper reports.  Where the paper publishes numbers, they are
printed side by side with ours.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator for simulation benches."""
    return np.random.default_rng(709718)  # the paper's page range


def emit(text: str) -> None:
    """Print a rendered table with surrounding whitespace."""
    print()
    print(text)
