"""Observability overhead — the disabled-mode guard.

``repro.obs`` promises that instrumentation is pay-for-use: when no
registry is active, every recording site in the DES kernel reduces to a
single ``is not None`` check.  This bench measures that promise on the
kernel's hottest loop and turns it into a regression guard.

Three variants drain an identical self-rescheduling event chain:

* **bare** — a local replica of the kernel's pre-instrumentation hot
  loop (heap pop, clock advance, action call, cancellation check), the
  reference the disabled mode is held to;
* **disabled** — the real :class:`repro.sim.Simulator` with no ambient
  instrumentation (the default for every user who never asks for
  metrics);
* **enabled** — the real kernel with an active registry recording the
  event counter, queue-depth gauge/histogram, and per-event-type
  timing histogram.

Timings are best-of-``REPEATS`` to shave scheduler noise.  The
disabled-vs-bare overhead is asserted ``<= 3%`` only when
``REPRO_OBS_GUARD`` is set (the CI overhead job sets it; interactive
runs on noisy machines just report).  Enabled-mode cost is reported,
never asserted — it is the price of asking for data, not a regression.

Results land in ``benchmarks/artifacts/BENCH_obs.json``; the committed
``benchmarks/BENCH_obs.json`` records what a CI runner measured.
"""

import heapq
import itertools
import json
import os
import time
from pathlib import Path

from conftest import emit
from repro._validation import check_non_negative
from repro.errors import SimulationError
from repro.obs import MetricsRegistry
from repro.obs.regression import time_variants
from repro.reporting import format_table
from repro.sim import Simulator

EVENTS = 30_000
REPEATS = 15
GUARD_THRESHOLD = 0.03  # disabled-mode regression budget: 3%

BASELINE = Path(__file__).parent / "BENCH_obs.json"


class BareKernel:
    """The event loop as it was before instrumentation existed.

    A line-for-line replica of :class:`repro.sim.Simulator` with the
    observability hooks deleted and nothing else changed — scheduling
    validation, the ``step()`` indirection, the per-iteration guard
    checks, and the cancellation poll (all of which predate
    ``repro.obs``) are kept, so the measured delta is attributable to
    observability alone.
    """

    def __init__(self):
        self._now = 0.0
        self._sequence = itertools.count()
        self._queue = []
        self._events_processed = 0
        self._cancellation = None

    def schedule(self, delay, action):
        delay = check_non_negative(delay, "delay")
        self.schedule_at(self._now + delay, action)

    def schedule_at(self, time_, action):
        if time_ < self._now:
            raise SimulationError(
                f"cannot schedule at {time_} before current time {self._now}"
            )
        heapq.heappush(self._queue, (time_, next(self._sequence), action))

    def step(self):
        if not self._queue:
            return False
        time_, _, action = heapq.heappop(self._queue)
        self._now = time_
        self._events_processed += 1
        action()
        if self._cancellation is not None:
            self._cancellation.count_event()
        return True

    def run(self, max_events=None, max_time=None):
        executed = 0
        while self._queue:
            if max_time is not None and self._queue[0][0] > max_time:
                raise SimulationError("max_time exceeded")
            self.step()
            executed += 1
            if (
                max_events is not None
                and executed >= max_events
                and self._queue
            ):
                raise SimulationError("max_events exceeded")


def _chain(sim, remaining):
    """One self-rescheduling event: queue depth stays 1, overhead dominates."""
    state = {"left": remaining}

    def tick():
        state["left"] -= 1
        if state["left"]:
            sim.schedule(1.0, tick)

    sim.schedule(1.0, tick)


def _one_run(make_sim):
    """Wall-clock seconds to drain one event chain."""
    sim = make_sim()
    _chain(sim, EVENTS)
    started = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - started
    assert sim._events_processed == EVENTS
    return elapsed


def test_disabled_mode_overhead_within_budget(benchmark):
    registry = MetricsRegistry()
    # The guarded statistic is repro.obs.regression.paired_ratio_overhead
    # computed by time_variants over interleaved rounds — see that module
    # for why interleaving and min-per-round-ratio beat best-of blocks.
    variants = [
        ("bare", lambda: _one_run(BareKernel)),
        ("disabled", lambda: _one_run(Simulator)),
        ("enabled", lambda: _one_run(lambda: Simulator(metrics=registry))),
    ]
    timing = benchmark.pedantic(
        lambda: time_variants(variants, repeats=REPEATS),
        rounds=1,
        warmup_rounds=1,
    )
    bare = timing.best["bare"]
    disabled = timing.best["disabled"]
    enabled = timing.best["enabled"]
    # The enabled runs actually recorded: every event counted and every
    # queue depth sampled (warmup rounds included, hence >=).
    assert registry.value("sim_events") >= EVENTS * REPEATS
    assert registry.value("sim_events") % EVENTS == 0
    assert registry.get("sim_queue_depth").count == registry.value("sim_events")

    disabled_overhead = timing.overhead["disabled"]
    enabled_overhead = timing.overhead["enabled"]

    record = {
        "benchmark": "obs-overhead-des-kernel",
        "events": EVENTS,
        "repeats": REPEATS,
        "seconds": {
            "bare": round(bare, 6),
            "disabled": round(disabled, 6),
            "enabled": round(enabled, 6),
        },
        # Guarded: minimum paired per-round ratio minus one (noise-robust
        # lower bound; can dip negative when a bare round was unlucky).
        "disabled_overhead": round(disabled_overhead, 4),
        "enabled_overhead": round(enabled_overhead, 4),
        # Informational: ratio of the best-of-REPEATS absolute times.
        "disabled_overhead_of_best": round(disabled / bare - 1.0, 4),
        "enabled_overhead_of_best": round(enabled / bare - 1.0, 4),
        "guard_threshold": GUARD_THRESHOLD,
        # Only the disabled-mode statistic is asserted; enabled-mode
        # cost is the price of asking for data, not a regression.
        "guarded": ["disabled_overhead"],
        "guard_enforced": bool(os.environ.get("REPRO_OBS_GUARD")),
    }
    out_dir = Path(__file__).parent / "artifacts"
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "BENCH_obs.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )

    rows = [
        ["bare loop", f"{bare * 1e6 / EVENTS:.3f}", "reference"],
        ["disabled", f"{disabled * 1e6 / EVENTS:.3f}",
         f"{disabled / bare - 1.0:+.1%}"],
        ["enabled", f"{enabled * 1e6 / EVENTS:.3f}",
         f"{enabled / bare - 1.0:+.1%}"],
    ]
    emit(format_table(
        ["mode", "us/event", "overhead of best"],
        rows,
        title=(
            f"Observability overhead — {EVENTS} DES events, "
            f"best of {REPEATS}"
        ),
    ))

    if BASELINE.exists():
        baseline = json.loads(BASELINE.read_text())
        assert baseline["benchmark"] == record["benchmark"]
        assert baseline["guard_threshold"] == GUARD_THRESHOLD

    if os.environ.get("REPRO_OBS_GUARD"):
        assert disabled_overhead <= GUARD_THRESHOLD, (
            f"disabled-mode observability overhead {disabled_overhead:.1%} "
            f"exceeds the {GUARD_THRESHOLD:.0%} budget"
        )
