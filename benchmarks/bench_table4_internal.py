"""Table 4 — application and database service availability."""

from conftest import emit
from repro.reporting import format_table
from repro.ta import TAParameters
from repro.ta.equations import (
    application_service_availability,
    database_service_availability,
)


def test_table4_internal_service_availability(benchmark):
    params = TAParameters()

    def compute():
        return {
            ("A(AS)", "basic"): application_service_availability(
                params.application_host_availability, redundant=False
            ),
            ("A(AS)", "redundant"): application_service_availability(
                params.application_host_availability, redundant=True
            ),
            ("A(DS)", "basic"): database_service_availability(
                params.database_host_availability,
                params.disk_availability,
                redundant=False,
            ),
            ("A(DS)", "redundant"): database_service_availability(
                params.database_host_availability,
                params.disk_availability,
                redundant=True,
            ),
        }

    values = benchmark(compute)

    emit(format_table(
        ["service", "basic architecture", "redundant architecture"],
        [
            ["A(AS)", f"{values[('A(AS)', 'basic')]:.6f}",
             f"{values[('A(AS)', 'redundant')]:.6f}"],
            ["A(DS)", f"{values[('A(DS)', 'basic')]:.6f}",
             f"{values[('A(DS)', 'redundant')]:.6f}"],
        ],
        title=(
            "Table 4 — application and database services "
            "(A(C_AS) = A(C_DS) = 0.996, A(Disk) = 0.9; the scan's "
            "'1-2(1-A)' is read as two-unit parallel redundancy)"
        ),
    ))

    assert values[("A(AS)", "basic")] == 0.996
    assert values[("A(AS)", "redundant")] > 0.99998
    # The single 0.9 disk dominates the basic database service.
    assert values[("A(DS)", "basic")] < 0.9
    assert values[("A(DS)", "redundant")] > 0.98
