"""Chaos recovery overhead — what a survived fault costs the engine.

Runs a Fig. 11-shaped grid through the engine four ways: undisturbed
serial (the reference), undisturbed parallel, parallel with a chaos
worker kill (pool respawn + re-dispatch), and parallel with transient
task faults under the default retry policy.  Every disturbed run must
reproduce the reference *bit for bit* — the recovery contract — and the
emitted table reports what each recovery path cost in wall-clock terms.

Timings are reported, never asserted: respawning a process pool costs a
fork plus interpreter start per worker, which varies wildly across
machines; the equality and counter assertions hold everywhere.
"""

import time

from conftest import emit
from repro.availability import WebServiceModel
from repro.chaos import plan_transient_faults, plan_worker_kills
from repro.engine import EvaluationEngine, TaskRetryPolicy
from repro.reporting import format_table

FAILURE_RATES = (1e-2, 1e-3, 1e-4)
SERVER_RANGE = tuple(range(1, 9))
SEED = 0
FAULTS = 2


def unavailability(spec):
    """One grid cell; module-level so worker processes can unpickle it."""
    failure_rate, servers = spec
    return WebServiceModel(
        servers=int(servers), arrival_rate=100.0, service_rate=100.0,
        buffer_capacity=10, failure_rate=failure_rate, repair_rate=1.0,
    ).unavailability()


def _cells():
    return [(lam, nw) for lam in FAILURE_RATES for nw in SERVER_RANGE]


def _timed(engine, cells):
    started = time.perf_counter()
    batch = engine.map(unavailability, cells)
    return batch, time.perf_counter() - started


def test_chaos_recovery_is_bit_identical(benchmark, tmp_path):
    cells = _cells()
    reference, _ = benchmark.pedantic(
        lambda: _timed(EvaluationEngine(), cells), rounds=3, warmup_rounds=1
    )

    clean, clean_s = _timed(EvaluationEngine(workers=2), cells)
    assert clean.outputs == reference.outputs

    kill_plan = plan_worker_kills(
        len(cells), seed=SEED, count=FAULTS, state_dir=str(tmp_path / "kill")
    )
    killed, killed_s = _timed(
        EvaluationEngine(workers=2, chaos=kill_plan), cells
    )
    assert killed.outputs == reference.outputs
    assert killed.respawns >= 1
    assert kill_plan.fired() == FAULTS

    flaky_plan = plan_transient_faults(
        len(cells), seed=SEED, count=FAULTS, state_dir=str(tmp_path / "flaky")
    )
    retried, retried_s = _timed(
        EvaluationEngine(workers=2, chaos=flaky_plan, retry=TaskRetryPolicy()),
        cells,
    )
    assert retried.outputs == reference.outputs
    assert retried.retries == FAULTS
    assert retried.respawns == 0

    rows = [
        ["parallel, undisturbed", f"{clean_s:.3f}", "0", "0"],
        [f"parallel, {FAULTS} worker kill(s)", f"{killed_s:.3f}",
         str(killed.retries), str(killed.respawns)],
        [f"parallel, {FAULTS} transient fault(s)", f"{retried_s:.3f}",
         str(retried.retries), str(retried.respawns)],
    ]
    emit(format_table(
        ["run", "seconds", "retries", "respawns"], rows,
        title=(
            f"Chaos recovery on a {len(cells)}-cell grid "
            "(every run bit-identical to serial)"
        ),
    ))
