"""Ablations beyond the paper: buffer size K, coverage c, reconfiguration
rate beta.

DESIGN.md calls out three tunables of the web-service model that the
paper fixes; these benches sweep each one and check the direction of the
effect, quantifying how much of the composite measure each knob owns.
"""

import pytest

from conftest import emit
from repro.availability import WebServiceModel
from repro.reporting import format_series
from repro.sensitivity import sweep


def model(buffer_size=10, coverage=0.98, beta=12.0, arrival=100.0):
    return WebServiceModel(
        servers=4,
        arrival_rate=arrival,
        service_rate=100.0,
        buffer_capacity=int(buffer_size),
        failure_rate=1e-3,
        repair_rate=1.0,
        coverage=coverage,
        reconfiguration_rate=beta,
    )


def test_ablation_buffer_size(benchmark):
    sizes = (4, 6, 8, 10, 14, 20, 30, 50)
    result = benchmark(
        lambda: sweep(
            lambda k: model(buffer_size=k).unavailability(),
            "K", sizes,
        )
    )
    emit(format_series(
        "K", sizes, {"unavailability": result.outputs},
        log_bars=True, floor_exponent=-10,
        title="Ablation — buffer size K (NW = 4, load = 1)",
    ))
    # Bigger buffers reduce loss, with diminishing returns: the farm's
    # failure-driven floor eventually dominates.
    assert list(result.outputs) == sorted(result.outputs, reverse=True)
    floor_gain = result.outputs[-2] - result.outputs[-1]
    first_gain = result.outputs[0] - result.outputs[1]
    assert first_gain > 100 * max(floor_gain, 1e-15)


def test_ablation_coverage(benchmark):
    coverages = (0.80, 0.90, 0.95, 0.98, 0.99, 0.999, 1.0)
    result = benchmark(
        lambda: sweep(
            lambda c: model(coverage=c).unavailability(),
            "c", coverages,
        )
    )
    emit(format_series(
        "c", coverages, {"unavailability": result.outputs},
        log_bars=True, floor_exponent=-10,
        title="Ablation — failure coverage c (NW = 4)",
    ))
    assert list(result.outputs) == sorted(result.outputs, reverse=True)
    # Going from c = 0.8 to perfect coverage buys more than one decade.
    assert result.outputs[0] > 10 * result.outputs[-1]


def test_ablation_reconfiguration_rate(benchmark):
    betas = (1.0, 3.0, 6.0, 12.0, 30.0, 60.0, 120.0)
    result = benchmark(
        lambda: sweep(
            lambda b: model(beta=b).unavailability(),
            "beta", betas,
        )
    )
    emit(format_series(
        "beta (1/h)", betas, {"unavailability": result.outputs},
        log_bars=True, floor_exponent=-10,
        title="Ablation — manual reconfiguration rate beta (NW = 4)",
    ))
    assert list(result.outputs) == sorted(result.outputs, reverse=True)
    # beta -> infinity converges to the perfect-coverage value... not
    # exactly (uncovered failures still transit y states), but the gap
    # to beta = 1/h must be large.
    assert result.outputs[0] > 5 * result.outputs[-1]
