"""Fault-injection campaign bench — stressing eq. (10)'s assumptions.

Three campaigns against the redundant TA, all through the resilience
campaign engine:

* the **null campaign** (no injected faults) must reproduce the
  analytic eq.-(10) value within two standard errors — the engine's
  calibration criterion;
* a **correlated LAN + application-host outage** (resources forced down
  together, violating the independence assumption behind eq. 10) must
  show a measurable availability drop;
* a **web-service degradation** campaign (coverage-mode capacity loss
  expressed as a conditional-success factor) sits between the two.

A fourth section evaluates graceful-degradation admission policies on
the web farm: shedding a low-value class in degraded farm states must
never hurt the protected class.
"""

from conftest import emit
from repro.availability import WebServiceModel
from repro.resilience import (
    AdmitAll,
    ClassLoad,
    NullScenario,
    RecurrentDegradation,
    RecurrentOutage,
    ShedClasses,
    compare_policies,
    format_campaign_table,
    format_policy_table,
    run_campaigns,
)
from repro.ta import CLASS_A, CLASS_B, TravelAgencyModel

CORRELATED = RecurrentOutage(
    frozenset({"lan-segment", "app-host-1", "app-host-2"}),
    episode_rate=0.01,
    mean_duration=5.0,
)
DEGRADED_WEB = RecurrentDegradation(
    "web", factor=0.9, episode_rate=0.02, mean_duration=10.0
)


def test_fault_injection_campaigns(benchmark):
    ta = TravelAgencyModel()

    def compute():
        return run_campaigns(
            ta.hierarchical_model,
            (CLASS_A, CLASS_B),
            (NullScenario(), CORRELATED, DEGRADED_WEB),
            horizon=10_000.0,
            replications=6,
            seed=709718,
        )

    results = benchmark.pedantic(compute, iterations=1, rounds=1)
    emit(format_campaign_table(
        results,
        title="Fault-injection campaigns (6 x 10,000 h per cell)",
    ))

    by_key = {(r.user_class, r.scenario): r for r in results}
    for users in (CLASS_A, CLASS_B):
        null = by_key[(users.name, "null")]
        correlated = by_key[(users.name, "recurrent-outage")]
        degraded = by_key[(users.name, "recurrent-degradation")]

        # Calibration: with no injected faults the campaign mean must
        # agree with analytic eq. (10) within 2 standard errors.
        assert null.agrees_with_analytic(sigmas=2.0)

        # The correlated LAN+host outage violates independence; the
        # measured drop must be large compared to Monte-Carlo noise.
        assert correlated.availability_drop > 0.01
        assert correlated.availability_drop > 4.0 * correlated.stderr

        # Capacity degradation hurts, but less than a hard outage: the
        # service stays up and only a fraction of sessions is lost.
        assert 0.0 < degraded.availability_drop < correlated.availability_drop

        # Reproducibility: campaigns are deterministic given the seed.
        assert null.values == run_campaigns(
            ta.hierarchical_model,
            (users,),
            (NullScenario(),),
            horizon=10_000.0,
            replications=6,
            seed=null.seed,
        )[0].values


def test_graceful_degradation_policies(benchmark):
    web = WebServiceModel(
        servers=4,
        arrival_rate=350.0,
        service_rate=100.0,
        buffer_capacity=10,
        failure_rate=1e-2,
        repair_rate=1.0,
        coverage=0.98,
        reconfiguration_rate=12.0,
    )
    loads = [
        ClassLoad("class A", 250.0, value=1.0),
        ClassLoad("class B", 100.0, value=5.0),
    ]
    policies = [
        AdmitAll(),
        ShedClasses(frozenset({"class A"}), below_servers=3),
    ]

    evaluations = benchmark.pedantic(
        lambda: compare_policies(web, loads, policies),
        iterations=1,
        rounds=1,
    )
    emit(format_policy_table(
        evaluations,
        title="Admission control on a degraded farm (high load, high MTTR)",
    ))

    admit_all, shedding = evaluations
    # Shedding the low-value class in degraded states must improve the
    # protected class and never change it for the worse.
    assert (
        shedding.class_availability["class B"]
        >= admit_all.class_availability["class B"]
    )
    # The shed class pays for it.
    assert (
        shedding.class_availability["class A"]
        < admit_all.class_availability["class A"]
    )
    # Outcomes are probabilities.
    for ev in evaluations:
        for value in ev.class_availability.values():
            assert 0.0 <= value <= 1.0
