"""Extension bench — mission metrics beyond steady state.

The paper evaluates only steady-state availability.  Two complementary
mission metrics fall out of the same Markov models:

* **time to service loss** — expected time from all-up until the web
  service first goes down.  Under imperfect coverage a *single*
  uncovered failure suffices, so this is dramatically shorter than the
  perfect-coverage farm's time to exhaustion, re-telling the Fig. 12
  story in the time domain.
* **availability ramp** — the transient composite measure while a farm
  recovers from a cold start with one server.
"""

import pytest

from conftest import emit
from repro.availability import (
    ImperfectCoverageFarm,
    PerfectCoverageFarm,
    WebServiceModel,
)
from repro.reporting import format_series, format_table


def test_extension_time_to_service_loss(benchmark):
    lam, mu, beta = 1e-3, 1.0, 12.0

    def compute():
        rows = {}
        for nw in (1, 2, 3, 4, 6, 8):
            perfect = PerfectCoverageFarm(
                servers=nw, failure_rate=lam, repair_rate=mu
            ).mean_time_to_exhaustion()
            imperfect = ImperfectCoverageFarm(
                servers=nw, failure_rate=lam, repair_rate=mu,
                coverage=0.98, reconfiguration_rate=beta,
            ).mean_time_to_service_loss()
            rows[nw] = (perfect, imperfect)
        return rows

    rows = benchmark(compute)

    emit(format_table(
        ["NW", "E[time to exhaustion], perfect (h)",
         "E[time to service loss], c = 0.98 (h)"],
        [[nw, f"{p:.3e}", f"{i:.3e}"] for nw, (p, i) in rows.items()],
        title="Extension — mission times (lambda = 1e-3/h, mu = 1/h)",
    ))

    perfect_times = [p for p, _ in rows.values()]
    imperfect_times = [i for _, i in rows.values()]
    # Exhaustion time explodes with redundancy...
    assert perfect_times == sorted(perfect_times)
    assert perfect_times[-1] > 1e6 * perfect_times[0]
    # ...but under imperfect coverage, more servers mean *sooner* loss
    # (more uncovered-failure exposure): monotone decreasing past NW = 1.
    assert imperfect_times[1:] == sorted(imperfect_times[1:], reverse=True)
    # And the loss time is orders of magnitude below exhaustion.
    assert imperfect_times[3] < perfect_times[3] / 1e3


def test_extension_recovery_ramp(benchmark):
    model = WebServiceModel(
        servers=4, arrival_rate=100.0, service_rate=100.0,
        buffer_capacity=10, failure_rate=1e-3, repair_rate=1.0,
        coverage=0.98, reconfiguration_rate=12.0,
    )
    times = (0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0)

    def compute():
        return [
            model.transient_availability(t, initial_servers=1) for t in times
        ]

    ramp = benchmark(compute)

    emit(format_series(
        "t (hours)", times, {"A(t) from 1 server": ramp},
        value_format="{:.6f}",
        title=(
            "Extension — availability ramp after a cold start "
            f"(steady state: {model.availability():.6f})"
        ),
    ))

    assert list(ramp) == sorted(ramp)
    assert ramp[0] == pytest.approx(1.0 - model.blocking_probability(1))
    assert ramp[-1] == pytest.approx(model.availability(), rel=1e-3)
