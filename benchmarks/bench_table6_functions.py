"""Table 6 — function-level availabilities.

Evaluates the five TA functions through the generic hierarchical engine
and through the paper's closed-form equations; the two paths must agree
to machine precision.
"""

import pytest

from conftest import emit
from repro.reporting import format_downtime, format_table
from repro.ta import FUNCTIONS, TAParameters, TravelAgencyModel
from repro.ta import equations as eq


def test_table6_function_availability(benchmark):
    params = TAParameters()
    ta = TravelAgencyModel(params)

    engine = benchmark(ta.function_availabilities)
    closed = eq.function_availabilities(
        params, eq.service_availabilities(params)
    )

    emit(format_table(
        ["function", "engine", "paper closed form", "downtime"],
        [
            [name, f"{engine[name]:.6f}", f"{closed[name]:.6f}",
             format_downtime(engine[name])]
            for name in FUNCTIONS
        ],
        title="Table 6 — function availabilities (Table 7 parameters)",
    ))

    for name in FUNCTIONS:
        assert engine[name] == pytest.approx(closed[name], rel=1e-13)
    assert engine["home"] > engine["browse"] > engine["search"]
    assert engine["book"] == pytest.approx(engine["search"])
