"""Retry-adjusted availability bench — eq. (10) with user retries.

The closed-form retry model of :mod:`repro.resilience.retry` extends the
paper's single-submission measure with bounded user retries; the
discrete-event retry simulation in :mod:`repro.sim.sessions` replays the
same policy session by session with exponential backoff.  Per user
class, the two must agree within Monte-Carlo error.  The bench also
regenerates Table 8 with a retry-adjusted column: redundancy and
retries attack the same unavailability mass, so retries flatten the
sweep long before the fifth reservation system does.
"""

import math

import pytest

from conftest import emit
from repro.reporting import format_table
from repro.resilience import (
    RetryPolicy,
    format_retry_table,
    retry_adjusted_user_availability,
)
from repro.sim import estimate_user_availability_with_retries
from repro.ta import CLASS_A, CLASS_B, TravelAgencyModel

POLICY = RetryPolicy(max_retries=2, persistence=0.9, backoff_base=0.5)
SESSIONS = 40_000


def test_retry_adjusted_closed_form_vs_des(benchmark, rng):
    ta = TravelAgencyModel()

    def compute():
        out = {}
        for users in (CLASS_A, CLASS_B):
            closed = retry_adjusted_user_availability(
                ta.hierarchical_model, users, POLICY
            )
            simulated = estimate_user_availability_with_retries(
                ta.hierarchical_model, users, POLICY, SESSIONS, rng
            )
            out[users.name] = (closed, simulated)
        return out

    results = benchmark.pedantic(compute, iterations=1, rounds=1)

    emit(format_retry_table(
        [closed for closed, _ in results.values()],
        title="Retry-adjusted eq. (10), k=2 retries, persistence 0.9",
    ))
    rows = []
    for name, (closed, simulated) in results.items():
        rows.append([
            name,
            f"{closed.adjusted_availability:.6f}",
            f"{simulated.served_fraction:.6f}",
            f"{closed.abandonment_probability:.6f}",
            f"{simulated.abandoned_fraction:.6f}",
            f"{closed.expected_attempts:.4f}",
            f"{simulated.mean_attempts:.4f}",
        ])
    emit(format_table(
        ["class", "served (closed)", "served (DES)",
         "abandon (closed)", "abandon (DES)",
         "attempts (closed)", "attempts (DES)"],
        rows,
        title=f"Closed form vs discrete-event simulation ({SESSIONS} sessions)",
    ))

    for name, (closed, simulated) in results.items():
        # Binomial Monte-Carlo error on the served fraction; 4 sigma.
        p = closed.adjusted_availability
        sigma = math.sqrt(p * (1.0 - p) / SESSIONS)
        assert simulated.served_fraction == pytest.approx(p, abs=4.0 * sigma)
        assert simulated.abandoned_fraction == pytest.approx(
            closed.abandonment_probability, abs=0.005
        )
        assert simulated.mean_attempts == pytest.approx(
            closed.expected_attempts, abs=0.02
        )
        # Retries can only help.
        assert closed.adjusted_availability >= closed.availability


def test_table8_with_retry_column(benchmark):
    ta = TravelAgencyModel()
    counts = (1, 2, 3, 4, 5, 10)

    sweep = benchmark.pedantic(
        lambda: ta.reservation_sweep_with_retries(CLASS_A, counts, POLICY),
        iterations=1,
        rounds=1,
    )

    emit(format_table(
        ["N", "A (eq. 10)", "A (retry-adjusted)"],
        [[n, f"{base:.5f}", f"{adjusted:.7f}"] for n, base, adjusted in sweep],
        title="Table 8 (class A) with the retry-adjusted column",
    ))

    values = {n: (base, adjusted) for n, base, adjusted in sweep}
    # Zero retries reproduce the published column; the adjusted column
    # dominates it everywhere and stays monotone in N.
    for n, (base, adjusted) in values.items():
        assert adjusted > base
    assert values[5][0] == pytest.approx(0.97882, abs=5e-6)
    bases = [values[n][0] for n in counts]
    adjusteds = [values[n][1] for n in counts]
    assert bases == sorted(bases)
    assert adjusteds == sorted(adjusteds)
    # Retries flatten the sweep: the retry-adjusted column varies far
    # less with N than the single-submission column does, because
    # retries soak up most of the unavailability that extra reservation
    # systems would otherwise mask.
    assert (adjusteds[-1] - adjusteds[0]) < 0.25 * (bases[-1] - bases[0])
