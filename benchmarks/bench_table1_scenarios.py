"""Table 1 + Figure 2 — user scenario probabilities from the profile graph.

The paper publishes the scenario probabilities pi_i directly (the
transition probabilities p_ij of Fig. 2 were never released).  This
bench runs the full pipeline in both directions:

* calibrate a Fig. 2-shaped transition graph against the published
  class-A and class-B scenario mixes, and
* regenerate the 12-scenario table from the fitted graph via the exact
  visited-set computation.
"""

import pytest

from conftest import emit
from repro.profiles import calibrate_profile
from repro.reporting import format_table
from repro.ta import (
    CLASS_A,
    CLASS_B,
    PAPER_SCENARIO_LABELS,
    SCENARIO_FUNCTION_SETS,
    TA_PROFILE_EDGES,
)


@pytest.mark.parametrize("users", [CLASS_A, CLASS_B], ids=["classA", "classB"])
def test_table1_scenario_probabilities(benchmark, users):
    result = benchmark.pedantic(
        lambda: calibrate_profile(
            TA_PROFILE_EDGES, users.distribution, max_evaluations=250
        ),
        iterations=1,
        rounds=1,
    )
    fitted = result.profile.scenario_distribution()

    rows = []
    for i, functions in SCENARIO_FUNCTION_SETS.items():
        rows.append([
            f"{i}: {PAPER_SCENARIO_LABELS[i]}",
            f"{users.distribution.probability_of(functions) * 100:.1f}",
            f"{fitted.probability_of(functions) * 100:.1f}",
        ])
    emit(format_table(
        ["User scenario", f"paper pi ({users.name}) %", "fitted graph %"],
        rows,
        title=f"Table 1 — {users.name} (graph calibrated to published mix)",
    ))
    emit(
        "fit total-variation distance: "
        f"{result.total_variation_distance:.4f}"
    )

    # The fitted graph reproduces the 12-scenario structure and lands
    # close to the published mix (the fit is over-determined).
    assert len(fitted) == 12
    assert result.total_variation_distance < 0.06
